"""Array-state LRU run kernel, optionally numba-compiled.

The generic multi-way LRU kernel of :mod:`repro.engine.vectorized`
(:func:`_accumulate_lru_runs`) walks runs with Python dicts — clear and
fast enough interpreted, but opaque to a JIT.  This module provides the
same computation over flat numpy state arrays (per-way tag/dirty slots,
an explicit recency array, a per-set disabled-way bitmask), written in
the restricted subset numba's ``nopython`` mode compiles.

When numba is importable, :data:`lru_run_kernel` is the JIT-compiled
version (``backend="numba"``); when it is not, the raw Python function
is exposed unchanged so every code path stays testable — and the
dispatcher in :mod:`repro.engine.vectorized` simply keeps using the
dict kernel, which is faster than interpreting this one.

Equivalence with the dict kernel (and through it the reference model)
is enforced by ``tests/engine/test_kernels.py`` over modes, fault maps
and randomized streams; both kernels fill the same per-run record
arrays for the transient post-pass.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the baked-in CI image has none
    njit = None
    HAVE_NUMBA = False

#: Widest way mask the per-set disabled bitmask (uint64) can express.
MAX_BITMASK_WAYS = 64


def _lru_run_kernel(
    run_tag,
    run_len,
    run_writes,
    run_head_write,
    run_new_set,
    run_set,
    actives,
    way_group,
    disabled_mask,
    counters,
    group_counts,
    run_way,
    run_hit,
    run_started_dirty,
):
    """Multi-way LRU over collapsed runs, flat-array state only.

    Mirrors ``_accumulate_lru_runs`` exactly: victims are the first
    empty active way in ascending order, else the LRU tail; sets whose
    every active way is disabled bypass.  Outputs accumulate into
    ``counters`` (read_hits, write_hits, read_misses, write_misses,
    fills, writebacks, bypasses), ``group_counts`` (rows: read hits,
    write hits, fills, writebacks; columns: way-group ids) and the
    per-run record arrays (way, head-hit, started-dirty) the transient
    post-pass consumes.
    """
    n_ways = len(way_group)
    max_act = len(actives)
    way_tag = np.zeros(n_ways, dtype=np.uint64)
    way_dirty = np.zeros(n_ways, dtype=np.bool_)
    lru = np.zeros(max_act, dtype=np.int64)  # MRU first, filled ways
    set_act = np.zeros(max_act, dtype=np.int64)
    filled = 0
    n_act = 0
    one = np.uint64(1)
    zero = np.uint64(0)

    for i in range(len(run_tag)):
        if run_new_set[i]:
            filled = 0
            mask = disabled_mask[run_set[i]]
            n_act = 0
            for j in range(max_act):
                way = actives[j]
                if (mask >> np.uint64(way)) & one == zero:
                    set_act[n_act] = way
                    n_act += 1
        tag = run_tag[i]
        length = run_len[i]
        n_writes = run_writes[i]
        if n_act == 0:
            # Fully-disabled set: graceful bypass, nothing allocates.
            counters[2] += length - n_writes
            counters[3] += n_writes
            counters[6] += length
            continue

        hit_pos = -1
        for j in range(filled):
            if way_tag[lru[j]] == tag:
                hit_pos = j
                break
        if hit_pos >= 0:
            # Hit run: refresh recency, every access is a hit.
            way = lru[hit_pos]
            run_way[i] = way
            run_hit[i] = True
            run_started_dirty[i] = way_dirty[way]
            for j in range(hit_pos, 0, -1):
                lru[j] = lru[j - 1]
            lru[0] = way
            if n_writes > 0:
                way_dirty[way] = True
            group = way_group[way]
            hits_read = length - n_writes
            counters[0] += hits_read
            counters[1] += n_writes
            group_counts[0, group] += hits_read
            group_counts[1, group] += n_writes
            continue

        # Miss on the run head; the tail hits the fresh line.
        head_write = 1 if run_head_write[i] else 0
        counters[3 if head_write else 2] += 1
        if filled < n_act:
            way = set_act[filled]
            filled += 1
        else:
            way = lru[filled - 1]  # LRU tail
            if way_dirty[way]:
                counters[5] += 1
                group_counts[3, way_group[way]] += 1
        for j in range(filled - 1, 0, -1):
            lru[j] = lru[j - 1]
        lru[0] = way
        way_tag[way] = tag
        way_dirty[way] = n_writes > 0
        run_way[i] = way  # miss runs fill clean; head stays a miss
        group = way_group[way]
        counters[4] += 1
        group_counts[2, group] += 1
        tail_reads = length - n_writes - (1 - head_write)
        tail_writes = n_writes - head_write
        counters[0] += tail_reads
        counters[1] += tail_writes
        group_counts[0, group] += tail_reads
        group_counts[1, group] += tail_writes


if HAVE_NUMBA:  # pragma: no cover - exercised by the numba CI job
    lru_run_kernel = njit(cache=True)(_lru_run_kernel)
else:
    lru_run_kernel = _lru_run_kernel


def accumulate_lru_runs_array(
    stats,
    actives,
    group_names,
    run_tag,
    run_len,
    run_writes,
    run_head_write,
    run_new_set,
    run_set,
    sets,
    disabled_by_set=None,
    records=None,
    kernel=None,
):
    """Drive :data:`lru_run_kernel` and fold its outputs into ``stats``.

    The staging mirrors what the dict kernel consumes/produces so the
    two are drop-in interchangeable: group counters only receive
    *nonzero* entries (the dict kernel never creates zero entries) and
    ``records`` — when given — is filled with the same per-run (way,
    head-hit, started-dirty) observations.

    Args:
        stats: the :class:`repro.cache.stats.CacheStats` to fill.
        actives: active way indices, ascending.
        group_names: way-group name of every way in the full mask.
        run_tag / run_len / run_writes / run_head_write / run_new_set /
            run_set: the run arrays of a
            :class:`repro.engine.plan.StreamPlan`.
        sets: number of sets (sizes the disabled bitmask).
        disabled_by_set: fault-map ways to skip, per set index.
        records: optional per-run record arrays (way pre-filled with
            ``-1``) for the transient post-pass.
        kernel: kernel override — tests pass the interpreted
            :func:`_lru_run_kernel` to cover the logic without numba.
    """
    if len(group_names) > MAX_BITMASK_WAYS:
        raise ValueError(
            f"the array kernel's disabled bitmask models at most "
            f"{MAX_BITMASK_WAYS} ways, got {len(group_names)}"
        )
    if kernel is None:
        kernel = lru_run_kernel
    groups: list[str] = []
    group_ids: dict[str, int] = {}
    way_group = np.empty(len(group_names), dtype=np.int64)
    for way, name in enumerate(group_names):
        if name not in group_ids:
            group_ids[name] = len(groups)
            groups.append(name)
        way_group[way] = group_ids[name]

    disabled_mask = np.zeros(sets, dtype=np.uint64)
    for set_index, ways in (disabled_by_set or {}).items():
        bits = np.uint64(0)
        for way in ways:
            bits |= np.uint64(1) << np.uint64(way)
        disabled_mask[set_index] = bits

    runs = len(run_tag)
    if records is None:
        run_way = np.full(runs, -1, dtype=np.int64)
        run_hit = np.zeros(runs, dtype=bool)
        run_started_dirty = np.zeros(runs, dtype=bool)
    else:
        run_way, run_hit, run_started_dirty = records

    counters = np.zeros(7, dtype=np.int64)
    group_counts = np.zeros((4, len(groups)), dtype=np.int64)
    kernel(
        np.ascontiguousarray(run_tag, dtype=np.uint64),
        np.ascontiguousarray(run_len, dtype=np.int64),
        np.ascontiguousarray(run_writes, dtype=np.int64),
        np.ascontiguousarray(run_head_write, dtype=np.bool_),
        np.ascontiguousarray(run_new_set, dtype=np.bool_),
        np.ascontiguousarray(run_set, dtype=np.uint64),
        np.asarray(actives, dtype=np.int64),
        way_group,
        disabled_mask,
        counters,
        group_counts,
        run_way,
        run_hit,
        run_started_dirty,
    )

    stats.read_hits = int(counters[0])
    stats.write_hits = int(counters[1])
    stats.read_misses = int(counters[2])
    stats.write_misses = int(counters[3])
    stats.fills = int(counters[4])
    stats.writebacks = int(counters[5])
    stats.bypasses = int(counters[6])
    for row, counter in (
        (0, stats.group_read_hits),
        (1, stats.group_write_hits),
        (2, stats.group_fills),
        (3, stats.group_writebacks),
    ):
        for group_id, name in enumerate(groups):
            value = int(group_counts[row, group_id])
            if value:
                counter[name] += value
