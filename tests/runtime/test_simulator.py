"""Tests for the schedule simulator (:mod:`repro.runtime.simulator`).

Pins the contracts ISSUE 3 names explicitly:

* **ledger closure** — a schedule's totals equal the sum of its
  per-epoch ledger entries plus transition costs, for any policy and
  epoch length (hypothesis-driven);
* **HP identity** — a 100 %-HP :class:`StaticDutyCycle` schedule over a
  single epoch is bit-identical to a plain ``Chip.run`` at HP mode;
* **engine integration** — recurring epochs deduplicate in the session
  and serial vs parallel sessions render byte-identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.session import SimulationSession, use_session
from repro.runtime import (
    Oracle,
    ScheduleSimulator,
    StaticDutyCycle,
    UtilizationThreshold,
    simulate_schedule,
)
from repro.tech.operating import Mode, OperatingPoint
from repro.workloads import sensor_node_trace


@pytest.fixture(scope="module")
def sensor_trace():
    return sensor_node_trace(
        monitor_length=4_000, burst_length=1_000, bursts=2, seed=7
    )


def assert_ledger_closes(schedule):
    entries = schedule.entries
    assert schedule.run_energy == pytest.approx(
        sum(e.energy for e in entries), rel=1e-12
    )
    assert schedule.transition_energy == pytest.approx(
        sum(e.transition_energy for e in entries), rel=1e-12
    )
    assert schedule.total_energy == pytest.approx(
        sum(e.total_energy for e in entries), rel=1e-12
    )
    assert schedule.total_seconds == pytest.approx(
        sum(e.total_seconds for e in entries), rel=1e-12
    )
    assert schedule.edc_energy == pytest.approx(
        sum(e.edc_energy for e in entries), rel=1e-12
    )
    assert schedule.switches == sum(1 for e in entries if e.switched)
    assert schedule.instructions == sum(e.instructions for e in entries)


class TestLedgerClosure:
    @settings(max_examples=8, deadline=None)
    @given(
        duty=st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
        epoch_length=st.sampled_from([700, 1_000, 2_500, 10_000]),
    )
    def test_totals_equal_entry_sums(
        self, chips_a, sensor_trace, duty, epoch_length
    ):
        """ISSUE 3 property: totals == per-epoch entries + transitions."""
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            StaticDutyCycle(duty),
            epoch_length=epoch_length,
        )
        assert_ledger_closes(schedule)

    @pytest.mark.parametrize(
        "policy",
        [UtilizationThreshold(), Oracle(), Oracle(objective="time")],
        ids=["utilization", "oracle-energy", "oracle-time"],
    )
    def test_closes_for_result_driven_policies(
        self, chips_a, sensor_trace, policy
    ):
        schedule = simulate_schedule(
            chips_a.proposed, sensor_trace, policy, epoch_length=1_000
        )
        assert_ledger_closes(schedule)

    def test_switching_schedule_charges_transitions(
        self, chips_a, sensor_trace
    ):
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            UtilizationThreshold(),
            epoch_length=1_000,
        )
        assert schedule.switches > 0
        assert schedule.transition_energy > 0
        assert schedule.total_energy > schedule.run_energy
        # Paper claim: transitions amortize to a tiny fraction.
        assert schedule.transition_energy < 0.05 * schedule.total_energy
        # The HP->ULE switches flushed dirty lines out of the HP ways.
        assert any(
            e.flush_writebacks > 0
            for e in schedule.entries
            if e.switched and e.mode is Mode.ULE
        )

    def test_no_switch_no_transition_energy(self, chips_a, sensor_trace):
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            StaticDutyCycle(0.0),
            epoch_length=1_000,
        )
        assert schedule.switches == 0
        assert schedule.transition_energy == 0.0
        assert schedule.total_energy == schedule.run_energy


class TestHpIdentity:
    def test_full_hp_schedule_matches_plain_run(
        self, chips_a, small_trace
    ):
        """ISSUE 3: 100 %-HP StaticDutyCycle == plain Chip.run at HP."""
        schedule = simulate_schedule(
            chips_a.proposed,
            small_trace,
            StaticDutyCycle(1.0),
            epoch_length=len(small_trace),
        )
        direct = chips_a.proposed.run(small_trace, Mode.HP)

        assert len(schedule.entries) == 1
        (entry,) = schedule.entries
        assert entry.mode is Mode.HP
        assert not entry.switched
        # Bit-identical accounting, not approximately equal.
        assert schedule.total_energy == direct.energy.total
        assert schedule.total_seconds == direct.execution_seconds
        assert schedule.edc_energy == (
            direct.energy.group("il1.edc")
            + direct.energy.group("dl1.edc")
        )
        assert entry.instructions == direct.timing.instructions

    def test_full_ule_schedule_matches_plain_run(
        self, chips_a, small_trace
    ):
        schedule = simulate_schedule(
            chips_a.proposed,
            small_trace,
            StaticDutyCycle(0.0),
            epoch_length=len(small_trace),
        )
        direct = chips_a.proposed.run(small_trace, Mode.ULE)
        assert schedule.total_energy == direct.energy.total
        assert schedule.total_seconds == direct.execution_seconds


class TestEngineIntegration:
    def test_recurring_epochs_deduplicate(self, chips_a, sensor_trace):
        session = SimulationSession()
        simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            StaticDutyCycle(0.0),
            epoch_length=1_000,
            session=session,
        )
        # 10 epochs, but the two monitoring phases are bit-identical:
        # only the unique epoch signatures execute.
        assert session.stats.requested == 10
        assert session.stats.deduplicated > 0
        assert session.stats.executed < 10

    def test_serial_vs_parallel_render_identical(
        self, chips_a, sensor_trace
    ):
        serial = SimulationSession(jobs=1)
        parallel = SimulationSession(jobs=2)
        try:
            first = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                UtilizationThreshold(),
                epoch_length=1_000,
                session=serial,
            )
            second = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                UtilizationThreshold(),
                epoch_length=1_000,
                session=parallel,
            )
        finally:
            serial.close()
            parallel.close()
        assert first.render() == second.render()
        assert first.to_dict() == second.to_dict()

    def test_deterministic_across_runs(self, chips_a, sensor_trace):
        results = [
            simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                Oracle(),
                epoch_length=1_000,
            ).render()
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_point_override_enters_jobs(self, chips_a, sensor_trace):
        """A ULE supply override changes the schedule's energy."""
        base = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            StaticDutyCycle(0.0),
            epoch_length=2_500,
        )
        raised = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            StaticDutyCycle(0.0),
            epoch_length=2_500,
            points={
                Mode.ULE: OperatingPoint(
                    mode=Mode.ULE, vdd=0.5, frequency=5e6
                )
            },
        )
        assert raised.total_energy > base.total_energy

    def test_policy_length_mismatch_rejected(
        self, chips_a, small_trace
    ):
        class BrokenPolicy(StaticDutyCycle):
            def choose(self, epochs, context, results=None):
                return [Mode.ULE]

        with pytest.raises(ValueError, match="modes for"):
            simulate_schedule(
                chips_a.proposed,
                small_trace,
                BrokenPolicy(0.0),
                epoch_length=1_000,
            )


class TestRenderAndSerialization:
    @pytest.fixture(scope="class")
    def schedule(self, chips_a, sensor_trace):
        return simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            UtilizationThreshold(),
            epoch_length=1_000,
        )

    def test_render_mentions_everything(self, schedule):
        text = schedule.render()
        assert "Schedule —" in text
        assert "utilization(threshold=1)" in text
        assert "transitions" in text
        assert "EDC overhead" in text

    def test_render_caps_rows(self, schedule):
        text = schedule.render(max_rows=3)
        assert "more)" in text

    def test_to_dict_round_trips_json(self, schedule):
        import json

        payload = json.loads(json.dumps(schedule.to_dict()))
        assert payload["meta"]["policy"] == "utilization(threshold=1)"
        assert len(payload["epochs"]) == len(schedule.entries)
        assert payload["totals"]["switches"] == schedule.switches
        assert payload["totals"]["energy_j"] == pytest.approx(
            schedule.total_energy
        )

    def test_mode_share_sums_to_one(self, schedule):
        assert schedule.mode_share(Mode.ULE) + schedule.mode_share(
            Mode.HP
        ) == pytest.approx(1.0)


class TestTransientScheduling:
    """Injection wired through the epoch scheduler."""

    def _result(self, chips_a, transients):
        trace = sensor_node_trace(4_000, 1_000, 2, seed=3)
        simulator = ScheduleSimulator(
            chips_a.proposed,
            StaticDutyCycle(0.25),
            epoch_length=2_000,
            session=SimulationSession(),
            transients=transients,
        )
        return simulator.run(trace)

    def test_scrub_energy_charged_per_epoch(self, chips_a):
        from repro.transients import TransientSpec

        spec = TransientSpec(
            acceleration=1e16, scrub_interval_seconds=1e-4, seed=7
        )
        result = self._result(chips_a, spec)
        assert result.scrub_energy > 0
        assert result.scrub_energy == pytest.approx(
            sum(entry.scrub_energy for entry in result.entries)
        )
        # Scrub is part of the run energy, like the EDC share.
        assert result.scrub_energy < result.run_energy
        ule_entries = [
            entry for entry in result.entries
            if entry.mode is Mode.ULE
        ]
        assert all(
            entry.scrub_energy > 0 for entry in ule_entries
        )
        assert "scrub energy" in result.render()
        assert (
            result.to_dict()["totals"]["scrub_energy_j"]
            == result.scrub_energy
        )

    def test_injection_costs_energy_and_time(self, chips_a):
        from repro.transients import TransientSpec

        clean = self._result(chips_a, None)
        injected = self._result(
            chips_a,
            TransientSpec(
                acceleration=1e16,
                scrub_interval_seconds=1e-4,
                seed=7,
            ),
        )
        assert injected.total_energy > clean.total_energy
        assert injected.total_seconds >= clean.total_seconds

    def test_null_spec_matches_no_spec(self, chips_a):
        from repro.transients import TransientSpec

        clean = self._result(chips_a, None)
        nulled = self._result(
            chips_a, TransientSpec(acceleration=0.0)
        )
        assert clean.render() == nulled.render()
        assert nulled.scrub_energy == 0.0
