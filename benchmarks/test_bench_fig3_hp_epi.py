"""Bench ``fig3``: regenerate Figure 3 (HP-mode normalized EPI).

Paper values: 14 % (scenario A) and 12 % (scenario B) average EPI savings
at HP mode, with no performance degradation.
"""

from conftest import TRACE_LENGTH, record_report, run_once

from repro.experiments.epi_figures import run_fig3


def test_fig3_hp_epi(benchmark):
    result = run_once(benchmark, run_fig3, trace_length=TRACE_LENGTH)
    record_report("fig3", result.render())

    # Reproduction bands: proposed wins by roughly the paper's factor.
    assert 9.0 < result.data["saving_A"] < 20.0    # paper: 14 %
    assert 8.0 < result.data["saving_B"] < 19.0    # paper: 12 %
    # Ordering: scenario A saves at least as much as B.
    assert result.data["saving_A"] >= result.data["saving_B"] - 0.5
    # No performance degradation at HP mode.
    assert abs(result.data["exec_ratio_A"] - 1.0) < 1e-9
    assert abs(result.data["exec_ratio_B"] - 1.0) < 1e-9
    # Every benchmark individually close to the average (flat bars).
    for scenario in ("A", "B"):
        ratios = list(result.data[f"rows_{scenario}"].values())
        assert max(ratios) - min(ratios) < 0.08
