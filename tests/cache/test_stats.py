"""Tests for repro.cache.stats."""

from repro.cache.stats import CacheStats


class TestCacheStats:
    def test_defaults(self):
        stats = CacheStats()
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0

    def test_derived_counts(self):
        stats = CacheStats(
            reads=10, writes=5, read_hits=8, write_hits=3,
            read_misses=2, write_misses=2,
        )
        assert stats.accesses == 15
        assert stats.hits == 11
        assert stats.misses == 4
        assert stats.miss_rate == 4 / 15

    def test_merge(self):
        a = CacheStats(reads=5, read_hits=4, read_misses=1, fills=1)
        a.group_fills["hp"] = 1
        b = CacheStats(reads=3, read_hits=3, writebacks=2)
        b.group_fills["hp"] = 0
        b.group_fills["ule"] = 0
        a.merge(b)
        assert a.reads == 8
        assert a.read_hits == 7
        assert a.writebacks == 2
        assert a.group_fills["hp"] == 1

    def test_describe(self):
        stats = CacheStats(reads=4, read_hits=2, read_misses=2, fills=2)
        text = stats.describe()
        assert "4 accesses" in text
        assert "2 fills" in text
