"""TransientSpec validation, null collapsing and canonical identity."""

import pickle

import pytest

from repro.transients import TransientSpec
from repro.util.canonical import canonical_digest


class TestValidation:
    def test_defaults_are_valid(self):
        spec = TransientSpec()
        assert not spec.is_null
        assert spec.scrub_interval_seconds > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fit_per_mbit_nominal": -1.0},
            {"scrub_interval_seconds": 0.0},
            {"scrub_interval_seconds": -1e-3},
            {"acceleration": -0.5},
            {"cycles_per_access": 0.0},
            {"correction_cycles": -1},
            {"vdd_nominal": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TransientSpec(**kwargs)


class TestNullSpecs:
    def test_zero_acceleration_is_null(self):
        assert TransientSpec(acceleration=0.0).is_null

    def test_zero_rate_is_null(self):
        assert TransientSpec(fit_per_mbit_nominal=0.0).is_null

    def test_active_spec_is_not_null(self):
        assert not TransientSpec(acceleration=1e12).is_null


class TestContentIdentity:
    def test_equal_specs_share_digests(self):
        a = TransientSpec(acceleration=1e15, seed=7)
        b = TransientSpec(acceleration=1e15, seed=7)
        assert a == b
        assert canonical_digest(a) == canonical_digest(b)

    def test_seed_changes_digest(self):
        a = TransientSpec(seed=1)
        b = TransientSpec(seed=2)
        assert canonical_digest(a) != canonical_digest(b)

    def test_pickle_round_trip(self):
        spec = TransientSpec(acceleration=1e15, seed=3)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestModel:
    def test_soft_error_model_carries_parameters(self):
        spec = TransientSpec(
            fit_per_mbit_nominal=500.0, voltage_sensitivity=2.0
        )
        model = spec.soft_error_model()
        assert model.fit_per_mbit_nominal == 500.0
        assert model.voltage_sensitivity == 2.0

    def test_accelerated_rate_scales_linearly(self):
        base = TransientSpec(acceleration=1.0)
        fast = TransientSpec(acceleration=1e6)
        assert fast.accelerated_rate_per_bit(0.35) == pytest.approx(
            1e6 * base.accelerated_rate_per_bit(0.35)
        )
