"""Bit-vector helpers shared by the EDC codecs and the cache fault layer.

Words are represented in two interchangeable forms:

* an ``int`` (bit ``i`` is ``(word >> i) & 1``), convenient for storage, and
* a :class:`numpy.ndarray` of ``uint8`` values in {0, 1} with index ``i``
  holding bit ``i`` (LSB first), convenient for GF(2) linear algebra.
"""

from __future__ import annotations

import numpy as np


def int_to_bits(word: int, width: int) -> np.ndarray:
    """Expand ``word`` into a LSB-first uint8 bit array of length ``width``.

    Raises :class:`ValueError` if ``word`` does not fit in ``width`` bits or
    is negative.
    """
    if word < 0:
        raise ValueError("words must be non-negative")
    if width <= 0:
        raise ValueError("width must be positive")
    if word >> width:
        raise ValueError(f"value {word:#x} does not fit in {width} bits")
    bits = np.zeros(width, dtype=np.uint8)
    index = 0
    while word:
        if word & 1:
            bits[index] = 1
        word >>= 1
        index += 1
    return bits


def bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`int_to_bits` (LSB-first)."""
    value = 0
    for index in range(len(bits) - 1, -1, -1):
        value = (value << 1) | int(bits[index] & 1)
    return value


def popcount(word: int) -> int:
    """Number of set bits in a non-negative integer."""
    if word < 0:
        raise ValueError("popcount of a negative value is undefined here")
    return bin(word).count("1")


def parity(word: int) -> int:
    """Even/odd parity (0 or 1) of the set bits of ``word``."""
    return popcount(word) & 1


def random_word(rng: np.random.Generator, width: int) -> int:
    """A uniformly random ``width``-bit word drawn from ``rng``."""
    if width <= 0:
        raise ValueError("width must be positive")
    word = 0
    remaining = width
    while remaining > 0:
        chunk = min(remaining, 32)
        word = (word << chunk) | int(rng.integers(0, 1 << chunk))
        remaining -= chunk
    return word


def pack_words(words: list[int], width: int) -> np.ndarray:
    """Pack a list of ``width``-bit words into a 2-D bit matrix.

    Row ``r`` of the result is ``int_to_bits(words[r], width)``.
    """
    matrix = np.zeros((len(words), width), dtype=np.uint8)
    for row, word in enumerate(words):
        matrix[row] = int_to_bits(word, width)
    return matrix
