"""Tests for the ``sweep-cells`` and ``sustain`` experiment drivers."""

import pytest

from repro.experiments import run_experiment
from repro.sustainability import GRID_PROFILES


@pytest.fixture(scope="module")
def cells_result():
    return run_experiment("sweep-cells", trace_length=2_000, seed=3)


@pytest.fixture(scope="module")
def sustain_result():
    return run_experiment("sustain", trace_length=2_000, seed=3)


class TestSweepCells:
    def test_ranks_all_technologies(self, cells_result):
        assert cells_result.experiment_id == "sweep-cells"
        campaign = cells_result.data["campaign"]
        cells = {
            dict(candidate["point"])["ule_cell"]
            for candidate in campaign["candidates"]
        }
        assert cells == {"8T", "10T", "EDRAM", "GAIN"}

    def test_carbon_objective_is_priced(self, cells_result):
        assert cells_result.data["carbon_intensity"] == (
            GRID_PROFILES["world"]
        )
        for candidate in cells_result.data["campaign"]["candidates"]:
            assert candidate["metrics"]["co2_per_gib_ule"] > 0.0

    def test_frontier_is_reported(self, cells_result):
        assert cells_result.data["frontier_cells"]
        assert "carbon-ranked" in cells_result.title

    def test_carbon_profile_parameter(self):
        renewable = run_experiment(
            "sweep-cells", trace_length=2_000, seed=3, carbon="renewable"
        )
        assert renewable.data["carbon_intensity"] == (
            GRID_PROFILES["renewable"]
        )


class TestSustain:
    def test_report_card_covers_every_candidate(self, sustain_result):
        rows = sustain_result.data["rows"]
        cells = {dict(row["point"])["ule_cell"] for row in rows}
        assert cells == {"8T", "10T", "EDRAM", "GAIN"}
        for row in rows:
            assert row["average_power_w"] > 0.0
            assert set(row["co2_per_gib_year_g"]) == set(GRID_PROFILES)

    def test_dirtier_grids_cost_more(self, sustain_result):
        for row in sustain_result.data["rows"]:
            per_profile = row["co2_per_gib_year_g"]
            assert per_profile["renewable"] < per_profile["eu"]
            assert per_profile["world"] < per_profile["coal"]

    def test_esii_against_the_10t_baseline(self, sustain_result):
        rows = {
            (
                dict(row["point"])["ule_cell"],
                dict(row["point"])["ule_scheme"],
            ): row
            for row in sustain_result.data["rows"]
        }
        baseline = rows[("10T", "secded")]
        assert baseline["esii_vs_10t"] == pytest.approx(1.0)
        # The paper's headline: the coded 8T way beats the 10T baseline
        # on energy, hence on same-grid carbon.
        assert rows[("8T", "secded")]["esii_vs_10t"] > 1.0

    def test_technologies_stamped(self, sustain_result):
        assert "edram-1t1c" in sustain_result.data["cell_technologies"]
