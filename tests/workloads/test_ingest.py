"""Ingestion parser edge cases and ingest→store→load round trips.

The parsers are the trust boundary between the repo and arbitrary
text files off disk, so the malformed-input behaviour is pinned as
hard as the happy path: every rejection must carry ``file:line`` so
a bad line in a million-line trace is one click away.
"""

import numpy as np
import pytest

from repro.cpu.trace import InstrKind
from repro.workloads.ingest import (
    IngestError,
    PARSER_VERSION,
    file_digest,
    ingest_file,
    parse_k6,
    parse_memtrace,
    parse_trace_lines,
    sniff_format,
    trace_from_file,
)
from repro.workloads.store import TraceStore

K6_LINES = [
    "0x00001000 P_MEM_RD 12",
    "0x00002040 P_MEM_WR 30",
    "4096 READ 55",
    "0x00001000 P_MEM_RD 80",
]

MEMTRACE_LINES = [
    "0x400100: R 0x1000 8",
    "0x400104: W 0x2000 8",
    "0x400150: R 0x1008",
    "0x400000: W 0x3000 4",
]


class TestParseK6:
    def test_happy_path_kinds_and_addresses(self):
        arrays = parse_k6(K6_LINES)
        assert list(arrays["kind"]) == [
            InstrKind.LOAD, InstrKind.STORE, InstrKind.LOAD, InstrKind.LOAD
        ]
        assert list(arrays["addr"]) == [0x1000, 0x2040, 4096, 0x1000]
        # No pipeline info in this format: flags stay all-false.
        assert not arrays["dep_next"].any()
        assert not arrays["redirect"].any()

    def test_synthetic_pcs_are_a_sequential_loop(self):
        arrays = parse_k6(K6_LINES)
        pcs = arrays["pc"].astype(np.int64)
        assert list(np.diff(pcs)) == [4, 4, 4]

    def test_truncated_line_reports_file_and_line(self):
        lines = ["0x1000 P_MEM_RD 12", "0x2000 P_MEM_WR"]
        with pytest.raises(IngestError, match=r"trace\.k6:2: expected"):
            parse_k6(lines, origin="trace.k6")

    def test_garbage_command_rejected(self):
        with pytest.raises(IngestError, match=r":1: unknown command 'JMP'"):
            parse_k6(["0x1000 JMP 12"])

    def test_garbage_address_rejected(self):
        with pytest.raises(IngestError, match=r":1: bad address"):
            parse_k6(["zz&& P_MEM_RD 12"])

    def test_garbage_cycle_rejected(self):
        with pytest.raises(IngestError, match=r":1: bad cycle count"):
            parse_k6(["0x1000 P_MEM_RD soon"])

    def test_empty_input_rejected(self):
        with pytest.raises(IngestError, match="no records"):
            parse_k6([])

    def test_comments_and_blanks_skipped(self):
        lines = ["# header", "", *K6_LINES, "   "]
        assert len(parse_k6(lines)["addr"]) == len(K6_LINES)

    def test_crlf_endings_normalized(self):
        lines = [line + "\r\n" for line in K6_LINES]
        baseline = parse_k6(K6_LINES)
        crlf = parse_k6(lines)
        assert (crlf["addr"] == baseline["addr"]).all()

    def test_limit_and_skip_window_records(self):
        arrays = parse_k6(K6_LINES, limit=2, skip=1)
        assert list(arrays["addr"]) == [0x2040, 4096]

    def test_fully_skipped_is_empty(self):
        with pytest.raises(IngestError, match="fully skipped"):
            parse_k6(K6_LINES, skip=len(K6_LINES))


class TestParseMemtrace:
    def test_kinds_follow_records(self):
        arrays = parse_memtrace(MEMTRACE_LINES)
        kinds = list(arrays["kind"])
        # Record kinds survive; filler/branches are synthesized around
        # them (see the structure tests below).
        assert kinds.count(InstrKind.LOAD) == 2
        assert kinds.count(InstrKind.STORE) == 2

    def test_small_forward_gap_becomes_alu_filler(self):
        arrays = parse_memtrace(["0x400100: R 0x1000", "0x400110: W 0x2000"])
        # 0x400104..0x40010c fill as ALU between the two records.
        assert list(arrays["pc"]) == [
            0x400100, 0x400104, 0x400108, 0x40010C, 0x400110
        ]
        assert list(arrays["kind"][1:4]) == [InstrKind.ALU] * 3

    def test_backward_jump_becomes_redirecting_branch(self):
        arrays = parse_memtrace(["0x400100: R 0x1000", "0x400000: W 0x2000"])
        assert list(arrays["kind"]) == [
            InstrKind.LOAD, InstrKind.BRANCH, InstrKind.STORE
        ]
        assert list(arrays["redirect"]) == [False, True, False]

    def test_far_forward_jump_becomes_redirecting_branch(self):
        arrays = parse_memtrace(["0x400100: R 0x1000", "0x400400: W 0x2000"])
        assert InstrKind.BRANCH in arrays["kind"]
        assert arrays["redirect"].sum() == 1

    def test_adjacent_consumer_sets_dep_next(self):
        arrays = parse_memtrace(["0x400100: R 0x1000", "0x400104: W 0x1000"])
        assert bool(arrays["dep_next"][0]) is True

    def test_distant_consumer_leaves_dep_next_clear(self):
        arrays = parse_memtrace(["0x400100: R 0x1000", "0x400140: W 0x1000"])
        assert bool(arrays["dep_next"][0]) is False

    def test_missing_colon_reports_file_and_line(self):
        with pytest.raises(IngestError, match=r"pin\.out:1: expected"):
            parse_memtrace(["0x400100 R 0x1000"], origin="pin.out")

    def test_garbage_operation_rejected(self):
        with pytest.raises(IngestError, match=r":1: unknown operation 'X'"):
            parse_memtrace(["0x400100: X 0x1000"])

    def test_truncated_tail_rejected(self):
        with pytest.raises(IngestError, match=r":1: expected '<R\|W>"):
            parse_memtrace(["0x400100: R"])

    def test_garbage_size_rejected(self):
        with pytest.raises(IngestError, match=r":1: bad access size"):
            parse_memtrace(["0x400100: R 0x1000 big"])

    def test_empty_input_rejected(self):
        with pytest.raises(IngestError, match="no records"):
            parse_memtrace(["# only a comment"])

    def test_crlf_endings_normalized(self):
        lines = [line + "\r\n" for line in MEMTRACE_LINES]
        baseline = parse_memtrace(MEMTRACE_LINES)
        crlf = parse_memtrace(lines)
        assert (crlf["pc"] == baseline["pc"]).all()
        assert (crlf["kind"] == baseline["kind"]).all()

    def test_limit_windows_records_not_instructions(self):
        arrays = parse_memtrace(MEMTRACE_LINES, limit=2)
        # Two records plus any synthesized filler between them.
        assert int((arrays["kind"] != InstrKind.ALU).sum()) == 2


class TestDispatchAndSniff:
    def test_unknown_format_rejected(self):
        with pytest.raises(IngestError, match="unknown trace format"):
            parse_trace_lines("vcd", K6_LINES)

    def test_sniffs_k6(self, tmp_path):
        path = tmp_path / "t.k6"
        path.write_text("\n".join(K6_LINES) + "\n", encoding="utf-8")
        assert sniff_format(path) == "k6"

    def test_sniffs_memtrace(self, tmp_path):
        path = tmp_path / "pin.out"
        path.write_text("\n".join(MEMTRACE_LINES) + "\n", encoding="utf-8")
        assert sniff_format(path) == "memtrace"

    def test_sniff_skips_comment_header(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            "# produced by dramsim\n\n" + K6_LINES[0] + "\n",
            encoding="utf-8",
        )
        assert sniff_format(path) == "k6"

    def test_sniff_rejects_ambiguous(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_text("what is this\n", encoding="utf-8")
        with pytest.raises(IngestError, match="cannot infer"):
            sniff_format(path)

    def test_sniff_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.k6"
        path.write_text("", encoding="utf-8")
        with pytest.raises(IngestError, match="empty file"):
            sniff_format(path)


class TestIngestRoundTrip:
    @pytest.fixture
    def k6_file(self, tmp_path):
        path = tmp_path / "demo.k6"
        path.write_text("\n".join(K6_LINES) + "\n", encoding="utf-8")
        return path

    def test_trace_from_file_defaults_name_to_stem(self, k6_file):
        trace, fmt = trace_from_file(k6_file)
        assert (trace.name, fmt) == ("demo", "k6")

    def test_ingest_store_load_digest_round_trip(self, k6_file, tmp_path):
        store = TraceStore(tmp_path / "store")
        entry = ingest_file(k6_file, store=store)
        loaded = store.get(entry.ref())
        # Force a re-hash: the loaded bytes must re-address themselves.
        loaded.__dict__.pop("_content_digest", None)
        assert loaded.content_digest() == entry.digest
        direct, _ = trace_from_file(k6_file)
        assert direct.content_digest() == entry.digest

    def test_entry_records_full_provenance(self, k6_file, tmp_path):
        store = TraceStore(tmp_path / "store")
        entry = ingest_file(k6_file, store=store, name="mcf")
        assert entry.name == "mcf"
        assert entry.source_name == "demo.k6"
        assert entry.source_digest == file_digest(k6_file)
        assert entry.format == "k6"
        assert entry.parser_version == PARSER_VERSION

    def test_reingest_identical_bytes_is_idempotent(self, k6_file, tmp_path):
        store = TraceStore(tmp_path / "store")
        first = ingest_file(k6_file, store=store)
        again = ingest_file(k6_file, store=store)
        assert again == first
        assert store.verify() == [("demo", "ok", "4 instrs")]

    def test_name_collision_needs_force(self, k6_file, tmp_path):
        store = TraceStore(tmp_path / "store")
        ingest_file(k6_file, store=store)
        other = k6_file.with_name("other.k6")
        other.write_text("0x9000 P_MEM_WR 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="already maps"):
            ingest_file(other, store=store, name="demo")
        entry = ingest_file(other, store=store, name="demo", force=True)
        assert store.lookup("demo").digest == entry.digest

    def test_memtrace_round_trip(self, tmp_path):
        path = tmp_path / "pin.out"
        path.write_text(
            "\n".join(MEMTRACE_LINES) + "\n#eof\n", encoding="utf-8"
        )
        store = TraceStore(tmp_path / "store")
        entry = ingest_file(path, store=store)
        assert entry.format == "memtrace"
        loaded = store.get(entry.ref())
        direct, _ = trace_from_file(path)
        assert (loaded.pc == direct.pc).all()
        assert (loaded.kind == direct.kind).all()


FIXTURES = __import__("pathlib").Path(__file__).parent / "fixtures"

#: Parser-output digests of the golden fixtures, pinned at ingest-layer
#: birth.  A change means PARSER_VERSION must bump — the same bytes now
#: parse differently, so every cataloged trace is stale.
GOLDEN_DIGESTS = {
    "mcf.k6": (
        "6f824274820036ca67b5b4d640d5743eee322b6e9e33753dad5f9785f2f8d9b9"
    ),
    "stream_add.out": (
        "eb498898cd861aa72c954060a7f70ab08de531669947405e3b368b12653f2ad9"
    ),
}


class TestGoldenFixtures:
    @pytest.mark.parametrize("fixture", sorted(GOLDEN_DIGESTS))
    def test_fixture_digest_is_byte_pinned(self, fixture):
        trace, _ = trace_from_file(FIXTURES / fixture)
        assert trace.content_digest() == GOLDEN_DIGESTS[fixture]

    def test_fixtures_cover_both_formats(self):
        assert trace_from_file(FIXTURES / "mcf.k6")[1] == "k6"
        assert (
            trace_from_file(FIXTURES / "stream_add.out")[1] == "memtrace"
        )

    def test_fixtures_upgrade_mix1_components(self, tmp_path):
        """The trace-donation path end to end: ingesting fixtures named
        after mix1 components swaps those components to ingested."""
        from repro.workloads.source import IngestedSource, as_sources
        from repro.workloads.suites import MIX_SUITES

        store = TraceStore(tmp_path / "store")
        for fixture in GOLDEN_DIGESTS:
            ingest_file(FIXTURES / fixture, store=store)
        (mix,) = as_sources(
            (MIX_SUITES["mix1"],), length=400, seed=7, store=store
        )
        upgraded = {
            c.name for c in mix.components
            if isinstance(c, IngestedSource)
        }
        assert upgraded == {"mcf", "stream_add"}
