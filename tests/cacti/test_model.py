"""Tests for the cache-level energy model (repro.cacti.model)."""

import pytest

from repro.cacti.model import AccessEnergy, CacheEnergyModel
from repro.core.architect import build_cache_pair
from repro.tech.operating import (
    HP_OPERATING_POINT,
    Mode,
    ULE_OPERATING_POINT,
)


@pytest.fixture(scope="module")
def models_a(design_a_module):
    baseline, proposed = build_cache_pair(design_a_module)
    return CacheEnergyModel(baseline), CacheEnergyModel(proposed)


@pytest.fixture(scope="module")
def models_b(design_b_module):
    baseline, proposed = build_cache_pair(design_b_module)
    return CacheEnergyModel(baseline), CacheEnergyModel(proposed)


@pytest.fixture(scope="module")
def design_a_module():
    from repro.core.methodology import design_scenario
    from repro.core.scenarios import Scenario

    return design_scenario(Scenario.A)


@pytest.fixture(scope="module")
def design_b_module():
    from repro.core.methodology import design_scenario
    from repro.core.scenarios import Scenario

    return design_scenario(Scenario.B)


class TestAccessEnergy:
    def test_addition_and_scaling(self):
        a = AccessEnergy(array=1.0, edc=0.5)
        b = AccessEnergy(array=2.0, edc=0.25)
        total = a + b
        assert total.array == 3.0
        assert total.edc == 0.75
        assert total.total == 3.75
        assert a.scaled(2.0).total == 3.0


class TestProbeEnergies:
    def test_proposed_cheaper_at_both_modes(self, models_a):
        baseline, proposed = models_a
        for op in (HP_OPERATING_POINT, ULE_OPERATING_POINT):
            assert proposed.probe_read_energy(op).total < (
                baseline.probe_read_energy(op).total
            )

    def test_ule_probe_far_cheaper_than_hp_probe(self, models_a):
        """Only one way is powered at ULE mode (and Vdd is 0.35)."""
        baseline, _ = models_a
        hp = baseline.probe_read_energy(HP_OPERATING_POINT).total
        ule = baseline.probe_read_energy(ULE_OPERATING_POINT).total
        assert ule < hp / 5

    def test_write_probe_cheaper_than_read_probe(self, models_a):
        baseline, _ = models_a
        op = HP_OPERATING_POINT
        assert baseline.probe_write_energy(op).total < (
            baseline.probe_read_energy(op).total
        )

    def test_scenario_a_no_edc_energy_at_hp(self, models_a):
        """'At HP mode, SECDED is simply turned off.'"""
        _, proposed = models_a
        assert proposed.probe_read_energy(HP_OPERATING_POINT).edc == 0.0
        extra = proposed.read_hit_extra_energy("ule", HP_OPERATING_POINT)
        assert extra.edc == 0.0

    def test_scenario_a_edc_active_at_ule(self, models_a):
        _, proposed = models_a
        assert proposed.probe_read_energy(ULE_OPERATING_POINT).edc > 0
        extra = proposed.read_hit_extra_energy("ule", ULE_OPERATING_POINT)
        assert extra.edc > 0

    def test_scenario_b_edc_energy_in_both_configs_at_hp(self, models_b):
        baseline, proposed = models_b
        assert baseline.probe_read_energy(HP_OPERATING_POINT).edc > 0
        assert proposed.probe_read_energy(HP_OPERATING_POINT).edc > 0


class TestOperations:
    def test_fill_more_expensive_than_word_write(self, models_a):
        baseline, _ = models_a
        op = HP_OPERATING_POINT
        assert baseline.fill_energy("hp", op).total > (
            baseline.write_hit_energy("hp", op).total
        )

    def test_writeback_positive(self, models_a):
        baseline, _ = models_a
        assert baseline.writeback_energy("ule", HP_OPERATING_POINT).total > 0


class TestLeakage:
    def test_gated_hp_ways_leak_residually_at_ule(self, models_a):
        """Gated-Vdd: HP ways cost ~3% of their nominal leakage."""
        baseline, _ = models_a
        hp_leak = baseline.groups["hp"].leakage_power(ULE_OPERATING_POINT)
        active_leak = baseline.groups["hp"].leakage_power(
            HP_OPERATING_POINT
        )
        assert hp_leak.array < active_leak.array  # gated and at lower Vdd

    def test_proposed_leaks_less(self, models_a):
        baseline, proposed = models_a
        for op in (HP_OPERATING_POINT, ULE_OPERATING_POINT):
            assert proposed.leakage_power(op).array < (
                baseline.leakage_power(op).array
            )


class TestAreaAndLatency:
    def test_proposed_smaller(self, models_a, models_b):
        for baseline, proposed in (models_a, models_b):
            assert proposed.area < baseline.area

    def test_area_by_group_sums(self, models_a):
        baseline, _ = models_a
        assert sum(baseline.area_by_group().values()) == pytest.approx(
            baseline.area
        )

    def test_hit_latency_edc_cycle(self, models_a):
        """+1 cycle only for the proposed cache at ULE mode."""
        baseline, proposed = models_a
        assert baseline.hit_latency_cycles(ULE_OPERATING_POINT) == 1
        assert proposed.hit_latency_cycles(ULE_OPERATING_POINT) == 2
        assert proposed.hit_latency_cycles(HP_OPERATING_POINT) == 1

    def test_access_times_fit_cycles(self, models_a):
        baseline, proposed = models_a
        for model in (baseline, proposed):
            assert model.access_time(HP_OPERATING_POINT) < (
                HP_OPERATING_POINT.cycle_time
            )
            assert model.access_time(ULE_OPERATING_POINT) < (
                ULE_OPERATING_POINT.cycle_time
            )
