"""Dependency-free surrogate models for campaign objectives.

A :class:`SurrogateEnsemble` predicts one scalar metric from candidate
feature vectors (:mod:`repro.explore.features`) *with uncertainty*, out
of two complementary dependency-free regressors:

* **ridge regression** on standardized features — closed-form, captures
  the global monotone trends (bigger cache, bigger area, higher EPI);
* **k-nearest-neighbour averaging** — captures the local, non-linear
  structure the linear term misses (scheme x cell interactions).

Each family is bagged over seeded bootstrap resamples; the ensemble
prediction is the member mean and the uncertainty is the member
standard deviation — high where members disagree, which is exactly
where the active-learning loop should spend its simulation budget.

Everything is bit-reproducible: bootstrap draws come from
:func:`repro.util.rng.derive_seed` child streams keyed by (seed, metric
label, member index), all reductions are fixed-order numpy arithmetic,
and ties in the kNN sort break by stable index order.  Training twice
on the same rows — whatever the submission order that produced them —
yields byte-identical predictions, the property the campaign's
serial-vs-parallel contract extends to surrogate runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.util.rng import derive_seed

#: Default bootstrap members per regressor family.
DEFAULT_MEMBERS = 8

#: Default neighbourhood size of the kNN members.
DEFAULT_NEIGHBOURS = 5

#: Ridge regularization strength (features are standardized first).
DEFAULT_RIDGE_LAMBDA = 1e-2


def _standardize(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-wise (x - mean) / std with a floor on degenerate stds."""
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std = np.where(std > 1e-12, std, 1.0)
    return (matrix - mean) / std, mean, std


@dataclass(frozen=True)
class _RidgeMember:
    """One fitted ridge regressor (bias folded in)."""

    mean: np.ndarray
    std: np.ndarray
    weights: np.ndarray
    bias: float

    @classmethod
    def fit(
        cls, X: np.ndarray, y: np.ndarray, lam: float
    ) -> "_RidgeMember":
        Z, mean, std = _standardize(X)
        target_mean = float(y.mean())
        centred = y - target_mean
        gram = Z.T @ Z + lam * len(Z) * np.eye(Z.shape[1])
        weights = np.linalg.solve(gram, Z.T @ centred)
        return cls(mean=mean, std=std, weights=weights, bias=target_mean)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return ((X - self.mean) / self.std) @ self.weights + self.bias


@dataclass(frozen=True)
class _KnnMember:
    """One fitted kNN regressor over standardized features."""

    mean: np.ndarray
    std: np.ndarray
    points: np.ndarray
    targets: np.ndarray
    neighbours: int

    @classmethod
    def fit(
        cls, X: np.ndarray, y: np.ndarray, neighbours: int
    ) -> "_KnnMember":
        Z, mean, std = _standardize(X)
        return cls(
            mean=mean,
            std=std,
            points=Z,
            targets=y,
            neighbours=min(neighbours, len(Z)),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self.mean) / self.std
        out = np.empty(len(Z), dtype=float)
        for i, z in enumerate(Z):
            distances = np.sqrt(((self.points - z) ** 2).sum(axis=1))
            # Stable sort: equal distances keep training order, so
            # predictions never depend on tie-breaking luck.
            nearest = np.argsort(distances, kind="stable")[
                : self.neighbours
            ]
            weights = 1.0 / (distances[nearest] + 1e-9)
            out[i] = float(
                (self.targets[nearest] * weights).sum() / weights.sum()
            )
        return out


@dataclass
class SurrogateEnsemble:
    """A seeded ridge + kNN bootstrap bag for one metric.

    Parameters
    ----------
    seed : int
        Root seed of the bootstrap streams.
    label : str
        Metric label folded into the derived seeds, so each metric's
        ensemble draws decorrelated resamples.
    members : int
        Bootstrap members *per family* (ridge and kNN).
    neighbours : int
        Neighbourhood size of the kNN members (clamped to the training
        size).
    ridge_lambda : float
        Ridge regularization strength.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.linspace(0.0, 1.0, 12).reshape(-1, 1)
    >>> y = 3.0 * X[:, 0] + 1.0
    >>> model = SurrogateEnsemble(seed=7, label="epi").fit(X, y)
    >>> mean, std = model.predict(np.array([[0.5]]))
    >>> bool(abs(mean[0] - 2.5) < 0.2)
    True
    >>> float(std[0]) >= 0.0
    True
    """

    seed: int = 0
    label: str = "metric"
    members: int = DEFAULT_MEMBERS
    neighbours: int = DEFAULT_NEIGHBOURS
    ridge_lambda: float = DEFAULT_RIDGE_LAMBDA
    _fitted: list = field(default_factory=list, repr=False)

    def fit(
        self, X: np.ndarray, y: np.ndarray
    ) -> "SurrogateEnsemble":
        """Fit the bag on (features, targets); returns self.

        Each member trains on a bootstrap resample drawn from its own
        :func:`derive_seed` child stream; a resample that collapses to
        fewer than two distinct rows falls back to the full training
        set (tiny seed batches must not produce degenerate members).
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (n, d) aligned with y")
        if not len(X):
            raise ValueError("cannot fit a surrogate on zero rows")
        self._fitted = []
        for index in range(self.members):
            for family in ("ridge", "knn"):
                rng = np.random.default_rng(
                    derive_seed(
                        self.seed, "surrogate", self.label, family,
                        index,
                    )
                )
                chosen = rng.integers(len(X), size=len(X))
                if len(np.unique(chosen)) < 2:
                    chosen = np.arange(len(X))
                sample_X, sample_y = X[chosen], y[chosen]
                if family == "ridge":
                    self._fitted.append(
                        _RidgeMember.fit(
                            sample_X, sample_y, self.ridge_lambda
                        )
                    )
                else:
                    self._fitted.append(
                        _KnnMember.fit(
                            sample_X, sample_y, self.neighbours
                        )
                    )
        return self

    def predict(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(mean, uncertainty) over the ensemble for each row of X."""
        if not self._fitted:
            raise RuntimeError("fit the ensemble before predicting")
        X = np.asarray(X, dtype=float)
        stack = np.stack(
            [member.predict(X) for member in self._fitted]
        )
        return stack.mean(axis=0), stack.std(axis=0)


class MetricSurrogate:
    """One :class:`SurrogateEnsemble` per simulated metric.

    The campaign-facing wrapper: ``fit`` takes the evaluated feature
    matrix plus a ``{metric: targets}`` mapping, ``predict`` returns
    ``{metric: (mean, std)}`` for a query matrix.  Metric order never
    matters — each metric's ensemble derives its own seed from its
    label.
    """

    def __init__(
        self,
        seed: int = 0,
        members: int = DEFAULT_MEMBERS,
        neighbours: int = DEFAULT_NEIGHBOURS,
    ) -> None:
        self.seed = int(seed)
        self.members = int(members)
        self.neighbours = int(neighbours)
        self._models: dict[str, SurrogateEnsemble] = {}

    def fit(
        self,
        X: np.ndarray,
        targets: Mapping[str, Sequence[float]],
    ) -> "MetricSurrogate":
        """Fit one ensemble per metric; returns self."""
        self._models = {}
        for metric in sorted(targets):
            self._models[metric] = SurrogateEnsemble(
                seed=self.seed,
                label=metric,
                members=self.members,
                neighbours=self.neighbours,
            ).fit(X, np.asarray(targets[metric], dtype=float))
        return self

    @property
    def metrics(self) -> tuple[str, ...]:
        """The fitted metric labels, sorted."""
        return tuple(sorted(self._models))

    def predict(
        self, X: np.ndarray
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """``{metric: (mean, std)}`` for each query row."""
        return {
            metric: model.predict(X)
            for metric, model in self._models.items()
        }
