"""Tests for repro.reliability.fault_maps."""

import numpy as np
import pytest

from repro.reliability.fault_maps import FaultMap, generate_fault_map


class TestGeneration:
    def test_zero_pf_clean_map(self, rng):
        fmap = generate_fault_map(0.0, words=100, word_bits=39, rng=rng)
        assert fmap.faulty_bit_count == 0
        assert fmap.faulty_words() == []

    def test_statistics_match_pf(self, rng):
        pf = 0.01
        fmap = generate_fault_map(pf, words=2000, word_bits=40, rng=rng)
        total_bits = 2000 * 40
        expected = total_bits * pf
        assert fmap.faulty_bit_count == pytest.approx(expected, rel=0.25)

    def test_deterministic(self):
        a = generate_fault_map(
            0.01, 100, 39, np.random.default_rng(3)
        )
        b = generate_fault_map(
            0.01, 100, 39, np.random.default_rng(3)
        )
        assert a.fault_masks == b.fault_masks
        assert a.stuck_values == b.stuck_values

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_fault_map(2.0, 10, 10, rng)
        with pytest.raises(ValueError):
            generate_fault_map(0.1, 10, 0, rng)


class TestApplication:
    def test_clean_word_passthrough(self):
        fmap = FaultMap(word_bits=8, words=4)
        assert fmap.apply(2, 0xAB) == 0xAB

    def test_stuck_at_one(self):
        fmap = FaultMap(
            word_bits=8,
            words=1,
            fault_masks={0: 0b0001},
            stuck_values={0: 0b0001},
        )
        assert fmap.apply(0, 0b0000) == 0b0001
        assert fmap.apply(0, 0b0001) == 0b0001  # idempotent on match

    def test_stuck_at_zero(self):
        fmap = FaultMap(
            word_bits=8,
            words=1,
            fault_masks={0: 0b1000},
            stuck_values={0: 0},
        )
        assert fmap.apply(0, 0b1111) == 0b0111

    def test_counters(self):
        fmap = FaultMap(
            word_bits=8,
            words=3,
            fault_masks={0: 0b11, 2: 0b100},
            stuck_values={0: 0b10},
        )
        assert fmap.faulty_bit_count == 3
        assert fmap.faulty_words() == [0, 2]
        assert fmap.faults_in_word(0) == 2
        assert fmap.faults_in_word(1) == 0
        assert fmap.max_faults_per_word() == 2

    def test_flip_probability_half_for_random_data(self, rng):
        """A stuck bit corrupts random data with probability 1/2 —
        the property the EDC layer's expected behaviour relies on."""
        fmap = generate_fault_map(0.02, 500, 32, rng)
        flips = 0
        trials = 0
        for word in fmap.faulty_words():
            for _ in range(20):
                value = int(rng.integers(0, 1 << 32))
                read = fmap.apply(word, value)
                flipped = bin(read ^ value).count("1")
                flips += flipped
                trials += fmap.faults_in_word(word)
        assert flips / trials == pytest.approx(0.5, abs=0.05)
