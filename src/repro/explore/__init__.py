"""Design-space exploration: declarative sweeps over chip candidates.

The subsystem in one breath::

    DesignSpace  --sample-->  points  --build_candidate-->  Candidate
        --ExplorationCampaign.run (one SimulationSession batch)-->
    CampaignResult  --reduce-->  Pareto frontier + sensitivity + ranking

A surrogate-guided alternative (``ExplorationCampaign.run_surrogate``)
reaches the same frontier on a fraction of the simulated jobs: it
featurizes candidates (:mod:`repro.explore.features`), fits seeded
regressor ensembles (:mod:`repro.explore.surrogate`) and spends its
budget on the predicted frontier plus the most uncertain points until
the hypervolume converges (:mod:`repro.explore.frontier`).

See DESIGN.md section 7 and ``python -m repro sweep --help``.
"""

from repro.explore.campaign import (
    CARBON_OBJECTIVE,
    POPULATION_OBJECTIVES,
    TRANSIENT_OBJECTIVE,
    CampaignResult,
    CandidateOutcome,
    ExplorationCampaign,
    SurrogateCampaignResult,
    SurrogateRound,
    SurrogateSettings,
)
from repro.explore.features import FeatureSchema, free_metrics
from repro.explore.frontier import (
    ConvergenceTracker,
    hypervolume,
    knee_index,
    reference_point,
)
from repro.explore.candidates import (
    Candidate,
    CandidateError,
    build_candidate,
    default_constraints,
    default_space,
)
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    dominates,
    pareto_indices,
    rank_rows,
    sensitivity,
)
from repro.explore.space import Axis, DesignSpace
from repro.explore.surrogate import MetricSurrogate, SurrogateEnsemble

__all__ = [
    "Axis",
    "DesignSpace",
    "Candidate",
    "CandidateError",
    "build_candidate",
    "default_constraints",
    "default_space",
    "ExplorationCampaign",
    "CampaignResult",
    "CandidateOutcome",
    "SurrogateSettings",
    "SurrogateRound",
    "SurrogateCampaignResult",
    "FeatureSchema",
    "free_metrics",
    "MetricSurrogate",
    "SurrogateEnsemble",
    "ConvergenceTracker",
    "hypervolume",
    "knee_index",
    "reference_point",
    "Objective",
    "DEFAULT_OBJECTIVES",
    "CARBON_OBJECTIVE",
    "POPULATION_OBJECTIVES",
    "TRANSIENT_OBJECTIVE",
    "dominates",
    "pareto_indices",
    "rank_rows",
    "sensitivity",
]
