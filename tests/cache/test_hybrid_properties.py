"""Hypothesis: hybrid-cache invariants under random access/switch mixes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.hybrid import HybridCache
from repro.core.architect import build_cache_pair
from repro.tech.operating import Mode


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    operations=st.integers(100, 600),
    switch_period=st.integers(20, 150),
)
def test_invariants_under_random_switching(
    seed, operations, switch_period, design_a
):
    """Whatever the access/switch interleaving:

    * counter identities hold;
    * the active-way set always matches the mode;
    * at ULE mode no HP-way ever produces a hit or a fill;
    * resident lines never exceed the active capacity.
    """
    _, proposed = build_cache_pair(design_a)
    cache = HybridCache(proposed, mode=Mode.HP)
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 16, size=operations)
    writes = rng.random(operations) < 0.3

    for step, (address, write) in enumerate(zip(addresses, writes)):
        if step and step % switch_period == 0:
            cache.set_mode(
                Mode.ULE if cache.mode is Mode.HP else Mode.HP
            )
        result = cache.access(int(address), bool(write))
        if cache.mode is Mode.ULE:
            assert result.group == "ule"
        active = cache.active_ways()
        expected_count = 1 if cache.mode is Mode.ULE else 8
        assert len(active) == expected_count

    stats = cache.stats
    assert stats.reads + stats.writes == operations
    assert stats.hits + stats.misses == operations
    assert stats.fills == stats.misses
    assert sum(stats.group_fills.values()) == stats.fills
    capacity = len(cache.active_ways()) * proposed.sets
    assert cache.core.resident_lines() <= max(
        capacity, proposed.sets * 8
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_flush_conservation(seed, design_a):
    """Every dirty line flushed on a switch is counted exactly once."""
    _, proposed = build_cache_pair(design_a)
    cache = HybridCache(proposed, mode=Mode.HP)
    rng = np.random.default_rng(seed)
    for address in rng.integers(0, 1 << 14, size=300):
        cache.access(int(address), is_write=True)
    dirty_before = sum(
        1
        for index in range(proposed.sets)
        for way in range(proposed.ways - 1)  # HP ways only
        if cache.core._tags[index][way] is not None
        and cache.core._dirty[index][way]
    )
    flushed = cache.set_mode(Mode.ULE)
    assert flushed == dirty_before
