"""Common interface of the block codes used to protect cache words."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DecodeStatus(enum.Enum):
    """Outcome of decoding one received word."""

    CLEAN = "clean"              #: syndrome zero, word accepted as-is
    CORRECTED = "corrected"      #: correctable error fixed
    DETECTED = "detected"        #: uncorrectable error flagged

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one codeword.

    Attributes:
        data: the decoded data word (meaningful unless ``status`` is
            ``DETECTED``).
        status: see :class:`DecodeStatus`.
        corrected_positions: codeword bit positions that were flipped.
    """

    data: int
    status: DecodeStatus
    corrected_positions: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the data field is trustworthy."""
        return self.status is not DecodeStatus.DETECTED


class LinearBlockCode:
    """Abstract (n, k) binary linear block code over integer words.

    Bit convention: LSB-first; data occupies the *low* ``k`` bits of the
    data word argument.  Codeword layout is implementation-defined but
    stable, with :meth:`extract_data` as the accessor used by tests.
    """

    #: codeword length in bits
    n: int
    #: data length in bits
    k: int
    #: guaranteed number of correctable random bit errors
    correctable: int
    #: guaranteed number of detectable random bit errors
    detectable: int

    @property
    def check_bits(self) -> int:
        """Number of redundancy bits (n - k)."""
        return self.n - self.k

    def encode(self, data: int) -> int:
        """Encode ``data`` (k bits) into an n-bit codeword."""
        raise NotImplementedError

    def decode(self, received: int) -> DecodeResult:
        """Decode an n-bit received word."""
        raise NotImplementedError

    def extract_data(self, codeword: int) -> int:
        """Strip check bits from an (assumed clean) codeword."""
        raise NotImplementedError

    def _check_data_range(self, data: int) -> None:
        if data < 0 or data >> self.k:
            raise ValueError(f"data must fit in {self.k} bits")

    def _check_word_range(self, word: int) -> None:
        if word < 0 or word >> self.n:
            raise ValueError(f"received word must fit in {self.n} bits")

    def describe(self) -> str:
        """Short human-readable identification."""
        return (
            f"{type(self).__name__}(n={self.n}, k={self.k}, "
            f"correct={self.correctable}, detect={self.detectable})"
        )
