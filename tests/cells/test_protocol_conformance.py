"""Protocol conformance for every registered cell technology.

These are the contract tests behind the pluggable API: whatever a
technology's physics, its registered object must satisfy
:class:`repro.cells.CellTechnology`, its sized designs must satisfy
:class:`repro.cells.SizedCell`, and a handful of universal laws must
hold — positive area, failure probability that improves with supply and
with up-sizing, energy terms monotone in supply, and a canonical
identity that round-trips and stays distinct per technology.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cacti.array import SramArray
from repro.cells import (
    CellTechnology,
    SizedCell,
    registered_technologies,
    technology_by_name,
)
from repro.util.canonical import canonical_text

ALL_NAMES = registered_technologies()
TECH = st.sampled_from(ALL_NAMES)

#: Supplies where every registered technology is operable (the deepest
#: functional floor is 10T's 0.30 V; eDRAM/gain reach 0.25 V).
VDD = st.floats(0.35, 1.1)
SIZE = st.floats(1.0, 8.0)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestStructuralConformance:
    def test_technology_protocol(self, name):
        technology = technology_by_name(name)
        assert isinstance(technology, CellTechnology)
        assert technology.vmin_functional > 0.0
        assert technology.technology  # non-empty canonical token

    def test_sized_cell_protocol(self, name):
        design = technology_by_name(name).design()
        assert isinstance(design, SizedCell)
        assert design.technology == technology_by_name(name).technology

    def test_geometry_is_physical(self, name):
        design = technology_by_name(name).design()
        assert design.area > 0.0
        assert design.width_m > 0.0 and design.height_m > 0.0
        assert design.width_m * design.height_m == pytest.approx(
            design.area
        )

    def test_ports_are_sane(self, name):
        design = technology_by_name(name).design()
        assert design.read_bitlines in (1, 2)
        assert design.write_bitlines in (1, 2)
        for cap in (
            design.read_wordline_cap_per_cell,
            design.write_wordline_cap_per_cell,
            design.read_bitline_cap_per_cell,
            design.write_bitline_cap_per_cell,
        ):
            assert cap > 0.0

    def test_resized_preserves_identity(self, name):
        design = technology_by_name(name).design()
        bigger = design.resized(2.0)
        assert bigger.size_factor == 2.0
        assert bigger.technology == design.technology
        assert bigger.cell_name == design.cell_name
        assert bigger.area > design.area

    def test_describe_mentions_the_cell(self, name):
        design = technology_by_name(name).design()
        assert design.cell_name in design.describe()


class TestCanonicalIdentity:
    def test_tokens_are_distinct_across_technologies(self):
        tokens = [
            technology_by_name(name).technology for name in ALL_NAMES
        ]
        assert len(set(tokens)) == len(tokens)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_design_canonical_form_round_trips(self, name):
        """Equal designs canonicalize identically; sizes separate."""
        technology = technology_by_name(name)
        one = canonical_text(technology.design(1.25))
        same = canonical_text(technology.design(1.25))
        other = canonical_text(technology.design(1.30))
        assert one == same
        assert one != other

    def test_canonical_forms_separate_technologies(self):
        forms = {
            canonical_text(technology_by_name(name).design())
            for name in ALL_NAMES
        }
        assert len(forms) == len(ALL_NAMES)


@settings(max_examples=60, deadline=None)
@given(name=TECH, vdd=VDD, size=SIZE)
def test_failure_probability_is_a_probability(name, vdd, size):
    pf = technology_by_name(name).failure_probability(vdd, size)
    assert 0.0 <= pf <= 1.0


@settings(max_examples=60, deadline=None)
@given(name=TECH, low=VDD, high=VDD)
def test_failure_probability_improves_with_supply(name, low, high):
    """More supply never hurts margin (the paper's Vdd knob)."""
    if low > high:
        low, high = high, low
    technology = technology_by_name(name)
    assert technology.failure_probability(high) <= (
        technology.failure_probability(low) + 1e-15
    )


@settings(max_examples=60, deadline=None)
@given(name=TECH, vdd=VDD, small=SIZE, big=SIZE)
def test_failure_probability_improves_with_size(name, vdd, small, big):
    """Up-sizing never hurts margin (Pelgrom: beta ~ sqrt(size)).

    Only claimed in the operable region: below the write-ability floor
    a 6T becomes write-limited and up-sizing can legitimately hurt.
    """
    if small > big:
        small, big = big, small
    technology = technology_by_name(name)
    assume(technology.is_operable(vdd))
    assert technology.failure_probability(vdd, big) <= (
        technology.failure_probability(vdd, small) + 1e-15
    )


@settings(max_examples=40, deadline=None)
@given(name=TECH, low=VDD, high=VDD)
def test_array_energy_monotone_in_supply(name, low, high):
    """Switching energy and static power grow with the supply.

    Write energy is pure CV^2 and leakage grows with Vdd for every
    technology; read energy is *not* claimed monotone, because its
    sensing swing and access-time terms scale differently — it only has
    to stay positive.
    """
    if low > high:
        low, high = high, low
    if high - low < 1e-6:
        return
    array = SramArray(
        rows=64, cols=32, cell=technology_by_name(name).design()
    )
    assert array.write_energy(high) >= array.write_energy(low)
    assert array.leakage_power(high) >= array.leakage_power(low)
    assert array.read_energy(low) > 0.0
    assert array.read_energy(high) > 0.0


@settings(max_examples=30, deadline=None)
@given(name=TECH, vdd=st.floats(0.5, 1.0))
def test_size_for_pf_meets_its_target(name, vdd):
    """size_for_pf either meets the target or refuses with ValueError."""
    technology = technology_by_name(name)
    assume(technology.is_operable(vdd))
    target = 1e-4
    try:
        size = technology.size_for_pf(vdd, target)
    except ValueError:
        # Legitimate refusal: no positive nominal margin at this Vdd,
        # or no size within the search bound reaches the target.
        return
    assert size >= 1.0
    assert technology.failure_probability(vdd, size) <= target
