"""Tests for repro.sram.energy (CellElectricals)."""

import pytest

from repro.sram.cells import CELL_6T, CELL_8T, CELL_10T, CellDesign
from repro.sram.energy import CellElectricals


class TestCellElectricals:
    def test_mirrors_design(self):
        design = CellDesign(CELL_8T, 2.0)
        electricals = CellElectricals(design)
        assert electricals.read_bitlines == 1
        assert electricals.write_bitlines == 2
        assert not electricals.differential_read
        assert electricals.area == design.area

    def test_10t_heavier_than_6t(self):
        """At equal size factor, 10T loads its bitlines at least as much
        and leaks more (more, wider devices)."""
        e6 = CellElectricals(CellDesign(CELL_6T, 1.0))
        e10 = CellElectricals(CellDesign(CELL_10T, 1.0))
        assert e10.leakage_power(1.0) > e6.leakage_power(1.0)
        assert e10.area > e6.area

    def test_nst_sized_10t_dwarfs_coded_8t(self, design_a):
        """The energy story of the paper in one assertion: the designed
        10T cell leaks much more than the designed 8T cell."""
        e10 = CellElectricals(design_a.cell_10t)
        e8 = CellElectricals(design_a.cell_8t)
        assert e10.leakage_power(0.35) > 1.5 * e8.leakage_power(0.35)
        assert e10.area > 1.8 * e8.area

    def test_geometry_consistency(self):
        electricals = CellElectricals(CellDesign(CELL_6T))
        assert electricals.cell_width * electricals.cell_height == (
            pytest.approx(electricals.area)
        )
