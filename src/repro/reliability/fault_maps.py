"""Concrete hard-fault maps for functional simulation.

The analytic yield model answers "what fraction of dies work"; the fault
map makes one *specific die*: every stored bit of a protected region is
independently hard-faulty with probability ``pf_bit``, and a faulty bit is
stuck at a random polarity.  The cache simulator applies the map on every
read so the EDC layer sees realistic (data-dependent) corruption, and Monte
Carlo over many maps validates Eq. (1)-(2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class FaultMap:
    """Stuck-at fault map over ``words`` words of ``word_bits`` bits.

    Attributes:
        word_bits: stored bits per word.
        words: number of words.
        fault_masks: word index -> bitmask of faulty positions.
        stuck_values: word index -> bitmask of the stuck polarity for the
            faulty positions (only bits inside the fault mask matter).
    """

    word_bits: int
    words: int
    fault_masks: dict[int, int] = field(default_factory=dict)
    stuck_values: dict[int, int] = field(default_factory=dict)

    @property
    def faulty_bit_count(self) -> int:
        """Total number of stuck bits in the map."""
        return sum(bin(mask).count("1") for mask in self.fault_masks.values())

    def faulty_words(self) -> list[int]:
        """Indices of words containing at least one stuck bit."""
        return sorted(self.fault_masks)

    def faults_in_word(self, word_index: int) -> int:
        """Number of stuck bits in one word."""
        return bin(self.fault_masks.get(word_index, 0)).count("1")

    def max_faults_per_word(self) -> int:
        """The worst word of the map."""
        if not self.fault_masks:
            return 0
        return max(
            bin(mask).count("1") for mask in self.fault_masks.values()
        )

    def apply(self, word_index: int, stored_value: int) -> int:
        """Read-out value of ``stored_value`` through the stuck bits."""
        mask = self.fault_masks.get(word_index, 0)
        if mask == 0:
            return stored_value
        stuck = self.stuck_values.get(word_index, 0)
        return (stored_value & ~mask) | (stuck & mask)


def generate_fault_map(
    pf_bit: float,
    words: int,
    word_bits: int,
    rng: np.random.Generator,
) -> FaultMap:
    """Sample a fault map with i.i.d. per-bit failures.

    The total fault count is drawn binomially, then placed uniformly
    without replacement — equivalent to per-bit Bernoulli draws but fast
    for the tiny Pf values of sized cells.
    """
    if not 0.0 <= pf_bit <= 1.0:
        raise ValueError("pf_bit must be a probability")
    if words < 0 or word_bits <= 0:
        raise ValueError("bad geometry")
    total_bits = words * word_bits
    fault_count = int(rng.binomial(total_bits, pf_bit)) if total_bits else 0
    fault_masks: dict[int, int] = {}
    stuck_values: dict[int, int] = {}
    if fault_count:
        positions = rng.choice(total_bits, size=fault_count, replace=False)
        polarities = rng.integers(0, 2, size=fault_count)
        for position, polarity in zip(positions, polarities):
            word_index = int(position) // word_bits
            bit = int(position) % word_bits
            fault_masks[word_index] = fault_masks.get(word_index, 0) | (
                1 << bit
            )
            if polarity:
                stuck_values[word_index] = stuck_values.get(
                    word_index, 0
                ) | (1 << bit)
    return FaultMap(
        word_bits=word_bits,
        words=words,
        fault_masks=fault_masks,
        stuck_values=stuck_values,
    )
