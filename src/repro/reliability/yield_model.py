"""Cache yield under hard faults — Equations (1) and (2) of the paper.

Equation (1): the probability that one protected word (n data bits + k
check bits) is *usable*, i.e. contains at most ``i_max`` hard-faulty bits,
where ``i_max`` is the number of hard faults the word's code can absorb
(1 for 8T+SECDED in scenario A and 8T+DECTED in scenario B — DECTED's
second correction stays reserved for soft errors):

    P(word) = sum_{i=0}^{i_max} C(n+k, i) * Pf^i * (1-Pf)^(n+k-i)

Equation (2): the cache yields when every data and tag word is usable:

    Y = P(data)^DW * P(tag)^TW

The module also reproduces the paper's worked example: "to have a 99 %
yield for an 8 KB cache, faulty bit rate Pf must be 1.22e-6", which matches
the *linearized* form ``Pf = (1 - Y) / bits`` with ``bits = 8192`` (the
data bits of one 1 KB way — see DESIGN.md, "Known paper quirk").
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np


def word_survival_probability(
    pf_bit: float, word_bits: int, correctable: int
) -> float:
    """Paper Eq. (1): P(word usable) with a hard-fault budget.

    Args:
        pf_bit: per-bit hard-failure probability.
        word_bits: total stored bits of the word (data + check bits).
        correctable: hard faults the word tolerates (``i_max``).
    """
    if not 0.0 <= pf_bit <= 1.0:
        raise ValueError("pf_bit must be a probability")
    if word_bits <= 0:
        raise ValueError("word_bits must be positive")
    if correctable < 0:
        raise ValueError("correctable must be >= 0")
    survive = 0.0
    for i in range(min(correctable, word_bits) + 1):
        survive += (
            comb(word_bits, i)
            * pf_bit**i
            * (1.0 - pf_bit) ** (word_bits - i)
        )
    return min(survive, 1.0)


@dataclass(frozen=True)
class WordOrganization:
    """The word structure of one protected cache region (paper Eq. 2).

    Attributes:
        data_words: number of data words (DW).
        data_word_bits: stored bits per data word, n + k.
        tag_words: number of tag words (TW).
        tag_word_bits: stored bits per tag word, n + k.
        hard_fault_budget: correctable hard faults per word (i_max).
    """

    data_words: int
    data_word_bits: int
    tag_words: int
    tag_word_bits: int
    hard_fault_budget: int = 0

    @property
    def total_bits(self) -> int:
        """All stored bits of the organization."""
        return (
            self.data_words * self.data_word_bits
            + self.tag_words * self.tag_word_bits
        )

    def yield_at(self, pf_bit: float) -> float:
        """Paper Eq. (2) for this organization at a per-bit fault rate."""
        return cache_yield(
            pf_bit,
            data_words=self.data_words,
            data_word_bits=self.data_word_bits,
            tag_words=self.tag_words,
            tag_word_bits=self.tag_word_bits,
            correctable=self.hard_fault_budget,
        )


def cache_yield(
    pf_bit: float,
    data_words: int,
    data_word_bits: int,
    tag_words: int,
    tag_word_bits: int,
    correctable: int,
) -> float:
    """Paper Eq. (2): ``Y = P(data)^DW * P(tag)^TW``."""
    if data_words < 0 or tag_words < 0:
        raise ValueError("word counts must be non-negative")
    p_data = word_survival_probability(pf_bit, data_word_bits, correctable)
    p_tag = word_survival_probability(pf_bit, tag_word_bits, correctable)
    # Work in log space: DW can be large and P close to 1.
    log_yield = data_words * np.log(max(p_data, 1e-300)) + tag_words * np.log(
        max(p_tag, 1e-300)
    )
    return float(np.exp(log_yield))


def paper_pf_target(yield_target: float, bits: int = 8192) -> float:
    """The paper's linearized Pf target: ``(1 - Y) / bits``.

    With the defaults this reproduces the worked example of Section III-C:

    >>> round(paper_pf_target(0.99) * 1e6, 2)
    1.22
    """
    if not 0.0 < yield_target < 1.0:
        raise ValueError("yield_target must be in (0, 1)")
    if bits <= 0:
        raise ValueError("bits must be positive")
    return (1.0 - yield_target) / bits


def exact_pf_for_yield(
    yield_target: float, bits: int, correctable: int = 0
) -> float:
    """Per-bit Pf achieving ``yield_target`` over ``bits`` fault-free bits.

    For ``correctable = 0`` the closed form ``1 - Y^(1/bits)`` applies; for
    positive budgets a bisection against Eq. (1) is used (treating the
    whole region as a single word — callers with word structure should use
    :class:`WordOrganization` instead).
    """
    if not 0.0 < yield_target < 1.0:
        raise ValueError("yield_target must be in (0, 1)")
    if bits <= 0:
        raise ValueError("bits must be positive")
    if correctable == 0:
        return 1.0 - yield_target ** (1.0 / bits)
    low, high = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if word_survival_probability(mid, bits, correctable) >= yield_target:
            low = mid
        else:
            high = mid
    return low
