#!/usr/bin/env python3
"""Docstring-coverage gate for the public API (no external deps).

Walks a package directory with :mod:`ast` and counts docstrings on
modules, classes and functions/methods.  Private names (leading
underscore, including dunders) and nested functions are exempt — the
gate protects the *public* API surface, mirroring the CI ``interrogate
--ignore-private --ignore-magic --ignore-nested-functions`` run so the
two never disagree about what counts.

Usage::

    python tools/docstring_coverage.py src/repro --fail-under 100
    python tools/docstring_coverage.py src/repro --list-missing
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys
from dataclasses import dataclass, field


@dataclass
class Coverage:
    """Tally of documented vs. total definitions."""

    total: int = 0
    documented: int = 0
    missing: list[str] = field(default_factory=list)

    def tally(self, node, label: str) -> None:
        """Count one definition, recording it when undocumented."""
        self.total += 1
        if ast.get_docstring(node) is not None:
            self.documented += 1
        else:
            self.missing.append(label)

    @property
    def percent(self) -> float:
        """Documented definitions as a percentage (100 when empty)."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.documented / self.total


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_definitions(tree: ast.Module, module_label: str, cov: Coverage):
    """Count the module, its classes, and public top-level callables."""
    cov.tally(tree, module_label)

    def visit_body(body, prefix: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not _is_public(node.name):
                    continue
                label = f"{prefix}{node.name}"
                cov.tally(node, label)
                visit_body(node.body, f"{label}.")
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if not _is_public(node.name):
                    continue
                cov.tally(node, f"{prefix}{node.name}")
                # Nested functions are implementation detail: skip.

    visit_body(tree.body, f"{module_label}:")


def measure(package_dir: pathlib.Path) -> Coverage:
    """Docstring coverage over every ``*.py`` file under a directory."""
    cov = Coverage()
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=str(path)
        )
        module_label = str(path.relative_to(package_dir.parent))
        _walk_definitions(tree, module_label, cov)
    return cov


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "package", type=pathlib.Path, help="package directory to scan"
    )
    parser.add_argument(
        "--fail-under", type=float, default=100.0,
        help="minimum coverage percentage (default: 100)",
    )
    parser.add_argument(
        "--list-missing", action="store_true",
        help="print every undocumented definition",
    )
    args = parser.parse_args(argv)

    if not args.package.is_dir():
        print(f"error: {args.package} is not a directory",
              file=sys.stderr)
        return 2
    cov = measure(args.package)
    print(
        f"docstring coverage: {cov.documented}/{cov.total} "
        f"({cov.percent:.1f} %), gate {args.fail_under:g} %"
    )
    if args.list_missing or cov.percent < args.fail_under:
        for label in cov.missing:
            print(f"  missing: {label}")
    if cov.percent < args.fail_under:
        print(
            f"FAIL: coverage {cov.percent:.1f} % is below "
            f"{args.fail_under:g} %",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
