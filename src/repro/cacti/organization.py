"""Array partitioning: splitting a logical array into banked subarrays.

CACTI's core optimization is dividing a large logical array into Ndwl x
Ndbl physical subarrays to trade wordline/bitline length against decoder,
periphery and H-tree overhead:

* **row splits** (Ndbl) cut the bitlines: an access activates only the
  bank stripe holding the addressed row — a genuine dynamic-energy win,
  paid for with replicated sense-amp/precharge periphery;
* **column splits** (Ndwl) cut the wordlines: the addressed row spans
  *all* column banks (the full line width must still be read), so the
  win is wordline RC, not bitline energy, at the price of replicated
  row decoders.

Subarrays below ~32 rows or ~64 columns are not physically sensible (the
sense-amplifier pitch and periphery strip stop amortizing), which is why
the paper's 8 KB caches — 32 rows per way — stay unbanked; the
:func:`optimal_partition` search reproduces that choice and banks larger
arrays (the cache-size ablation's 16+ KB points).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.cacti.array import SramArray
from repro.cacti.wires import WireSegment
from repro.cells import SizedCell
from repro.tech.node import ptm32

#: Minimum viable subarray geometry (sense-amp pitch / periphery
#: amortization floors).
MIN_BANK_ROWS = 32
MIN_BANK_COLS = 64

#: Periphery strip per bank, in equivalent cell-rows (sense amps,
#: precharge, write drivers).
PERIPHERY_ROWS_EQUIV = 12

#: Control/predecode gates that switch per activated bank.
BANK_CONTROL_GATES = 30


@dataclass(frozen=True)
class PartitionedArray:
    """A logical array banked into equal subarrays.

    Attributes:
        rows / cols: logical array dimensions.
        row_splits / col_splits: bank grid (Ndbl / Ndwl in CACTI terms).
        cell: the bitcell design of every subarray.
    """

    rows: int
    cols: int
    cell: SizedCell
    row_splits: int = 1
    col_splits: int = 1

    def __post_init__(self) -> None:
        if self.row_splits <= 0 or self.col_splits <= 0:
            raise ValueError("splits must be positive")
        if self.rows % self.row_splits or self.cols % self.col_splits:
            raise ValueError("splits must divide the array evenly")

    @cached_property
    def subarray(self) -> SramArray:
        """One physical bank."""
        return SramArray(
            rows=self.rows // self.row_splits,
            cols=self.cols // self.col_splits,
            cell=self.cell,
        )

    @property
    def banks(self) -> int:
        """Number of physical subarrays."""
        return self.row_splits * self.col_splits

    @property
    def activated_banks(self) -> int:
        """Banks touched per access: one row stripe, all its columns."""
        return self.col_splits

    @cached_property
    def _htree(self) -> WireSegment:
        """Wire from the bank grid's corner to its centre (per access)."""
        width = self.cols * self.subarray.electricals.cell_width
        height = self.rows * self.subarray.electricals.cell_height
        return WireSegment(
            length=0.5 * (width + height), node=self.cell.node
        )

    def _control_energy(self, vdd: float) -> float:
        node = ptm32()
        return (
            self.activated_banks
            * BANK_CONTROL_GATES
            * 2.0
            * node.logic_gate_cap
            * vdd
            * vdd
        )

    # ------------------------------------------------------------- energy
    def read_energy(
        self,
        vdd: float,
        active_cols: int | None = None,
        out_bits: int = 0,
    ) -> float:
        """One read: the addressed row stripe across all col banks (J)."""
        total_active = self.cols if active_cols is None else active_cols
        per_bank_cols = max(1, total_active // self.col_splits)
        per_bank_out = out_bits // max(self.col_splits, 1)
        bank = self.subarray.read_energy(
            vdd, active_cols=per_bank_cols, out_bits=per_bank_out
        )
        htree = self._htree.switch_energy(vdd) * max(out_bits, 1) / 32
        return (
            self.activated_banks * bank
            + self._control_energy(vdd)
            + htree
        )

    def write_energy(
        self, vdd: float, active_cols: int | None = None
    ) -> float:
        """One write into the addressed row stripe (J)."""
        total_active = self.cols if active_cols is None else active_cols
        per_bank_cols = max(1, total_active // self.col_splits)
        bank = self.subarray.write_energy(vdd, active_cols=per_bank_cols)
        return (
            self.activated_banks * bank
            + self._control_energy(vdd)
            + self._htree.switch_energy(vdd)
        )

    def leakage_power(self, vdd: float) -> float:
        """All banks leak (W)."""
        return self.banks * self.subarray.leakage_power(vdd)

    def refresh_power(self, vdd: float) -> float:
        """All banks refresh independently (W); 0 for static cells."""
        return self.banks * self.subarray.refresh_power(vdd)

    @property
    def area(self) -> float:
        """Total area incl. per-bank periphery strips and routing (m^2)."""
        cell_area = self.subarray.electricals.area
        bank_cells = self.subarray.rows + PERIPHERY_ROWS_EQUIV
        bank_area = self.subarray.cols * bank_cells * cell_area / 0.70
        routing = 1.0 + 0.03 * (self.banks - 1)
        return self.banks * bank_area * routing

    def access_time(self, vdd: float) -> float:
        """Bank access plus H-tree flight time (s)."""
        return self.subarray.access_time(vdd) + self._htree.elmore_delay


def candidate_partitions(
    rows: int, cols: int, max_splits: int = 8
) -> list[tuple[int, int]]:
    """Legal (row_splits, col_splits) grids respecting the bank floors."""
    candidates = []
    for row_splits in range(1, max_splits + 1):
        if rows % row_splits:
            continue
        if rows // row_splits < MIN_BANK_ROWS:
            break
        for col_splits in range(1, max_splits + 1):
            if cols % col_splits:
                continue
            if cols // col_splits < MIN_BANK_COLS:
                break
            candidates.append((row_splits, col_splits))
    return candidates or [(1, 1)]


def optimal_partition(
    rows: int,
    cols: int,
    cell: SizedCell,
    vdd: float,
    max_splits: int = 8,
) -> PartitionedArray:
    """The bank grid minimizing the energy-delay-area product.

    Candidates are visited in increasing bank count and a finer grid is
    only accepted when it improves the cost by >= 3 % — the usual design
    practice of not paying banking complexity for noise-level wins.
    """
    best: PartitionedArray | None = None
    best_cost = float("inf")
    ordered = sorted(
        candidate_partitions(rows, cols, max_splits),
        key=lambda grid: (grid[0] * grid[1], grid),
    )
    for row_splits, col_splits in ordered:
        array = PartitionedArray(
            rows=rows,
            cols=cols,
            cell=cell,
            row_splits=row_splits,
            col_splits=col_splits,
        )
        cost = (
            array.read_energy(vdd)
            * array.access_time(vdd)
            * array.area
        )
        if cost < 0.97 * best_cost:
            best_cost = cost
            best = array
    assert best is not None
    return best
