"""Cache-level energy/area/timing model assembled from way-group arrays.

The model exposes exactly the operation energies the chip simulator needs,
each split into array energy and EDC codec energy (:class:`AccessEnergy`):

* ``probe_read_energy`` — a load/fetch probe: every powered way reads its
  tag and its data row in parallel (the standard high-performance L1
  organization; this is why one oversized 10T way hurts every access);
* ``probe_write_energy`` — a store probe: tags only;
* ``read_hit_extra_energy`` — per-hit addition in the hitting way group
  (the EDC decode of the selected word when coding is active);
* ``write_hit_energy`` — the data-word write + encode in the hitting way;
* ``fill_energy`` — line fill after a miss (full line + tag write, with
  encodes);
* ``writeback_energy`` — victim line read-out (+ decodes) on dirty
  eviction;
* ``leakage_power`` — static power of all arrays (gated ways leak a
  small residual) plus active codecs.

Check-bit columns are provisioned for the *strongest* code a way group
ever uses, but only the mode-active code's columns are precharged/sensed —
how the paper's "SECDED is simply turned off at HP mode" is realized.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.cache.config import CacheConfig, WayGroupConfig
from repro.cacti.array import SramArray
from repro.edc.circuits import CodecCircuit, circuit_for_code
from repro.edc.protection import ProtectionScheme, make_code
from repro.tech.operating import Mode, OperatingPoint

#: Residual leakage of a gated-Vdd way (Powell et al. report ~30x cuts).
GATED_LEAKAGE_FRACTION = 0.03


@dataclass(frozen=True)
class AccessEnergy:
    """Energy of one cache operation, split by origin (J)."""

    array: float = 0.0
    edc: float = 0.0

    @property
    def total(self) -> float:
        """Array plus EDC energy (J)."""
        return self.array + self.edc

    def __add__(self, other: "AccessEnergy") -> "AccessEnergy":
        return AccessEnergy(self.array + other.array, self.edc + other.edc)

    def scaled(self, factor: float) -> "AccessEnergy":
        """Both components multiplied by ``factor``."""
        return AccessEnergy(self.array * factor, self.edc * factor)


@lru_cache(maxsize=None)
def _circuit(scheme: ProtectionScheme, data_bits: int) -> CodecCircuit | None:
    code = make_code(scheme, data_bits)
    if code is None:
        return None
    return circuit_for_code(code)


@dataclass(frozen=True)
class WayGroupArrays:
    """The per-way arrays of one way group within a cache."""

    config: CacheConfig
    group: WayGroupConfig

    @cached_property
    def line_bits(self) -> int:
        """Data bits per cache line."""
        return self.config.line_bytes * 8

    @cached_property
    def data_array(self) -> SramArray:
        """The group's data array (with check columns)."""
        cols = self.line_bits + (
            self.config.words_per_line * self.group.stored_data_check_bits
        )
        return SramArray(
            rows=self.config.sets, cols=cols, cell=self.group.cell
        )

    @cached_property
    def tag_array(self) -> SramArray:
        """The group's tag array (with check columns)."""
        cols = self.config.tag_bits + self.group.stored_tag_check_bits
        return SramArray(
            rows=self.config.sets, cols=cols, cell=self.group.cell
        )

    # ------------------------------------------------------- active widths
    def _active_data_cols(self, mode: Mode) -> int:
        return self.line_bits + (
            self.config.words_per_line
            * self.group.active_data_check_bits(mode)
        )

    def _active_tag_cols(self, mode: Mode) -> int:
        return self.config.tag_bits + self.group.active_tag_check_bits(mode)

    def _data_word_cols(self, mode: Mode) -> int:
        return (
            self.config.data_word_bits
            + self.group.active_data_check_bits(mode)
        )

    # -------------------------------------------------------------- codecs
    def data_circuit(self, mode: Mode) -> CodecCircuit | None:
        """Decode-side circuit: the *active* scheme's syndrome slice."""
        scheme = self.group.data_protection.get(mode, ProtectionScheme.NONE)
        return _circuit(scheme, self.config.data_word_bits)

    def tag_circuit(self, mode: Mode) -> CodecCircuit | None:
        """Decode-side tag circuit for the active scheme."""
        scheme = self.group.tag_protection.get(mode, ProtectionScheme.NONE)
        return _circuit(scheme, self.config.tag_bits)

    def data_encode_circuit(self, mode: Mode) -> CodecCircuit | None:
        """Encode-side circuit: always the *stored* codeword format
        (a weaker active mode still writes full-format codewords)."""
        if (
            self.group.data_protection.get(mode, ProtectionScheme.NONE)
            is ProtectionScheme.NONE
        ):
            return None
        return _circuit(
            self.group.stored_data_scheme, self.config.data_word_bits
        )

    def tag_encode_circuit(self, mode: Mode) -> CodecCircuit | None:
        """Encode-side tag circuit (stored format)."""
        if (
            self.group.tag_protection.get(mode, ProtectionScheme.NONE)
            is ProtectionScheme.NONE
        ):
            return None
        return _circuit(self.group.stored_tag_scheme, self.config.tag_bits)

    # ------------------------------------------------------------ energies
    def tag_probe_energy(self, op: OperatingPoint) -> AccessEnergy:
        """One way's tag read + syndrome check during a probe."""
        array = self.tag_array.read_energy(
            op.vdd, active_cols=self._active_tag_cols(op.mode)
        )
        circuit = self.tag_circuit(op.mode)
        edc = circuit.decode_energy(op.vdd) if circuit else 0.0
        return AccessEnergy(array=array, edc=edc)

    def data_read_energy(self, op: OperatingPoint) -> AccessEnergy:
        """One way's data row read during a read probe."""
        array = self.data_array.read_energy(
            op.vdd, active_cols=self._active_data_cols(op.mode)
        )
        return AccessEnergy(array=array)

    def read_hit_extra(self, op: OperatingPoint) -> AccessEnergy:
        """Per-read-hit addition: the selected word drives the output bus
        through the way mux, then its EDC decode (when coding is on)."""
        from repro.cacti.components import OUTPUT_DRIVER_CAP

        out_bits = self._data_word_cols(op.mode)
        array = out_bits * OUTPUT_DRIVER_CAP * op.vdd * op.vdd
        circuit = self.data_circuit(op.mode)
        return AccessEnergy(
            array=array,
            edc=circuit.decode_energy(op.vdd) if circuit else 0.0,
        )

    def write_hit_energy(self, op: OperatingPoint) -> AccessEnergy:
        """Data-word write + encode on a store hit."""
        array = self.data_array.write_energy(
            op.vdd, active_cols=self._data_word_cols(op.mode)
        )
        circuit = self.data_encode_circuit(op.mode)
        edc = circuit.encode_energy(op.vdd) if circuit else 0.0
        return AccessEnergy(array=array, edc=edc)

    def fill_energy(self, op: OperatingPoint) -> AccessEnergy:
        """Line fill: full data row + tag write, with encodes."""
        data = self.data_array.write_energy(
            op.vdd, active_cols=self._active_data_cols(op.mode)
        )
        tag = self.tag_array.write_energy(
            op.vdd, active_cols=self._active_tag_cols(op.mode)
        )
        edc = 0.0
        data_circuit = self.data_encode_circuit(op.mode)
        if data_circuit:
            edc += self.config.words_per_line * data_circuit.encode_energy(
                op.vdd
            )
        tag_circuit = self.tag_encode_circuit(op.mode)
        if tag_circuit:
            edc += tag_circuit.encode_energy(op.vdd)
        return AccessEnergy(array=data + tag, edc=edc)

    def writeback_energy(self, op: OperatingPoint) -> AccessEnergy:
        """Victim line read-out on dirty eviction (with word decodes)."""
        array = self.data_array.read_energy(
            op.vdd,
            active_cols=self._active_data_cols(op.mode),
            out_bits=self._active_data_cols(op.mode),
        )
        circuit = self.data_circuit(op.mode)
        edc = 0.0
        if circuit:
            edc = self.config.words_per_line * circuit.decode_energy(op.vdd)
        return AccessEnergy(array=array, edc=edc)

    # ------------------------------------------------------------- static
    def leakage_power(self, op: OperatingPoint) -> AccessEnergy:
        """Static power (W) of the group's ways (+ codecs when active)."""
        per_way = self.data_array.leakage_power(
            op.vdd
        ) + self.tag_array.leakage_power(op.vdd)
        factor = 1.0 if self.group.is_active(op.mode) else (
            GATED_LEAKAGE_FRACTION
        )
        array = self.group.ways * per_way * factor
        edc = 0.0
        if self.group.is_active(op.mode):
            for circuit in (
                self.data_circuit(op.mode),
                self.tag_circuit(op.mode),
            ):
                if circuit:
                    edc += circuit.leakage_power(op.vdd)
        return AccessEnergy(array=array, edc=edc)

    def refresh_power(self, op: OperatingPoint) -> float:
        """Average refresh power (W) of the group's ways in ``op``.

        Dynamic cells (finite retention) rewrite every data and tag row
        once per retention interval; gated-off groups hold no state and
        refresh nothing.  Static cells return 0 exactly, so SRAM ledgers
        are byte-identical to the pre-refresh model.
        """
        if not self.group.is_active(op.mode):
            return 0.0
        per_way = self.data_array.refresh_power(
            op.vdd
        ) + self.tag_array.refresh_power(op.vdd)
        return self.group.ways * per_way

    @property
    def area(self) -> float:
        """Total silicon area of the group's ways (m^2)."""
        return self.group.ways * (self.data_array.area + self.tag_array.area)

    def access_time(self, op: OperatingPoint) -> float:
        """Array access time; the codec cycle is added architecturally."""
        return max(
            self.data_array.access_time(op.vdd),
            self.tag_array.access_time(op.vdd),
        )


class CacheEnergyModel:
    """Per-mode operation energies for a hybrid cache configuration."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.groups = {
            group.name: WayGroupArrays(config=config, group=group)
            for group in config.way_groups
        }

    def _active_groups(self, mode: Mode) -> list[WayGroupArrays]:
        return [
            arrays
            for arrays in self.groups.values()
            if arrays.group.is_active(mode)
        ]

    # ---------------------------------------------------------- operations
    def probe_read_energy(self, op: OperatingPoint) -> AccessEnergy:
        """A load/fetch probe: all powered ways read tag + data row."""
        total = AccessEnergy()
        for arrays in self._active_groups(op.mode):
            per_way = arrays.tag_probe_energy(op) + arrays.data_read_energy(
                op
            )
            total = total + per_way.scaled(arrays.group.ways)
        return total

    def probe_write_energy(self, op: OperatingPoint) -> AccessEnergy:
        """A store probe: all powered ways read their tag."""
        total = AccessEnergy()
        for arrays in self._active_groups(op.mode):
            total = total + arrays.tag_probe_energy(op).scaled(
                arrays.group.ways
            )
        return total

    def read_hit_extra_energy(
        self, group_name: str, op: OperatingPoint
    ) -> AccessEnergy:
        """Addition for a read hit landing in ``group_name``."""
        return self.groups[group_name].read_hit_extra(op)

    def write_hit_energy(
        self, group_name: str, op: OperatingPoint
    ) -> AccessEnergy:
        """Addition for a store hit landing in ``group_name``."""
        return self.groups[group_name].write_hit_energy(op)

    def fill_energy(self, group_name: str, op: OperatingPoint) -> AccessEnergy:
        """Line fill into ``group_name`` after a miss."""
        return self.groups[group_name].fill_energy(op)

    def writeback_energy(
        self, group_name: str, op: OperatingPoint
    ) -> AccessEnergy:
        """Dirty-victim read-out from ``group_name``."""
        return self.groups[group_name].writeback_energy(op)

    # -------------------------------------------------------------- static
    def leakage_power(self, op: OperatingPoint) -> AccessEnergy:
        """Static power of the whole cache in ``op`` (W)."""
        total = AccessEnergy()
        for arrays in self.groups.values():
            total = total + arrays.leakage_power(op)
        return total

    def refresh_power(self, op: OperatingPoint) -> float:
        """Average refresh power of the whole cache in ``op`` (W).

        Exactly 0 for all-SRAM caches; nonzero only when a powered way
        group uses a dynamic cell technology.
        """
        return sum(
            arrays.refresh_power(op) for arrays in self.groups.values()
        )

    @property
    def area(self) -> float:
        """Total cache area (m^2)."""
        return sum(arrays.area for arrays in self.groups.values())

    def area_by_group(self) -> dict[str, float]:
        """Area per way group (m^2)."""
        return {name: arrays.area for name, arrays in self.groups.items()}

    def access_time(self, op: OperatingPoint) -> float:
        """Hit access time: the slowest powered way's array (s)."""
        active = self._active_groups(op.mode)
        if not active:
            raise ValueError(f"no active ways in {op.mode}")
        return max(arrays.access_time(op) for arrays in active)

    def hit_latency_cycles(self, op: OperatingPoint) -> int:
        """Hit latency in cycles: 1, plus the inline-EDC cycle if any."""
        return 1 + (1 if self.config.edc_inline(op.mode) else 0)
