"""Address-stream primitives for the synthetic benchmark generators.

Each primitive produces a numpy array of byte addresses with a
characteristic locality structure:

* :func:`loop_pc_stream` — instruction fetch addresses from nested-loop
  execution (tight bodies iterated many times, occasional body changes);
* :func:`streaming_addresses` — a sequential sweep over a buffer
  (samples/pixels in, samples out), the dominant media-codec pattern;
* :func:`table_addresses` — random lookups into a constant table
  (quantizer/codebook lookups of g721/gsm);
* :func:`stack_addresses` — high-locality accesses to a small stack frame
  region.
"""

from __future__ import annotations

import numpy as np


def loop_pc_stream(
    count: int,
    code_bytes: int,
    rng: np.random.Generator,
    base: int = 0x0040_0000,
    body_words_range: tuple[int, int] = (12, 96),
    mean_iterations: int = 40,
) -> np.ndarray:
    """PC stream of loopy code confined to a ``code_bytes`` footprint.

    Execution proceeds in episodes: a loop body (contiguous word range
    inside the footprint) is iterated a geometrically-distributed number
    of times, then control moves to another body.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if code_bytes < 64:
        raise ValueError("code footprint too small")
    code_words = code_bytes // 4
    low, high = body_words_range
    high = min(high, code_words)
    low = min(low, high)
    chunks: list[np.ndarray] = []
    produced = 0
    while produced < count:
        body_words = int(rng.integers(low, high + 1))
        start_word = int(rng.integers(0, max(code_words - body_words, 1)))
        iterations = 1 + int(rng.geometric(1.0 / mean_iterations))
        body = base + 4 * (start_word + np.arange(body_words, dtype=np.int64))
        episode = np.tile(body, iterations)[: count - produced]
        chunks.append(episode)
        produced += len(episode)
    return np.concatenate(chunks).astype(np.uint64)


def streaming_addresses(
    count: int,
    buffer_bytes: int,
    rng: np.random.Generator,
    base: int = 0x1000_0100,
    stride: int = 4,
    revisit: float = 0.0,
) -> np.ndarray:
    """Sequential sweep over a circular buffer, with optional revisits.

    ``revisit`` is the fraction of accesses that go back a short random
    distance (filter taps reading their recent window).
    """
    if count <= 0 or buffer_bytes <= 0 or stride <= 0:
        raise ValueError("bad stream parameters")
    offsets = (np.arange(count, dtype=np.int64) * stride) % buffer_bytes
    if revisit > 0:
        mask = rng.random(count) < revisit
        back = rng.integers(1, 16, size=count) * stride
        offsets = np.where(
            mask, (offsets - back) % buffer_bytes, offsets
        )
    return (base + offsets).astype(np.uint64)


def table_addresses(
    count: int,
    table_bytes: int,
    rng: np.random.Generator,
    base: int = 0x2000_0200,
    element: int = 4,
) -> np.ndarray:
    """Uniform random lookups into a constant table."""
    if count <= 0 or table_bytes < element:
        raise ValueError("bad table parameters")
    entries = table_bytes // element
    picks = rng.integers(0, entries, size=count, dtype=np.int64)
    return (base + picks * element).astype(np.uint64)


def stack_addresses(
    count: int,
    frame_bytes: int,
    rng: np.random.Generator,
    base: int = 0x7FFF_0000,
) -> np.ndarray:
    """Accesses to a small, hot stack frame (word-granular)."""
    if count <= 0 or frame_bytes < 4:
        raise ValueError("bad stack parameters")
    words = frame_bytes // 4
    picks = rng.integers(0, words, size=count, dtype=np.int64)
    return (base + picks * 4).astype(np.uint64)


def blocked_addresses(
    count: int,
    image_bytes: int,
    block_bytes: int,
    rng: np.random.Generator,
    base: int = 0x3000_0300,
) -> np.ndarray:
    """2-D block traversal (mpeg2/epic macroblocks): sweep a block, jump.

    Addresses walk sequentially inside a block; blocks are visited in a
    shuffled order over the image.
    """
    if count <= 0 or block_bytes < 4 or image_bytes < block_bytes:
        raise ValueError("bad block parameters")
    words_per_block = block_bytes // 4
    blocks = image_bytes // block_bytes
    out = np.empty(count, dtype=np.int64)
    produced = 0
    while produced < count:
        order = rng.permutation(blocks)
        for block in order:
            take = min(words_per_block, count - produced)
            out[produced : produced + take] = (
                base
                + int(block) * block_bytes
                + 4 * np.arange(take, dtype=np.int64)
            )
            produced += take
            if produced >= count:
                break
    return out.astype(np.uint64)
