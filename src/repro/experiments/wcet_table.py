"""tab-wcet: quantifying the predictability argument of Sections I-II.

The paper rejects faulty-entry disabling because it "fail[s] to provide
strong timing guarantees required for the worst-case execution time
(WCET) estimation".  This driver compares, per SmallBench workload at ULE
mode, the WCET bound a portable analysis can publish for:

* an entry-disable design on min-size 8T cells (usable lines vary per
  die -> no guaranteed hits), and
* the paper's 8T+SECDED design (full capacity guaranteed on every
  yielding die -> the deterministic miss counts hold in the bound),

plus the underlying disable statistics that make the first bound
unavoidable.
"""

from __future__ import annotations

from repro.core import calibration
from repro.core.architect import build_chips
from repro.core.evaluation import evaluate_scenario
from repro.core.methodology import design_scenario
from repro.core.predictability import (
    disable_statistics,
    wcet_all_miss,
    wcet_guaranteed_capacity,
)
from repro.core.scenarios import Scenario
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.cells import CELL_8T, CellDesign, analytic_pf
from repro.tech.operating import Mode, ULE_OPERATING_POINT
from repro.util.tables import Table


def run_wcet(
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """WCET bounds: entry disabling vs the paper's EDC design."""
    design = design_scenario(Scenario.A)
    chips = build_chips(design)
    evaluation = evaluate_scenario(
        Scenario.A,
        Mode.ULE,
        trace_length=trace_length,
        seed=seed,
        chips=chips,
        design=design,
    )

    # Entry-disable baseline: min-size 8T without coding at 350 mV.
    pf_minsize = analytic_pf(CellDesign(CELL_8T, 1.0), ULE_OPERATING_POINT.vdd)
    stats = disable_statistics(
        chips.proposed.config.il1,
        pf_bit=pf_minsize,
        active_ways=1,
        hard_fault_budget=0,
    )

    table = Table(
        [
            "benchmark",
            "exec cycles (EDC design)",
            "WCET (EDC design)",
            "WCET (entry disabling)",
            "WCET blow-up",
        ],
        title="ULE-mode WCET bounds (scenario A geometry)",
    )
    data: dict = {
        "p_line_disabled": stats.p_line_disabled,
        "expected_disabled_lines": stats.expected_disabled_lines,
        "p_some_set_dead": stats.p_some_set_fully_disabled,
    }
    blowups = []
    for row in evaluation.rows:
        proposed = row.proposed
        summary_cycles = proposed.timing.cycles
        guaranteed = wcet_guaranteed_capacity(
            # The functional miss counts are die-independent under EDC.
            _summary_of(proposed),
            il1_misses=proposed.il1_stats.misses,
            dl1_misses=proposed.dl1_stats.misses,
            il1_hit_latency=2,  # +1 EDC cycle, as executed
            dl1_hit_latency=2,
        )
        all_miss = wcet_all_miss(
            _summary_of(proposed), il1_hit_latency=1, dl1_hit_latency=1
        )
        blowup = all_miss.cycles / guaranteed.cycles
        blowups.append(blowup)
        table.add_row(
            [
                row.benchmark,
                summary_cycles,
                guaranteed.cycles,
                all_miss.cycles,
                f"{blowup:.1f}x",
            ]
        )
        data[row.benchmark] = {
            "executed": summary_cycles,
            "wcet_edc": guaranteed.cycles,
            "wcet_disable": all_miss.cycles,
        }

    stats_table = Table(
        ["quantity", "value"],
        title=(
            "Entry-disable statistics (min-size 8T, "
            f"Pf = {pf_minsize:.2e} @ 350 mV)"
        ),
    )
    stats_table.add_row(
        ["P(line disabled)", f"{stats.p_line_disabled:.3f}"]
    )
    stats_table.add_row(
        ["expected disabled lines / die", stats.expected_disabled_lines]
    )
    stats_table.add_row(
        [
            "P(some set fully disabled)",
            f"{stats.p_some_set_fully_disabled:.3f}",
        ]
    )

    comparison = PaperComparison(
        quantity=(
            "WCET blow-up of entry disabling vs EDC design "
            "(paper: 'strong guarantees not achievable')"
        ),
        paper=1.0,
        measured=sum(blowups) / len(blowups),
        unit="x",
    )
    data["mean_blowup"] = sum(blowups) / len(blowups)
    return ExperimentResult(
        experiment_id="tab-wcet",
        title="WCET predictability: EDC design vs entry disabling (§I-II)",
        body=table.render() + "\n\n" + stats_table.render(),
        comparisons=(comparison,),
        data=data,
    )


def _summary_of(run_result):
    """Trace summary reconstructed from a run (traces are regenerable,
    but the run result already carries everything the bound needs)."""
    from repro.workloads.mediabench import generate_trace

    trace = generate_trace(
        run_result.trace_name,
        length=run_result.timing.instructions,
        seed=calibration.DEFAULT_SEED,
    )
    return trace.summary
