"""Surrogate ensembles: accuracy, uncertainty, bit-reproducibility."""

import numpy as np
import pytest

from repro.explore.surrogate import MetricSurrogate, SurrogateEnsemble


def _linear_data(n=24, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 3))
    y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + noise * rng.standard_normal(n)
    return X, y


class TestSurrogateEnsemble:
    def test_recovers_linear_trend(self):
        X, y = _linear_data()
        model = SurrogateEnsemble(seed=3, label="epi").fit(X, y)
        query = np.array([[0.5, 0.5, 0.5]])
        mean, _ = model.predict(query)
        assert mean[0] == pytest.approx(1.0, abs=0.2)

    def test_fit_twice_is_bit_identical(self):
        X, y = _linear_data(noise=0.1)
        query = np.array([[0.2, 0.8, 0.5], [0.9, 0.1, 0.3]])
        a = SurrogateEnsemble(seed=7, label="epi").fit(X, y)
        b = SurrogateEnsemble(seed=7, label="epi").fit(X, y)
        mean_a, std_a = a.predict(query)
        mean_b, std_b = b.predict(query)
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(std_a, std_b)

    def test_different_seeds_differ(self):
        X, y = _linear_data(noise=0.3)
        query = np.array([[0.5, 0.5, 0.5]])
        a = SurrogateEnsemble(seed=1, label="epi").fit(X, y)
        b = SurrogateEnsemble(seed=2, label="epi").fit(X, y)
        assert a.predict(query)[0][0] != b.predict(query)[0][0]

    def test_uncertainty_higher_off_the_data(self):
        X, y = _linear_data(noise=0.05)
        model = SurrogateEnsemble(seed=5, label="epi").fit(X, y)
        near = np.array([X.mean(axis=0)])
        far = np.array([[25.0, -25.0, 25.0]])
        _, std_near = model.predict(near)
        _, std_far = model.predict(far)
        assert std_far[0] > std_near[0]

    def test_tiny_training_sets_survive(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        model = SurrogateEnsemble(seed=1, label="m").fit(X, y)
        mean, std = model.predict(np.array([[0.5]]))
        assert np.isfinite(mean[0])
        assert np.isfinite(std[0])

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SurrogateEnsemble().predict(np.zeros((1, 2)))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            SurrogateEnsemble().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            SurrogateEnsemble().fit(np.zeros((0, 2)), np.zeros(0))


class TestMetricSurrogate:
    def test_per_metric_predictions(self):
        X, y = _linear_data()
        model = MetricSurrogate(seed=4).fit(
            X, {"epi": y, "spi": 2.0 * y}
        )
        assert model.metrics == ("epi", "spi")
        predictions = model.predict(X[:2])
        assert set(predictions) == {"epi", "spi"}
        mean_epi, _ = predictions["epi"]
        mean_spi, _ = predictions["spi"]
        assert mean_spi[0] == pytest.approx(2.0 * mean_epi[0], rel=0.2)

    def test_metric_order_does_not_matter(self):
        X, y = _linear_data(noise=0.1)
        query = X[:3]
        forward = MetricSurrogate(seed=9).fit(
            X, {"a": y, "b": -y}
        ).predict(query)
        backward = MetricSurrogate(seed=9).fit(
            X, {"b": -y, "a": y}
        ).predict(query)
        for metric in ("a", "b"):
            assert np.array_equal(
                forward[metric][0], backward[metric][0]
            )
