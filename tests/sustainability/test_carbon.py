"""Tests for repro.sustainability.carbon."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sustainability.carbon import (
    GIB_BYTES,
    GRID_PROFILES,
    JOULES_PER_KWH,
    SECONDS_PER_YEAR,
    annual_energy_j,
    carbon_per_gib_year,
    co2_grams,
    grid_intensity,
)


class TestGridIntensity:
    def test_named_profiles_resolve_case_insensitively(self):
        assert grid_intensity("world") == GRID_PROFILES["world"]
        assert grid_intensity("EU") == GRID_PROFILES["eu"]
        assert grid_intensity(" Coal ") == GRID_PROFILES["coal"]

    def test_numbers_and_numeric_strings_pass_through(self):
        assert grid_intensity(123.5) == 123.5
        assert grid_intensity("123.5") == 123.5
        assert grid_intensity(0) == 0.0

    def test_unknown_profile_lists_choices(self):
        with pytest.raises(ValueError, match="renewable"):
            grid_intensity("mars")

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            grid_intensity(-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            grid_intensity("-5")

    def test_profiles_ordered_as_expected(self):
        assert (
            GRID_PROFILES["renewable"]
            < GRID_PROFILES["eu"]
            < GRID_PROFILES["world"]
            < GRID_PROFILES["coal"]
        )


class TestCarbonArithmetic:
    def test_one_kwh_on_world_grid(self):
        assert co2_grams(JOULES_PER_KWH, 475.0) == pytest.approx(475.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            co2_grams(-1.0, 475.0)

    def test_annual_energy_of_one_watt(self):
        assert annual_energy_j(1.0) == pytest.approx(SECONDS_PER_YEAR)

    def test_per_gib_normalization(self):
        """1 W over exactly 1 GiB: the plain annual grams."""
        expected = co2_grams(annual_energy_j(1.0), 475.0)
        assert carbon_per_gib_year(
            1.0, int(GIB_BYTES), 475.0
        ) == pytest.approx(expected)
        # Half the capacity doubles the per-GiB figure.
        assert carbon_per_gib_year(
            1.0, int(GIB_BYTES) // 2, 475.0
        ) == pytest.approx(2.0 * expected)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            carbon_per_gib_year(1.0, 0, 475.0)


@settings(max_examples=50, deadline=None)
@given(
    power=st.floats(0.0, 1e3),
    capacity=st.integers(1, 1 << 40),
    intensity=st.floats(0.0, 2e3),
)
def test_carbon_scales_linearly_in_each_argument(
    power, capacity, intensity
):
    base = carbon_per_gib_year(power, capacity, intensity)
    assert base >= 0.0
    assert carbon_per_gib_year(
        2.0 * power, capacity, intensity
    ) == pytest.approx(2.0 * base, rel=1e-9)
    assert carbon_per_gib_year(
        power, capacity, 2.0 * intensity
    ) == pytest.approx(2.0 * base, rel=1e-9)
