"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro run fig4
    python -m repro run fig3 --trace-length 60000 --out fig3.txt
    python -m repro design A
    python -m repro all --trace-length 60000 --out-dir results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Cache Architectures for Reliable "
            "Hybrid Voltage Operation Using EDC Codes' (DATE 2013)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment ids")

    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see list)")
    run_parser.add_argument(
        "--trace-length", type=int, default=None,
        help="dynamic instructions per benchmark (EPI experiments)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="root random seed"
    )
    run_parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the report to this file",
    )

    design_parser = commands.add_parser(
        "design", help="run the Fig. 2 methodology for a scenario"
    )
    design_parser.add_argument("scenario", choices=["A", "B"])

    all_parser = commands.add_parser(
        "all", help="run every experiment and write the reports"
    )
    all_parser.add_argument(
        "--trace-length", type=int, default=None,
        help="dynamic instructions per benchmark (EPI experiments)",
    )
    all_parser.add_argument(
        "--out-dir", type=pathlib.Path, default=pathlib.Path("results"),
        help="directory for the rendered reports",
    )
    return parser


def _run_kwargs(args: argparse.Namespace, experiment_id: str) -> dict:
    """Forward only the options the chosen driver accepts."""
    takes_trace = experiment_id in (
        "fig3", "fig4", "tab-exectime", "tab-wcet",
        "ablation-ways", "ablation-memlat",
    )
    kwargs = {}
    if takes_trace and getattr(args, "trace_length", None):
        kwargs["trace_length"] = args.trace_length
    if takes_trace and getattr(args, "seed", None):
        kwargs["seed"] = args.seed
    return kwargs


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.experiments import list_experiments, run_experiment

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "design":
        from repro.core import Scenario, design_scenario

        design = design_scenario(Scenario(args.scenario))
        print(design.summary())
        return 0

    if args.command == "run":
        result = run_experiment(
            args.experiment, **_run_kwargs(args, args.experiment)
        )
        rendered = result.render()
        print(rendered)
        if args.out:
            args.out.write_text(rendered + "\n", encoding="utf-8")
        return 0

    if args.command == "all":
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for experiment_id in list_experiments():
            result = run_experiment(
                experiment_id, **_run_kwargs(args, experiment_id)
            )
            path = args.out_dir / f"{experiment_id}.txt"
            path.write_text(result.render() + "\n", encoding="utf-8")
            print(f"[done] {experiment_id} -> {path}")
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro design A | head`
        sys.exit(0)
