"""Simulation job descriptions and the per-process execution worker.

A :class:`SimulationJob` is a fully self-contained, picklable description
of one (chip, trace, mode, operating point) run — the unit the
:class:`repro.engine.session.SimulationSession` deduplicates, dispatches
across processes and memoizes on disk.

Traces are usually referenced symbolically (:class:`TraceSpec`) so that
worker processes regenerate them locally instead of shipping megabytes of
arrays through pickling; an inline :class:`repro.cpu.trace.Trace` is also
accepted for ad-hoc streams.  Chips travel as :class:`ChipConfig` (pure
frozen dataclasses) and are rebuilt — and memoized — per process.

``job_key`` derives a content hash over everything that determines the
result.  The simulation *backend* is deliberately excluded: backends are
bit-identical by contract (enforced by ``tests/engine``), so results are
shared across backend choices.
"""

from __future__ import annotations

import hashlib
import pathlib
from dataclasses import dataclass
from functools import lru_cache

from repro.cpu.chip import Chip, ChipConfig, RunResult
from repro.cpu.trace import Trace
from repro.faults.maps import DieFaultMap
from repro.workloads.store import StoredTraceRef
from repro.tech.operating import Mode, OperatingPoint
from repro.transients.spec import TransientSpec
from repro.util.canonical import canonical_text
from repro.util.profiling import phase

#: Bump when the key schema itself changes.  v4: jobs carry an optional
#: soft-error injection spec (``SimulationJob.transients``), tokenized
#: by content with *null* specs (zero acceleration or zero upset rate)
#: collapsing onto the spec-less key — mirroring v3's fault-map rule,
#: where fault-free maps share keys with map-less jobs.
ENGINE_CACHE_VERSION = 4


@lru_cache(maxsize=1)
def _code_fingerprint() -> str:
    """Digest of the ``repro`` package sources.

    Simulation results depend on the model code, not just the job
    description — tuning a calibration constant must not be served a
    stale on-disk result.  Folding a source digest into every job key
    makes cache invalidation automatic on any package edit.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceSpec:
    """A regenerable trace: registered benchmark name + length + seed."""

    benchmark: str
    length: int
    seed: int


@dataclass(frozen=True)
class SimulationJob:
    """One (chip, trace, mode, operating point) simulation request.

    Attributes:
        chip: the chip configuration to run.
        trace: a :class:`TraceSpec` (regenerated in the worker), an
            inline :class:`Trace`, a store reference, or any workload
            :class:`~repro.workloads.source.TraceSource` (resolved to
            one of the former via ``job_trace()`` — the session
            normalizes sources before dispatch so nothing un-picklable
            reaches a pool).
        mode: operating mode of the run.
        operating_point: optional override of the mode's paper default.
        backend: simulation backend; None defers to the session default.
        fault_map: one die's disabled-line map
            (:class:`repro.faults.maps.DieFaultMap`); None simulates a
            fault-free die.  Keyed by *content*, so identical dies of a
            population deduplicate and a fault-free map shares its key
            with a map-less job.
        transients: soft-error injection spec
            (:class:`repro.transients.spec.TransientSpec`); None (or a
            *null* spec that can never strike) runs without injection.
            Keyed by content; null specs collapse onto the spec-less
            key, so disabled-injection jobs share cached results with
            plain runs.
    """

    chip: ChipConfig
    trace: TraceSpec | Trace | StoredTraceRef
    mode: Mode
    operating_point: OperatingPoint | None = None
    backend: str | None = None
    fault_map: DieFaultMap | None = None
    transients: TransientSpec | None = None


def resolve_source(trace):
    """Collapse a workload :class:`~repro.workloads.source.TraceSource`
    into its job payload; plain trace values pass through.

    Duck-typed on ``job_trace`` so the engine never imports the source
    layer: a :class:`~repro.workloads.source.SyntheticSource` resolves
    to the classic :class:`TraceSpec` (byte-identical keys with the
    pre-source-layer engine), ingested and mix sources resolve to their
    inline :class:`Trace`.
    """
    job_trace = getattr(trace, "job_trace", None)
    return job_trace() if callable(job_trace) else trace


def _trace_token(trace) -> str:
    """Canonical text for the trace part of a job key.

    Inline traces are keyed by name *and* content digest
    (:meth:`repro.cpu.trace.Trace.content_digest`), so content-named
    slices of a recurring phase — :meth:`Trace.slice`'s default — map
    to the same key and deduplicate in the session.  A
    :class:`~repro.workloads.store.StoredTraceRef` produces the *same*
    token as the inline trace it points to: swapping a trace for its
    store reference (what the session does before worker dispatch)
    never changes a job key.  Trace *sources* tokenize as whatever
    they resolve to, so a source-built job deduplicates against its
    plain-trace twin.
    """
    trace = resolve_source(trace)
    if isinstance(trace, TraceSpec):
        return repr(trace)
    if isinstance(trace, StoredTraceRef):
        return f"Trace({trace.name!r}, n={trace.length}, {trace.digest})"
    return (
        f"Trace({trace.name!r}, n={len(trace)}, {trace.content_digest()})"
    )


def _canonical(value) -> str:
    """Deterministic content text for job-key hashing.

    ``repr`` alone is not stable across interpreter invocations: set
    iteration order follows randomized string hashing (PYTHONHASHSEED),
    so ``repr(frozenset({Mode.HP, Mode.ULE}))`` flips between runs and
    would silently defeat the cross-invocation disk cache.  The shared
    canonical walker (:mod:`repro.util.canonical` — the same machinery
    that keys sweep candidates via ``CacheConfig.canonical``) recurses
    through dataclasses and containers, sorting unordered ones.
    """
    return canonical_text(value)


#: Chip-token memo, keyed by config identity (configs are not hashable
#: — protection schemes carry mappingproxies).  Sweeps hash hundreds of
#: jobs over a handful of config objects, and the canonical walk over a
#: full ChipConfig costs near a millisecond; the memo *pins* each config
#: so a recycled id can never alias a dead object's token.
_CHIP_TOKEN_MEMO: dict[int, tuple[ChipConfig, str]] = {}
_CHIP_TOKEN_MEMO_LIMIT = 64


def _chip_token(config: ChipConfig) -> str:
    """Canonical text for a chip configuration.

    The canonical walk recursively includes every numeric parameter of
    the cache geometry, bitcells, protection schemes and timing model,
    so it is a faithful — and invocation-stable — content description.
    Memoized by object identity: equal-but-distinct configs re-walk
    (and produce the same token), repeated objects — the common case in
    batched sweeps — pay once.
    """
    cached = _CHIP_TOKEN_MEMO.get(id(config))
    if cached is not None and cached[0] is config:
        return cached[1]
    token = _canonical(config)
    while len(_CHIP_TOKEN_MEMO) >= _CHIP_TOKEN_MEMO_LIMIT:
        _CHIP_TOKEN_MEMO.pop(next(iter(_CHIP_TOKEN_MEMO)))
    _CHIP_TOKEN_MEMO[id(config)] = (config, token)
    return token


def _fault_map_token(fault_map: DieFaultMap | None) -> str:
    """Canonical text for the fault-map part of a job key.

    Normalized first, and collapsed to ``None`` when fault-free: the
    many clean dies of a population — and plain non-population jobs —
    all share one key, which is what makes N-die runs cheap.
    """
    if fault_map is None or fault_map.is_fault_free:
        return _canonical(None)
    return _canonical(fault_map.normalized())


def _transient_token(spec: TransientSpec | None) -> str:
    """Canonical text for the transient-spec part of a job key.

    A *null* spec (zero acceleration or zero nominal upset rate) can
    never inject anything, so it collapses to ``None``: disabled-
    injection jobs share keys — and cached results — with plain runs,
    the same contract fault-free fault maps follow.
    """
    return _canonical(TransientSpec.effective(spec))


def job_key(job: SimulationJob) -> str:
    """Content hash identifying a job's result (backend-independent)."""
    text = "\x1f".join(
        (
            f"engine-cache-v{ENGINE_CACHE_VERSION}",
            _code_fingerprint(),
            _chip_token(job.chip),
            _trace_token(job.trace),
            repr(job.mode),
            _canonical(job.operating_point),
            _fault_map_token(job.fault_map),
            _transient_token(job.transients),
        )
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- workers
#: Per-process memos: identical jobs in one batch share chip construction
#: and trace generation, whichever process they land in.  The trace memo
#: is bounded (traces are megabytes; sweeps over lengths/seeds must not
#: pin every generated trace for the process lifetime) with FIFO
#: eviction — batches reuse traces generated moments before.
_CHIP_MEMO: dict[str, Chip] = {}
_TRACE_MEMO: dict[TraceSpec, Trace] = {}
_TRACE_MEMO_LIMIT = 32


def chip_for(config: ChipConfig) -> Chip:
    """Build (and memoize per process) the chip of a configuration."""
    key = _chip_token(config)
    chip = _CHIP_MEMO.get(key)
    if chip is None:
        chip = Chip(config)
        _CHIP_MEMO[key] = chip
    return chip


def trace_for(trace) -> Trace:
    """Resolve a job's trace, regenerating specs at most once."""
    trace = resolve_source(trace)
    if isinstance(trace, Trace):
        return trace
    if isinstance(trace, StoredTraceRef):
        # Store-backed refs resolve through the batch layer's bounded
        # per-process memo (lazy import: batch imports this module).
        from repro.engine.batch import resolve_trace

        return resolve_trace(trace)
    resolved = _TRACE_MEMO.get(trace)
    if resolved is None:
        from repro.workloads.mediabench import generate_trace

        resolved = generate_trace(
            trace.benchmark, length=trace.length, seed=trace.seed
        )
        while len(_TRACE_MEMO) >= _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[trace] = resolved
    return resolved


def execute_job(job: SimulationJob, backend: str = "auto") -> RunResult:
    """Run one job to completion (module-level: picklable for pools)."""
    chip = chip_for(job.chip)
    trace = trace_for(job.trace)
    with phase("jobs.execute"):
        return chip.run(
            trace,
            job.mode,
            operating_point=job.operating_point,
            backend=job.backend or backend,
            fault_map=job.fault_map,
            transients=job.transients,
        )
