"""Tests for repro.sram.failure — including the paper's cell anchors."""

import pytest

from repro.core.calibration import PF_TARGET
from repro.sram.cells import CELL_6T, CELL_8T, CELL_10T, CellDesign
from repro.sram.failure import CellFailureModel, analytic_pf, beta_for_pf


class TestAnalyticPf:
    def test_bounds(self):
        for topo in (CELL_6T, CELL_8T, CELL_10T):
            for vdd in (0.2, 0.35, 0.6, 1.0):
                pf = analytic_pf(CellDesign(topo), vdd)
                assert 0.0 <= pf <= 1.0

    def test_monotone_in_vdd(self):
        design = CellDesign(CELL_8T)
        assert analytic_pf(design, 0.35) > analytic_pf(design, 0.6) > (
            analytic_pf(design, 1.0)
        )

    def test_monotone_in_size(self):
        model = CellFailureModel(CELL_8T)
        assert model.pf(0.35, 1.0) > model.pf(0.35, 2.0) > model.pf(0.35, 4.0)


class TestPaperAnchors:
    """The calibration anchors of DESIGN.md section 6."""

    def test_6t_usable_at_1v_but_not_350mv(self):
        design = CellDesign(CELL_6T)
        assert analytic_pf(design, 1.0) < 1e-4
        assert analytic_pf(design, 0.35) > 0.5

    def test_8t_and_10t_orders_better_than_6t_at_high_vdd(self):
        """Paper III-B: 'both 8T and 10T cells are more reliable (by some
        orders of magnitude) than 6T ones at high voltage'."""
        pf_6t = analytic_pf(CellDesign(CELL_6T), 1.0)
        assert analytic_pf(CellDesign(CELL_8T), 1.0) < pf_6t / 100
        assert analytic_pf(CellDesign(CELL_10T), 1.0) < pf_6t / 100

    def test_minsize_8t_unusable_uncoded_at_nst(self):
        """The premise of the proposal: min-size 8T has Pf far above the
        fault-free target, so EDC (not up-sizing alone) must bridge it."""
        pf = analytic_pf(CellDesign(CELL_8T), 0.35)
        assert pf > 100 * PF_TARGET

    def test_10t_needs_heavy_upsizing_at_nst(self):
        """The baseline's cost: several-x up-sizing at 350 mV."""
        model = CellFailureModel(CELL_10T)
        assert model.pf(0.35, 1.0) > PF_TARGET
        assert model.pf(0.35, 5.0) < PF_TARGET


class TestBetaForPf:
    def test_known_point(self):
        assert beta_for_pf(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_tail_value(self):
        assert beta_for_pf(1.22e-6) == pytest.approx(4.71, abs=0.02)

    def test_domain(self):
        with pytest.raises(ValueError):
            beta_for_pf(0.0)
        with pytest.raises(ValueError):
            beta_for_pf(1.0)


class TestOperability:
    def test_6t_not_operable_at_nst(self):
        assert not CellFailureModel(CELL_6T).is_operable(0.35)

    def test_10t_operable_deep(self):
        assert CellFailureModel(CELL_10T).is_operable(0.20)
