"""Epoch segmentation: slicing long traces into scheduling units.

The runtime scheduler decides one operating mode per *epoch*.  An epoch
is a contiguous slice of the input trace together with the cheap,
simulation-free features a policy can decide from: instruction mix,
working-set and code-footprint sizes.

Two segmenters are provided:

* :func:`segment_fixed` — fixed instruction-count epochs, the classic
  OS-timeslice model;
* :func:`segment_phases` — phase-boundary epochs: a sliding window
  detects shifts in workload character (instruction mix + data-locality
  signature) and cuts epochs at those boundaries, so a monitoring phase
  and a burst land in different epochs whatever their lengths.

Epoch traces carry *content-derived names* (see
:meth:`repro.cpu.trace.Trace.slice`): two epochs with identical
instruction streams are identical jobs to the simulation engine and
deduplicate in the session.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import InstrKind, Trace

#: Block granularity for the working-set features (a cache line).
_BLOCK_BYTES = 32


@dataclass(frozen=True)
class EpochFeatures:
    """Simulation-free features of one epoch.

    Attributes:
        instructions: dynamic instructions in the epoch.
        loads / stores / branches: instruction-mix counts.
        working_set_bytes: distinct data bytes touched (32 B blocks).
        code_footprint_bytes: distinct instruction bytes (32 B blocks).
    """

    instructions: int
    loads: int
    stores: int
    branches: int
    working_set_bytes: int
    code_footprint_bytes: int

    @property
    def memory_ops(self) -> int:
        """Loads + stores."""
        return self.loads + self.stores

    @property
    def memory_intensity(self) -> float:
        """Memory operations per instruction."""
        return self.memory_ops / max(self.instructions, 1)


@dataclass(frozen=True)
class Epoch:
    """One scheduling unit: a trace slice plus its features.

    Attributes:
        index: position in the schedule (0-based).
        start / stop: instruction bounds in the parent trace.
        trace: the sliced sub-trace (content-derived name).
        features: the policy-visible features.
    """

    index: int
    start: int
    stop: int
    trace: Trace
    features: EpochFeatures

    @property
    def instructions(self) -> int:
        """Dynamic instructions in the epoch."""
        return self.features.instructions


def _features_of(trace: Trace) -> EpochFeatures:
    summary = trace.summary
    return EpochFeatures(
        instructions=summary.instructions,
        loads=summary.loads,
        stores=summary.stores,
        branches=summary.branches,
        working_set_bytes=trace.working_set_bytes(_BLOCK_BYTES),
        code_footprint_bytes=trace.code_footprint_bytes(_BLOCK_BYTES),
    )


def _epochs_from_bounds(
    trace: Trace, bounds: list[tuple[int, int]]
) -> list[Epoch]:
    epochs = []
    for index, (start, stop) in enumerate(bounds):
        sub = trace.slice(start, stop)
        epochs.append(
            Epoch(
                index=index,
                start=start,
                stop=stop,
                trace=sub,
                features=_features_of(sub),
            )
        )
    return epochs


def segment_fixed(trace: Trace, epoch_length: int) -> list[Epoch]:
    """Slice a trace into fixed ``epoch_length``-instruction epochs.

    Parameters
    ----------
    trace : Trace
        The trace to segment.
    epoch_length : int
        Instructions per epoch; the final epoch keeps the remainder
        (it may be shorter).

    Returns
    -------
    list of Epoch
        The epochs, covering the trace exactly once, in order.

    Examples
    --------
    >>> from repro.workloads import generate_trace
    >>> epochs = segment_fixed(generate_trace("adpcm_c", 25_000), 10_000)
    >>> [e.instructions for e in epochs]
    [10000, 10000, 5000]
    """
    if epoch_length < 1:
        raise ValueError("epoch_length must be at least 1")
    bounds = [
        (start, min(start + epoch_length, len(trace)))
        for start in range(0, len(trace), epoch_length)
    ]
    return _epochs_from_bounds(trace, bounds)


def _window_signature(trace: Trace, start: int, stop: int) -> np.ndarray:
    """Workload-character vector of one window (all components in [0,1]).

    Instruction-mix fractions plus a data-locality term (distinct
    blocks per memory access — streaming ~1, table/stack reuse ~0).
    """
    kind = trace.kind[start:stop]
    n = max(stop - start, 1)
    loads = int(np.count_nonzero(kind == InstrKind.LOAD))
    stores = int(np.count_nonzero(kind == InstrKind.STORE))
    branches = int(np.count_nonzero(kind == InstrKind.BRANCH))
    mask = (kind == InstrKind.LOAD) | (kind == InstrKind.STORE)
    addresses = trace.addr[start:stop][mask]
    if len(addresses):
        distinct = len(np.unique(addresses // _BLOCK_BYTES))
        locality = distinct / len(addresses)
    else:
        locality = 0.0
    return np.array(
        [loads / n, stores / n, branches / n, locality], dtype=float
    )


def segment_phases(
    trace: Trace,
    window: int = 2_000,
    threshold: float = 0.15,
    min_epoch: int | None = None,
) -> list[Epoch]:
    """Cut epochs at detected phase boundaries.

    A sliding window of ``window`` instructions is summarized into a
    workload-character vector; a boundary is declared wherever the L1
    distance between consecutive windows exceeds ``threshold``.

    Parameters
    ----------
    trace : Trace
        The trace to segment.
    window : int
        Detection window, in instructions (also the boundary
        granularity).
    threshold : float
        L1 distance between consecutive window signatures above which
        a boundary is cut.  Signature components live in [0, 1]; 0.15
        separates the MediaBench generators' characters while ignoring
        sampling noise within one benchmark.
    min_epoch : int, optional
        Suppress a boundary that would leave the *preceding* epoch
        shorter than this — the short stretch is absorbed into the
        epoch before it (defaults to ``window``).  The final epoch is
        whatever remains after the last cut and may be shorter.

    Returns
    -------
    list of Epoch
        Phase-aligned epochs covering the trace exactly once.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    if min_epoch is None:
        min_epoch = window
    starts = list(range(0, len(trace), window))
    signatures = [
        _window_signature(trace, s, min(s + window, len(trace)))
        for s in starts
    ]
    cuts = [0]
    for i in range(1, len(signatures)):
        distance = float(
            np.abs(signatures[i] - signatures[i - 1]).sum()
        )
        if distance > threshold and starts[i] - cuts[-1] >= min_epoch:
            cuts.append(starts[i])
    bounds = [
        (cut, next_cut)
        for cut, next_cut in zip(cuts, cuts[1:] + [len(trace)])
    ]
    return _epochs_from_bounds(trace, bounds)


def segment(
    trace: Trace,
    segmenter: str = "fixed",
    epoch_length: int = 10_000,
    **kwargs,
) -> list[Epoch]:
    """Dispatch to a named segmenter ("fixed" or "phase").

    ``epoch_length`` parameterizes the fixed segmenter and doubles as
    the phase segmenter's detection window.
    """
    if segmenter == "fixed":
        return segment_fixed(trace, epoch_length)
    if segmenter == "phase":
        kwargs.setdefault("window", epoch_length)
        return segment_phases(trace, **kwargs)
    raise ValueError(
        f"unknown segmenter {segmenter!r}; known: ['fixed', 'phase']"
    )
