"""tab-area: cache area, baseline vs proposed.

The paper claims its architecture outperforms the baseline "in terms of
energy *and area*" (abstract / conclusions) without printing a number; the
driver quantifies it: the proposed 8T+EDC way is much smaller than the
NST-sized 10T way even after paying for the check-bit columns.
"""

from __future__ import annotations

from repro.cacti.model import CacheEnergyModel
from repro.core.architect import build_cache_pair
from repro.core.methodology import design_scenario
from repro.core.scenarios import Scenario
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.util.tables import Table


def run_area() -> ExperimentResult:
    """Tabulate cache area per scenario, configuration and way group."""
    table = Table(
        [
            "scenario",
            "config",
            "hp ways (um^2)",
            "ule way (um^2)",
            "total (um^2)",
            "vs baseline",
        ],
        title="L1 cache area (one 8 KB cache)",
    )
    data: dict = {}
    savings = {}
    for scenario in (Scenario.A, Scenario.B):
        design = design_scenario(scenario)
        baseline_cfg, proposed_cfg = build_cache_pair(design)
        areas = {}
        for label, cfg in (
            ("baseline", baseline_cfg),
            ("proposed", proposed_cfg),
        ):
            model = CacheEnergyModel(cfg)
            by_group = model.area_by_group()
            total = model.area
            areas[label] = total
            table.add_row(
                [
                    scenario.value,
                    label,
                    by_group.get("hp", 0.0) * 1e12,
                    by_group.get("ule", 0.0) * 1e12,
                    total * 1e12,
                    f"{total / areas['baseline']:.3f}x",
                ]
            )
            data[f"{scenario.value}-{label}"] = {
                name: area * 1e12 for name, area in by_group.items()
            } | {"total": total * 1e12}
        savings[scenario.value] = 1.0 - areas["proposed"] / areas["baseline"]
        table.add_separator()

    comparisons = tuple(
        PaperComparison(
            quantity=(
                f"scenario {key} cache area saving "
                "(paper: positive, unquantified)"
            ),
            paper=0.0,
            measured=100.0 * value,
            unit="%",
        )
        for key, value in savings.items()
    )
    data["savings"] = savings
    return ExperimentResult(
        experiment_id="tab-area",
        title="Cache area, baseline vs proposed (abstract claim)",
        body=table.render(),
        comparisons=comparisons,
        data=data,
    )
