"""Engine seam for trace sources: normalization, dedup and dispatch.

:func:`~repro.engine.jobs.resolve_source` is the one crossing point
between the workload layer and the engine — it duck-types
``job_trace`` so the engine never imports the source module.  Pinned
here: a source-carrying job gets the *same* key as the plain job it
abstracts, and source jobs survive serial and parallel sessions with
bit-identical results.
"""

import pytest

from repro.engine.jobs import (
    SimulationJob,
    TraceSpec,
    execute_job,
    job_key,
    resolve_source,
)
from repro.engine.session import SimulationSession
from repro.tech.operating import Mode
from repro.workloads.mediabench import benchmark_by_name
from repro.workloads.source import SyntheticSource
from repro.workloads.suites import MIX_SUITES, suite_by_name


def _source():
    return SyntheticSource(benchmark_by_name("adpcm_c"), 2000, 2013)


def _mix():
    from repro.workloads.source import as_sources

    (source,) = as_sources((MIX_SUITES["mix1"],), length=1500, seed=3)
    return source


class TestResolveSource:
    def test_plain_specs_pass_through_untouched(self):
        spec = TraceSpec("adpcm_c", 2000, 2013)
        assert resolve_source(spec) is spec

    def test_synthetic_source_resolves_to_the_classic_spec(self):
        assert resolve_source(_source()) == TraceSpec(
            "adpcm_c", 2000, 2013
        )

    def test_mix_source_resolves_to_its_trace(self):
        mix = _mix()
        assert resolve_source(mix) is mix.materialize()


class TestSourceJobKeys:
    def test_source_job_key_equals_plain_spec_job_key(self, chips_a):
        """The dedup contract: a source job and the plain job it
        abstracts must land in one cache slot."""
        plain = SimulationJob(
            chip=chips_a.proposed.config,
            trace=TraceSpec("adpcm_c", 2000, 2013),
            mode=Mode.ULE,
        )
        sourced = SimulationJob(
            chip=chips_a.proposed.config,
            trace=_source(),
            mode=Mode.ULE,
        )
        assert job_key(sourced) == job_key(plain)

    def test_mix_job_key_is_stable_across_rebuilds(self, chips_a):
        keys = {
            job_key(
                SimulationJob(
                    chip=chips_a.proposed.config,
                    trace=_mix(),
                    mode=Mode.ULE,
                )
            )
            for _ in range(2)
        }
        assert len(keys) == 1


class TestSourceSessionEquivalence:
    def _jobs(self, chips):
        return [
            SimulationJob(
                chip=chips.proposed.config, trace=trace, mode=mode
            )
            for trace in (_source(), _mix())
            for mode in (Mode.ULE, Mode.HP)
        ]

    def test_serial_matches_direct_execution(self, chips_a):
        jobs = self._jobs(chips_a)
        expected = [execute_job(job) for job in jobs]
        with SimulationSession() as session:
            got = session.run_jobs(jobs)
        for left, right in zip(expected, got):
            assert list(left.energy.items()) == list(right.energy.items())
            assert left.timing == right.timing

    def test_parallel_matches_serial(self, chips_a, tmp_path):
        jobs = self._jobs(chips_a)
        with SimulationSession() as session:
            serial = session.run_jobs(jobs)
        with SimulationSession(
            jobs=2, trace_store=tmp_path / "store"
        ) as session:
            parallel = session.run_jobs(jobs)
        for left, right in zip(serial, parallel):
            assert list(left.energy.items()) == list(right.energy.items())
            assert left.il1_stats == right.il1_stats
            assert left.dl1_stats == right.dl1_stats


class TestMixSuiteLookup:
    def test_mix_suite_resolves_to_one_mix_spec(self):
        suite = suite_by_name("mix1", Mode.ULE)
        assert len(suite) == 1
        assert suite[0] is MIX_SUITES["mix1"]

    def test_unknown_suite_lists_mixes(self):
        with pytest.raises(ValueError, match="mix1"):
            suite_by_name("bogus", Mode.ULE)
