"""Property test: the simulator against an independent reference model.

The reference is a dead-simple dict-of-OrderedDicts LRU cache written
with none of the simulator's machinery; hypothesis drives both with the
same random access streams and demands identical hit/miss verdicts and
writeback counts.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.setassoc import SetAssociativeCache
from repro.core.architect import build_cache_pair


class ReferenceLruCache:
    """Textbook write-back write-allocate LRU cache."""

    def __init__(self, sets: int, ways: int, line_bytes: int, tag_bits: int):
        self.sets = sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.tag_bits = tag_bits
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(sets)
        ]
        self.writebacks = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        index = line % self.sets
        tag = (line // self.sets) & ((1 << self.tag_bits) - 1)
        return index, tag

    def access(self, address: int, is_write: bool) -> bool:
        index, tag = self._locate(address)
        entries = self._sets[index]
        if tag in entries:
            dirty = entries.pop(tag)
            entries[tag] = dirty or is_write  # move to MRU
            return True
        if len(entries) >= self.ways:
            _, victim_dirty = entries.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
        entries[tag] = is_write
        return False


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    address_bits=st.integers(12, 18),
    accesses=st.integers(50, 400),
)
def test_simulator_matches_reference(seed, address_bits, accesses, design_a):
    baseline, _ = build_cache_pair(design_a)
    simulator = SetAssociativeCache(baseline, policy="lru")
    reference = ReferenceLruCache(
        sets=baseline.sets,
        ways=baseline.ways,
        line_bytes=baseline.line_bytes,
        tag_bits=baseline.tag_bits,
    )
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << address_bits, size=accesses)
    writes = rng.random(accesses) < 0.35
    for address, write in zip(addresses, writes):
        expected = reference.access(int(address), bool(write))
        actual = simulator.access(int(address), bool(write)).hit
        assert actual == expected
    assert simulator.stats.writebacks == reference.writebacks
