"""SRAM bitcell substrate: 6T / 8T / 10T-ST cells, failure models, sizing.

This package is the substitute for the paper's HSPICE bitcell
characterization plus the yield analysis of Chen et al. (ICCAD 2007), which
the design methodology of the paper (Fig. 2) invokes at every sizing step:

* :mod:`repro.sram.cells` — parametric cell topologies (transistor roles,
  widths, port structure, area) for differential 6T, read-decoupled 8T and
  Schmitt-trigger 10T cells;
* :mod:`repro.sram.margins` — an analytic operating-margin model with
  per-transistor Vt sensitivities (the linearized "SPICE" of this repo);
* :mod:`repro.sram.failure` — analytic cell failure probability
  ``Pf(cell, Vdd, size)``;
* :mod:`repro.sram.montecarlo` — plain Monte Carlo and mean-shift
  importance-sampling estimators of the same quantity (Chen-style);
* :mod:`repro.sram.sizing` — yield-driven sizing searches used by the
  paper's methodology;
* :mod:`repro.sram.energy` — per-cell capacitance/leakage aggregates
  consumed by the array model in :mod:`repro.cacti`.
"""

from repro.sram.cells import (
    CELL_6T,
    CELL_8T,
    CELL_10T,
    CellDesign,
    CellTopology,
    TransistorSpec,
    cell_by_name,
)
from repro.sram.margins import MarginModel
from repro.sram.failure import CellFailureModel, analytic_pf
from repro.sram.montecarlo import (
    ImportanceSamplingResult,
    importance_sampling_pf,
    monte_carlo_pf,
)
from repro.sram.sizing import minimal_size_step, size_for_pf

__all__ = [
    "TransistorSpec",
    "CellTopology",
    "CellDesign",
    "CELL_6T",
    "CELL_8T",
    "CELL_10T",
    "cell_by_name",
    "MarginModel",
    "CellFailureModel",
    "analytic_pf",
    "monte_carlo_pf",
    "importance_sampling_pf",
    "ImportanceSamplingResult",
    "size_for_pf",
    "minimal_size_step",
]
