"""Trace-driven in-order chip simulator (MPSim + Wattch substitute).

* :mod:`repro.cpu.trace` — the instruction-trace record format produced by
  :mod:`repro.workloads`;
* :mod:`repro.cpu.timing` — the in-order timing model (cache-miss,
  load-use, redirect and EDC stalls);
* :mod:`repro.cpu.power` — the Wattch-style energy ledger;
* :mod:`repro.cpu.arrays` — non-L1 SRAM structures (register file, TLBs),
  built from 10T cells "so they operate properly at any voltage level
  considered" (Section IV-A.3);
* :mod:`repro.cpu.chip` — the full chip: caches + core + ledger; its
  :meth:`~repro.cpu.chip.Chip.run` produces the EPI numbers behind the
  paper's Figures 3 and 4.
"""

from repro.cpu.trace import InstrKind, Trace, TraceSummary
from repro.cpu.power import EnergyLedger
from repro.cpu.timing import TimingParams, TimingResult, compute_timing
from repro.cpu.arrays import CoreArrays
from repro.cpu.chip import Chip, ChipConfig, RunResult

__all__ = [
    "InstrKind",
    "Trace",
    "TraceSummary",
    "EnergyLedger",
    "TimingParams",
    "TimingResult",
    "compute_timing",
    "CoreArrays",
    "Chip",
    "ChipConfig",
    "RunResult",
]
