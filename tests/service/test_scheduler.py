"""Scheduler semantics under faults: retries, quotas, degradation.

These suites run the scheduler in ``workers=0`` mode with injected
executors and clocks, so every fault — a worker dying mid-job, a
truncated store entry, a saturated queue — is reproduced
deterministically rather than raced for.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.jobs import job_key
from repro.service.scheduler import (
    ATTACHED,
    DONE,
    FAILED,
    QUEUED,
    REASON_QUOTA,
    REASON_SATURATED,
    RUNNING,
    SHED,
    ResultNotReady,
    ServiceScheduler,
)
from repro.service.store import ShardedResultStore


class FlakyExecutor:
    """Fails the first ``failures`` calls per key, then succeeds."""

    def __init__(self, failures: int = 1):
        self.failures = failures
        self.calls: list[str] = []

    def __call__(self, job):
        key = job_key(job)
        self.calls.append(key)
        if self.calls.count(key) <= self.failures:
            raise RuntimeError(f"worker killed mid-job (attempt for {key[:8]})")
        return ("result-for", key)


class TestHappyPath:
    def test_submit_run_result(self, manual_scheduler, distinct_jobs):
        scheduler = manual_scheduler()
        (job,) = distinct_jobs(1)
        (ticket,) = scheduler.submit("alice", [job])
        assert ticket.state == QUEUED
        assert scheduler.run_next() == ticket.key
        assert scheduler.result(ticket.key) == ("result-for", ticket.key)
        assert scheduler.stats.executed == 1
        assert scheduler.run_next() is None

    def test_memo_and_attach_dedup(self, manual_scheduler, distinct_jobs):
        scheduler = manual_scheduler()
        (job,) = distinct_jobs(1)
        (first,) = scheduler.submit("alice", [job])
        (attached,) = scheduler.submit("bob", [job])
        assert attached.state == ATTACHED
        scheduler.run_next()
        (memo,) = scheduler.submit("carol", [job])
        assert memo.state == DONE
        assert scheduler.stats.executed == 1
        assert scheduler.stats.attached == 1
        assert scheduler.stats.served_memo == 1
        assert scheduler.stats.dedup_fraction == pytest.approx(2 / 3)
        # All three tenants read the identical object.
        assert scheduler.result(first.key) == ("result-for", first.key)

    def test_store_hit_served_without_executing(
        self, manual_scheduler, distinct_jobs, tmp_path
    ):
        store = ShardedResultStore(tmp_path)
        (job,) = distinct_jobs(1)
        key = job_key(job)
        store.put(key, ("precomputed", key))
        scheduler = manual_scheduler(store=store)
        (ticket,) = scheduler.submit("alice", [job])
        assert ticket.state == DONE
        assert scheduler.result(key) == ("precomputed", key)
        assert scheduler.stats.served_store == 1
        assert scheduler.stats.executed == 0

    def test_result_published_to_store_on_completion(
        self, manual_scheduler, distinct_jobs, tmp_path
    ):
        store = ShardedResultStore(tmp_path)
        scheduler = manual_scheduler(store=store)
        (job,) = distinct_jobs(1)
        (ticket,) = scheduler.submit("alice", [job])
        scheduler.run_next()
        assert store.get(ticket.key) == ("result-for", ticket.key)
        assert scheduler.result_bytes(ticket.key) == store.get_bytes(
            ticket.key
        )


class TestFaultInjection:
    def test_killed_worker_retries_with_backoff(
        self, manual_scheduler, distinct_jobs
    ):
        executor = FlakyExecutor(failures=1)
        scheduler = manual_scheduler(
            execute=executor, backoff_base=1.0, clock=lambda: 0.0
        )
        (job,) = distinct_jobs(1)
        (ticket,) = scheduler.submit("alice", [job])
        # First attempt dies; the job is re-queued, not failed.
        assert scheduler.run_next(now=0.0) == ticket.key
        assert scheduler.state_of(ticket.key)["state"] == QUEUED
        assert scheduler.stats.retried == 1
        # Before the backoff expires nothing is runnable...
        assert scheduler.run_next(now=0.5) is None
        # ...after it, the retry runs and succeeds.
        assert scheduler.run_next(now=1.0) == ticket.key
        assert scheduler.result(ticket.key) == ("result-for", ticket.key)
        assert scheduler.state_of(ticket.key)["attempts"] == 2

    def test_backoff_doubles_per_attempt(self, manual_scheduler, distinct_jobs):
        executor = FlakyExecutor(failures=2)
        scheduler = manual_scheduler(
            execute=executor,
            backoff_base=1.0,
            max_retries=3,
            clock=lambda: 0.0,
        )
        (job,) = distinct_jobs(1)
        (ticket,) = scheduler.submit("alice", [job])
        scheduler.run_next(now=0.0)  # attempt 1 fails -> due at 1.0
        assert scheduler.run_next(now=0.9) is None
        scheduler.run_next(now=1.0)  # attempt 2 fails -> due at 3.0
        assert scheduler.run_next(now=2.9) is None
        assert scheduler.run_next(now=3.0) == ticket.key
        assert scheduler.state_of(ticket.key)["state"] == DONE

    def test_exhausted_retries_mark_failed_never_partial(
        self, manual_scheduler, distinct_jobs
    ):
        scheduler = manual_scheduler(
            execute=FlakyExecutor(failures=99),
            max_retries=1,
            backoff_base=0.0,
            clock=lambda: 0.0,
        )
        (job,) = distinct_jobs(1)
        (ticket,) = scheduler.submit("alice", [job])
        scheduler.run_next(now=0.0)
        scheduler.run_next(now=0.0)
        state = scheduler.state_of(ticket.key)
        assert state["state"] == FAILED
        assert "RuntimeError" in state["error"]
        assert scheduler.stats.failed == 1
        # A failed job never yields a result object, partial or not.
        with pytest.raises(ResultNotReady) as excinfo:
            scheduler.result(ticket.key)
        assert excinfo.value.state == FAILED

    def test_resubmission_after_failure_retries_from_scratch(
        self, manual_scheduler, distinct_jobs
    ):
        executor = FlakyExecutor(failures=2)
        scheduler = manual_scheduler(
            execute=executor,
            max_retries=0,
            clock=lambda: 0.0,
        )
        (job,) = distinct_jobs(1)
        scheduler.submit("alice", [job])
        scheduler.run_next(now=0.0)  # fails -> FAILED (no retries)
        scheduler.submit("alice", [job])
        scheduler.run_next(now=0.0)  # fails again
        (ticket,) = scheduler.submit("bob", [job])
        assert ticket.state == QUEUED  # failed entries re-enter the queue
        scheduler.run_next(now=0.0)  # third per-key call succeeds
        assert scheduler.result(ticket.key) == ("result-for", ticket.key)

    def test_truncated_store_entry_is_miss_then_heals(
        self, manual_scheduler, distinct_jobs, tmp_path
    ):
        store = ShardedResultStore(tmp_path)
        (job,) = distinct_jobs(1)
        key = job_key(job)
        store.put(key, ("will-be-truncated", key))
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[:-4])
        scheduler = manual_scheduler(store=store)
        with pytest.warns(RuntimeWarning, match="treated as a miss"):
            (ticket,) = scheduler.submit("alice", [job])
        assert ticket.state == QUEUED  # corrupt entry did not serve
        scheduler.run_next()
        assert scheduler.result(key) == ("result-for", key)
        assert store.get(key) == ("result-for", key)  # healed on publish

    def test_retry_requeue_bypasses_full_queue(
        self, manual_scheduler, distinct_jobs
    ):
        """A transient fault must never deadlock against saturation."""
        executor = FlakyExecutor(failures=1)
        scheduler = manual_scheduler(
            execute=executor,
            queue_capacity=2,
            backoff_base=0.0,
            clock=lambda: 0.0,
        )
        jobs = distinct_jobs(3)
        tickets = scheduler.submit("alice", jobs[:2])
        assert [t.state for t in tickets] == [QUEUED, QUEUED]
        scheduler.run_next(now=0.0)  # first job fails -> due immediately
        # Fill the freed slot so the queue is at capacity again.
        (filler,) = scheduler.submit("alice", [jobs[2]])
        assert filler.state == QUEUED
        # The retry is promoted past the full queue and completes.
        ran = {scheduler.run_next(now=0.0) for _ in range(3)}
        assert tickets[0].key in ran
        assert scheduler.result(tickets[0].key) == (
            "result-for",
            tickets[0].key,
        )


class TestBackpressure:
    def test_saturated_queue_sheds_with_typed_reason(
        self, manual_scheduler, distinct_jobs
    ):
        scheduler = manual_scheduler(queue_capacity=2)
        jobs = distinct_jobs(3)
        tickets = scheduler.submit("alice", jobs)
        assert [t.state for t in tickets] == [QUEUED, QUEUED, SHED]
        assert tickets[2].reason == REASON_SATURATED
        assert tickets[2].retry_after > 0
        assert scheduler.stats.shed_saturated == 1

    def test_quota_sheds_per_tenant_only(self, manual_scheduler, distinct_jobs):
        scheduler = manual_scheduler(tenant_quota=1, queue_capacity=8)
        jobs = distinct_jobs(3)
        alice = scheduler.submit("alice", jobs[:2])
        assert [t.state for t in alice] == [QUEUED, SHED]
        assert alice[1].reason == REASON_QUOTA
        # Another tenant has its own quota.
        (bob,) = scheduler.submit("bob", [jobs[2]])
        assert bob.state == QUEUED
        # Attaching to in-flight work is never quota-shed.
        (attach,) = scheduler.submit("alice", [jobs[2]])
        assert attach.state == ATTACHED
        # Completing work frees the quota.
        scheduler.run_next()
        resubmit = scheduler.submit("alice", [jobs[1]])
        assert resubmit[0].state == QUEUED

    def test_memoized_results_served_under_saturation(
        self, manual_scheduler, distinct_jobs, tmp_path
    ):
        """Graceful degradation: known answers beat every capacity check."""
        store = ShardedResultStore(tmp_path)
        scheduler = manual_scheduler(
            store=store, queue_capacity=1, tenant_quota=1
        )
        jobs = distinct_jobs(4)
        done_key = job_key(jobs[0])
        store.put(done_key, ("precomputed", done_key))
        # Saturate both the queue and alice's quota with jobs[1].
        scheduler.submit("alice", [jobs[1]])
        assert scheduler.submit("alice", [jobs[2]])[0].state == SHED
        assert scheduler.submit("bob", [jobs[3]])[0].state == SHED
        # The store-known job is still served, quota and queue be damned.
        (ticket,) = scheduler.submit("alice", [jobs[0]])
        assert ticket.state == DONE
        assert scheduler.result(done_key) == ("precomputed", done_key)


class TestNeverPartial:
    def test_running_job_has_no_result(self, manual_scheduler, distinct_jobs):
        observed = {}

        def probing_execute(job):
            key = job_key(job)
            observed["state"] = scheduler.state_of(key)["state"]
            with pytest.raises(ResultNotReady):
                scheduler.result(key)
            return ("result-for", key)

        scheduler = manual_scheduler(execute=probing_execute)
        (job,) = distinct_jobs(1)
        scheduler.submit("alice", [job])
        scheduler.run_next()
        assert observed["state"] == RUNNING

    def test_result_bytes_roundtrip(self, manual_scheduler, distinct_jobs):
        scheduler = manual_scheduler()
        (job,) = distinct_jobs(1)
        (ticket,) = scheduler.submit("alice", [job])
        scheduler.run_next()
        payload = scheduler.result_bytes(ticket.key)
        assert pickle.loads(payload) == scheduler.result(ticket.key)


class TestBackgroundWorkers:
    def test_worker_threads_drain_queue(self, distinct_jobs):
        scheduler = ServiceScheduler(
            workers=2,
            execute=lambda job: ("result-for", job_key(job)),
        )
        jobs = distinct_jobs(6)
        with scheduler:
            tickets = scheduler.submit("alice", jobs)
            keys = [ticket.key for ticket in tickets]
            assert scheduler.wait(keys, timeout=10.0)
        assert all(
            scheduler.result(key) == ("result-for", key) for key in keys
        )
        assert scheduler.stats.executed == 6

    def test_worker_retry_path(self, distinct_jobs):
        executor = FlakyExecutor(failures=1)
        scheduler = ServiceScheduler(
            workers=1,
            execute=executor,
            backoff_base=0.01,
            max_retries=2,
        )
        (job,) = distinct_jobs(1)
        with scheduler:
            (ticket,) = scheduler.submit("alice", [job])
            assert scheduler.wait([ticket.key], timeout=10.0)
        assert scheduler.result(ticket.key) == ("result-for", ticket.key)
        assert scheduler.stats.retried == 1
