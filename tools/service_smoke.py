"""Fleet-service smoke: two concurrent clients, one overlapping sweep.

Boots the full service stack (sharded store, fair scheduler, HTTP API)
on an ephemeral port, then drives it the way a fleet would: two clients
submit *overlapping* halves of a benchmark sweep concurrently and wait
for completion over the streaming endpoint.  The run fails unless:

* every job completes (no stuck, failed or torn entries);
* cross-client dedup — measured as ``1 - executed / submitted``, which
  is robust to scheduling order — reaches the acceptance floor;
* every payload a client unpickles is **byte-identical** to what a
  serial library-mode session computes for the same job key.

Usage::

    python tools/service_smoke.py --out service_smoke.json
    python tools/service_smoke.py --sweep 50 --trace-length 2000
"""

from __future__ import annotations

import argparse
import json
import pathlib
import pickle
import sys
import tempfile
import threading
import time

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # pragma: no cover - direct execution
    sys.path.insert(0, str(REPO_SRC))

from repro.engine.jobs import job_key  # noqa: E402
from repro.engine.session import SimulationSession  # noqa: E402
from repro.service.api import serve_in_thread  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.requests import JobRequest, resolve  # noqa: E402
from repro.service.scheduler import ServiceScheduler  # noqa: E402
from repro.service.store import ShardedResultStore  # noqa: E402
from repro.workloads.mediabench import BENCHMARKS  # noqa: E402

#: Acceptance floor for cross-client deduplication.
DEDUP_FLOOR = 0.40

#: Per-client share of the sweep (45/50 each side -> 40-job overlap).
OVERLAP_MARGIN = 0.1


def build_sweep(size: int, trace_length: int) -> list[JobRequest]:
    """``size`` distinct requests cycling benchmarks x seeds x modes."""
    names = sorted(spec.name for spec in BENCHMARKS)
    return [
        JobRequest(
            benchmark=names[index % len(names)],
            trace_length=trace_length,
            seed=index // len(names) + 1,
            mode="ule" if index % 2 == 0 else "hp",
        )
        for index in range(size)
    ]


def run_smoke(
    sweep: int, trace_length: int, workers: int, store_root: str
) -> dict:
    """One full smoke pass; returns the machine-readable summary."""
    requests = build_sweep(sweep, trace_length)
    margin = max(1, int(sweep * OVERLAP_MARGIN))
    slices = {
        "alice": requests[: sweep - margin],
        "bob": requests[margin:],
    }

    store = ShardedResultStore(store_root)
    scheduler = ServiceScheduler(store, workers=workers)
    scheduler.start()
    handle = serve_in_thread(scheduler)
    print(
        f"[smoke] service on http://{handle.host}:{handle.port}; "
        f"sweep {sweep}, overlap {sweep - 2 * margin}, "
        f"{workers} workers",
        file=sys.stderr,
    )
    keys: dict[str, list[str]] = {}
    errors: dict[str, Exception] = {}

    def drive(tenant: str) -> None:
        client = ServiceClient(handle.host, handle.port, tenant=tenant)
        try:
            submitted = client.submit_all(slices[tenant])
            states = client.wait(submitted, timeout=600.0)
            bad = {k: s for k, s in states.items() if s != "done"}
            if bad:
                raise RuntimeError(f"{tenant}: non-done jobs {bad}")
            keys[tenant] = submitted
        except Exception as error:  # propagated to the main thread
            errors[tenant] = error

    started = time.monotonic()
    clients = [
        threading.Thread(target=drive, args=(tenant,), name=tenant)
        for tenant in slices
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=900.0)
    elapsed = time.monotonic() - started
    try:
        if errors:
            raise RuntimeError(f"client failures: {errors}")

        stats = scheduler.stats
        dedup = 1.0 - stats.executed / stats.submitted
        print(
            f"[smoke] {stats.submitted} submitted, "
            f"{stats.executed} executed, dedup {dedup:.1%} "
            f"in {elapsed:.1f} s",
            file=sys.stderr,
        )
        if dedup < DEDUP_FLOOR:
            raise SystemExit(
                f"FAIL: cross-client dedup {dedup:.1%} below the "
                f"{DEDUP_FLOOR:.0%} acceptance floor"
            )

        # Byte-identity: a serial library session must produce the
        # exact pickle bytes every client received.
        reference = ServiceClient(handle.host, handle.port, tenant="ref")
        with SimulationSession(jobs=1) as session:
            local = session.run_jobs(
                [resolve(request) for request in requests]
            )
        mismatches = 0
        for request, result in zip(requests, local):
            expected = pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL
            )
            key = job_key(resolve(request))
            if reference.result_bytes(key) != expected:
                mismatches += 1
        if mismatches:
            raise SystemExit(
                f"FAIL: {mismatches}/{len(requests)} service payloads "
                "differ from library-mode execution"
            )
        print(
            f"[smoke] byte-identity held for all {len(requests)} jobs",
            file=sys.stderr,
        )
        return {
            "sweep": sweep,
            "trace_length": trace_length,
            "workers": workers,
            "submitted": stats.submitted,
            "executed": stats.executed,
            "attached": stats.attached,
            "served_store": stats.served_store,
            "served_memo": stats.served_memo,
            "dedup_fraction": dedup,
            "dedup_floor": DEDUP_FLOOR,
            "byte_identity_checked": len(requests),
            "elapsed_seconds": elapsed,
        }
    finally:
        handle.close()
        scheduler.stop()


def main(argv: list[str] | None = None) -> int:
    """Parse flags, run the smoke, optionally save the JSON summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sweep", type=int, default=50,
        help="jobs in the overlapping sweep (default: 50)",
    )
    parser.add_argument(
        "--trace-length", type=int, default=2000,
        help="dynamic instructions per job (default: 2000)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="service executor threads (default: 4)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the machine-readable summary to this file",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as root:
        summary = run_smoke(
            args.sweep, args.trace_length, args.workers, root
        )
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.out:
        args.out.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"[smoke] summary saved -> {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
