"""The surrogate-guided active-learning loop over a campaign."""

import json

import pytest

from repro.engine.session import SimulationSession
from repro.explore.campaign import (
    ExplorationCampaign,
    SurrogateSettings,
)
from repro.explore.candidates import default_constraints
from repro.explore.space import DesignSpace


def _space(**overrides):
    axes = {
        "size_kb": (4, 8, 16),
        "line_bytes": (32,),
        "ways": (8,),
        "ule_ways": (1,),
        "ule_cell": ("8T", "10T"),
        "ule_scheme": ("secded", "dected"),
        "hp_scheme": ("none",),
        "vdd_ule": (0.35, 0.4),
        "replacement": ("lru",),
        "suite": ("paper",),
    }
    axes.update(overrides)
    return DesignSpace.from_dict(axes, default_constraints())


def _campaign(space=None, **kwargs):
    kwargs.setdefault("trace_length", 2_000)
    kwargs.setdefault("seed", 7)
    return ExplorationCampaign(space=space or _space(), **kwargs)


def _run(campaign, settings=None, **session_kwargs):
    with SimulationSession(**session_kwargs) as session:
        return campaign.run_surrogate(
            session=session, settings=settings or SurrogateSettings()
        )


class TestSettings:
    def test_defaults_scale_with_space(self):
        budget, seed, round_size = SurrogateSettings().resolve(90)
        assert budget == 30
        assert seed == 8
        assert round_size == 4

    def test_explicit_values_clamped_to_space(self):
        settings = SurrogateSettings(budget=500, seed_candidates=400)
        budget, seed, _ = settings.resolve(24)
        assert budget == 24
        assert seed == 24

    def test_empty_space(self):
        assert SurrogateSettings().resolve(0) == (0, 0, 1)


class TestSurrogateLoop:
    def test_budget_bounds_simulated_candidates(self):
        campaign = _campaign()
        total = len(campaign.expand()[0])
        result = _run(
            campaign,
            SurrogateSettings(budget=8, seed_candidates=4,
                              round_size=2),
        )
        assert result.candidates_total == total
        assert result.budget == 8
        assert len(result.campaign.outcomes) <= 8
        assert result.jobs_submitted < result.exhaustive_jobs

    def test_round_trace_is_consistent(self):
        result = _run(
            _campaign(),
            SurrogateSettings(budget=8, seed_candidates=4,
                              round_size=2),
        )
        assert result.rounds[0].index == 0
        assert result.rounds[0].selected == 4
        cumulative = 0
        for entry in result.rounds:
            cumulative += entry.selected
            assert entry.total_evaluated == cumulative
            # Paper suite, no dies: 10 jobs per candidate, and the
            # rendered table only ever shows this deterministic count.
            assert entry.submitted_jobs == 10 * entry.selected
            assert entry.executed_jobs <= entry.submitted_jobs
            assert entry.hypervolume >= 0.0
        assert result.rounds[0].gain is None
        assert all(
            entry.gain is not None for entry in result.rounds[1:]
        )

    def test_metrics_byte_equal_to_exhaustive(self):
        campaign = _campaign()
        surrogate = _run(
            campaign,
            SurrogateSettings(budget=6, seed_candidates=4,
                              round_size=2),
        )
        with SimulationSession() as session:
            exhaustive = campaign.run(session=session)
        by_name = {
            outcome.candidate.name: outcome.metrics
            for outcome in exhaustive.outcomes
        }
        for outcome in surrogate.campaign.outcomes:
            assert outcome.metrics == by_name[outcome.candidate.name]

    def test_serial_matches_parallel(self):
        campaign = _campaign()
        settings = SurrogateSettings(
            budget=8, seed_candidates=4, round_size=2
        )
        serial = _run(campaign, settings)
        parallel = _run(campaign, settings, jobs=2)
        assert json.dumps(serial.to_dict(), sort_keys=True) == (
            json.dumps(parallel.to_dict(), sort_keys=True)
        )
        assert serial.render_report() == parallel.render_report()

    def test_same_seed_reproduces_bit_identically(self):
        settings = SurrogateSettings(
            budget=8, seed_candidates=4, round_size=2
        )
        first = _run(_campaign(), settings)
        second = _run(_campaign(), settings)
        assert first.to_dict() == second.to_dict()

    def test_budget_covering_space_evaluates_everything(self):
        campaign = _campaign(_space(size_kb=(4, 8), vdd_ule=(0.35,)))
        total = len(campaign.expand()[0])
        result = _run(
            campaign,
            SurrogateSettings(
                budget=total, seed_candidates=2, round_size=total,
                rel_tol=0.0,
            ),
        )
        assert len(result.campaign.outcomes) == total

    def test_convergence_stops_early(self):
        campaign = _campaign()
        total = len(campaign.expand()[0])
        result = _run(
            campaign,
            SurrogateSettings(
                budget=total, seed_candidates=4, round_size=1,
                rel_tol=10.0, patience=1,
            ),
        )
        assert result.converged
        assert len(result.campaign.outcomes) < total

    def test_job_accounting(self):
        result = _run(
            _campaign(),
            SurrogateSettings(budget=6, seed_candidates=4,
                              round_size=2),
        )
        # paper suite: 5 ULE + 5 HP jobs per candidate, no dies.
        assert result.jobs_submitted == 10 * len(
            result.campaign.outcomes
        )
        assert result.exhaustive_jobs == 10 * result.candidates_total
        assert result.jobs_executed <= result.jobs_submitted
        assert result.jobs_ratio == pytest.approx(
            result.jobs_submitted / result.exhaustive_jobs
        )

    def test_report_renders_surrogate_section(self):
        result = _run(
            _campaign(),
            SurrogateSettings(budget=6, seed_candidates=4,
                              round_size=2),
        )
        text = result.render_report()
        assert "Surrogate exploration" in text
        assert "knee (best compromise):" in text
        assert "Exploration ranking" in text

    def test_report_independent_of_cache_warmth(self):
        """`all` runs campaigns in sessions other experiments already
        warmed; the rendered report must not leak how many jobs the
        session really executed (memo hits vary, reports must not)."""
        campaign = _campaign()
        settings = SurrogateSettings(
            budget=6, seed_candidates=4, round_size=2
        )
        with SimulationSession() as session:
            cold = campaign.run_surrogate(
                session=session, settings=settings
            )
            warm = campaign.run_surrogate(
                session=session, settings=settings
            )
        assert warm.jobs_executed == 0  # everything memo-hit
        assert cold.jobs_executed > 0
        assert warm.render_report() == cold.render_report()

    def test_to_dict_keeps_campaign_shape(self):
        result = _run(
            _campaign(),
            SurrogateSettings(budget=6, seed_candidates=4,
                              round_size=2),
        )
        payload = result.to_dict()
        assert "candidates" in payload
        assert "frontier" in payload
        surrogate = payload["surrogate"]
        assert surrogate["budget"] == 6
        assert len(surrogate["rounds"]) == len(result.rounds)
        assert surrogate["rounds"][0]["gain"] is None
        json.dumps(payload)  # JSON-safe end to end


class TestReuse:
    def test_saved_campaign_seeds_the_loop(self):
        campaign = _campaign()
        with SimulationSession() as session:
            exhaustive = campaign.run(session=session)
        saved = {
            entry["name"]: entry["metrics"]
            for entry in exhaustive.to_dict()["candidates"]
        }
        result = _run(
            _campaign(),
            SurrogateSettings(budget=4, seed_candidates=2,
                              round_size=2),
        )
        assert result.campaign.reused == 0
        with SimulationSession() as session:
            resumed = campaign.run_surrogate(
                session=session,
                settings=SurrogateSettings(budget=4),
                reuse=saved,
            )
        # Everything resolves from the saved rows: nothing simulates.
        assert resumed.campaign.reused == resumed.evaluated
        assert resumed.jobs_executed == 0

    def test_run_reuse_merges_deterministically(self):
        campaign = _campaign()
        with SimulationSession() as session:
            full = campaign.run(session=session)
        saved = {
            entry["name"]: entry["metrics"]
            for entry in full.to_dict()["candidates"]
        }
        partial = dict(list(saved.items())[:2])
        with SimulationSession() as session:
            resumed = campaign.run(session=session, reuse=partial)
        assert resumed.reused == 2
        assert resumed.render_report() == full.render_report()

    def test_rows_missing_required_metrics_resimulate(self):
        campaign = _campaign()
        with SimulationSession() as session:
            full = campaign.run(session=session)
        name = full.outcomes[0].candidate.name
        saved = {name: {"epi_ule": 1.0}}  # far from complete
        with SimulationSession() as session:
            resumed = campaign.run(session=session, reuse=saved)
        assert resumed.reused == 0
        assert resumed.render_report() == full.render_report()
