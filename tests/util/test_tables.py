"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table


class TestTable:
    def test_render_contains_cells(self):
        table = Table(["name", "value"], title="t")
        table.add_row(["alpha", 1.5])
        text = table.render()
        assert "alpha" in text
        assert "1.5" in text
        assert text.startswith("t")

    def test_column_count_enforced(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row([0.123456789])
        assert "0.1235" in table.render()

    def test_separator(self):
        table = Table(["a"])
        table.add_row([1])
        table.add_separator()
        table.add_row([2])
        lines = table.render().splitlines()
        assert len(lines) == 5  # header, rule, row, rule, row

    def test_alignment_width(self):
        table = Table(["col"])
        table.add_row(["averyverylongcell"])
        header, rule, row = table.render().splitlines()
        assert len(header) == len(rule) == len(row)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])
