"""One memory subarray: rows x cols of a single bitcell design.

All the cell-technology-specific physics enters here through
:class:`repro.cells.CellElectricals` and the :class:`repro.cells.SizedCell`
protocol: wordline/bitline loading, differential vs single-ended sensing,
cell area, cell leakage and — for dynamic cells — retention-driven refresh.
This is exactly the part of CACTI the paper had to extend for 8T/10T cells
and NST operation, generalized so eDRAM and gain cells plug in unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.cacti.components import (
    DecoderModel,
    OUTPUT_DRIVER_CAP,
    periphery_leakage_power,
    read_swing,
    sense_energy,
)
from repro.cacti.wires import WireSegment
from repro.cells import CellElectricals, SizedCell
from repro.tech.transistor import fo4_delay


@dataclass(frozen=True)
class SramArray:
    """A rows x cols array of one sized bitcell (of any technology).

    Attributes:
        rows: wordlines (one cache set per row here — the caches of the
            paper are small enough for a single subarray per way).
        cols: bitcell columns (data bits + provisioned check bits).
        cell: the sized bitcell design.
    """

    rows: int
    cols: int
    cell: SizedCell

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")

    @cached_property
    def electricals(self) -> CellElectricals:
        """Per-cell electrical parameters of the bitcell."""
        return CellElectricals(self.cell)

    @cached_property
    def decoder(self) -> DecoderModel:
        """The row-decoder model sized for this array."""
        return DecoderModel(rows=self.rows, node=self.cell.node)

    # -------------------------------------------------------------- wires
    @cached_property
    def wordline_wire(self) -> WireSegment:
        """The wordline wire spanning every column."""
        return WireSegment(
            length=self.cols * self.electricals.cell_width,
            node=self.cell.node,
        )

    @cached_property
    def bitline_wire(self) -> WireSegment:
        """The bitline wire spanning every row."""
        return WireSegment(
            length=self.rows * self.electricals.cell_height,
            node=self.cell.node,
        )

    def _wordline_cap(self, write: bool) -> float:
        per_cell = (
            self.electricals.write_wordline_cap
            if write
            else self.electricals.read_wordline_cap
        )
        return self.cols * per_cell + self.wordline_wire.capacitance

    def _bitline_cap(self, write: bool) -> float:
        per_cell = (
            self.electricals.write_bitline_cap
            if write
            else self.electricals.read_bitline_cap
        )
        return self.rows * per_cell + self.bitline_wire.capacitance

    # ------------------------------------------------------------- energy
    def read_energy(
        self,
        vdd: float,
        active_cols: int | None = None,
        out_bits: int = 0,
    ) -> float:
        """Dynamic energy of one read access (J).

        Args:
            vdd: supply voltage.
            active_cols: columns whose bitlines are precharged and sensed
                (check-bit columns are gated off when their code is off);
                defaults to all columns.
            out_bits: bits driven onto the output bus by this access —
                only the way selected by the hit drives outputs, so probe
                pricing passes 0 here and the hit path adds the word.
        """
        cols = self.cols if active_cols is None else active_cols
        if not 0 <= cols <= self.cols:
            raise ValueError("active_cols out of range")
        swing = read_swing(vdd, self.electricals.differential_read)
        bitline_cap = self._bitline_cap(write=False)
        bitline = (
            self.electricals.read_bitlines * bitline_cap * vdd * swing
        )
        sensing = sense_energy(vdd, bitline_cap)
        wordline = self._wordline_cap(write=False) * vdd * vdd
        output = out_bits * OUTPUT_DRIVER_CAP * vdd * vdd
        return (
            self.decoder.access_energy(vdd)
            + wordline
            + cols * (bitline + sensing)
            + output
        )

    def write_energy(self, vdd: float, active_cols: int | None = None) -> float:
        """Dynamic energy of one write access (J).

        Writes drive full-rail differential bitlines on the written
        columns only.
        """
        cols = self.cols if active_cols is None else active_cols
        if not 0 <= cols <= self.cols:
            raise ValueError("active_cols out of range")
        bitline = (
            self.electricals.write_bitlines
            * self._bitline_cap(write=True)
            * vdd
            * vdd
        )
        wordline = self._wordline_cap(write=True) * vdd * vdd
        return self.decoder.access_energy(vdd) + wordline + cols * bitline

    def leakage_power(self, vdd: float) -> float:
        """Static power of the array incl. periphery (W)."""
        cells = self.rows * self.cols * self.electricals.leakage_power(vdd)
        periphery = periphery_leakage_power(
            self.rows, self.cols, vdd, self.cell.node
        )
        return cells + self.decoder.leakage_power(vdd) + periphery

    # --------------------------------------------------------------- area
    @property
    def area(self) -> float:
        """Array area (m^2), cells / 70 % array efficiency."""
        return self.rows * self.cols * self.electricals.area / 0.70

    # ------------------------------------------------------------- timing
    def access_time(self, vdd: float) -> float:
        """Read access time (s): decode + wordline + bitline + sense."""
        wordline_delay = self.wordline_wire.elmore_delay + 2.0 * fo4_delay(
            vdd, self.cell.node
        )
        swing = read_swing(vdd, self.electricals.differential_read)
        current = self.cell_read_current(vdd)
        bitline_delay = (
            self._bitline_cap(write=False) * swing / max(current, 1e-15)
            + self.bitline_wire.elmore_delay
        )
        sense_delay = 3.0 * fo4_delay(vdd, self.cell.node)
        return (
            self.decoder.delay(vdd)
            + wordline_delay
            + bitline_delay
            + sense_delay
        )

    def cell_read_current(self, vdd: float) -> float:
        """Read discharge current of one cell (A), per its technology."""
        return self.cell.read_current(vdd)

    # ------------------------------------------------------------ refresh
    def refresh_power(self, vdd: float) -> float:
        """Average refresh power of the whole array at ``vdd`` (W).

        Static cells (infinite retention) cost nothing.  Dynamic cells
        must rewrite every row once per retention time; a refresh is a
        full-row write, so the average power is ``rows * row-write
        energy / retention``.
        """
        retention = self.cell.retention_time(vdd)
        if retention is None or not math.isfinite(retention):
            return 0.0
        if retention <= 0.0:
            raise ValueError("retention time must be positive")
        return self.rows * self.write_energy(vdd) / retention
