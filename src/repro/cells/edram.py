"""Logic-compatible 1T1C eDRAM: the first dynamic cell technology.

An eDRAM bitcell is a single NMOS access device plus a storage capacitor
(MIM or trench, stacked above the transistor).  Compared with SRAM it
is much denser and nearly leakage-free — there is no supply-to-ground
path — but it is *dynamic*: charge leaks off the storage node through
the off access device, so every row must be rewritten once per
retention time.  That refresh power is the term the sustainability
ledger exists to expose (Mittal's cache-reconfiguration survey,
PAPERS.md), and the forcing function that proves the
:class:`repro.cells.CellTechnology` protocol is real: the SRAM model
never needed it.

The failure model mirrors the SRAM stack's linearized-margin approach
(DESIGN.md substitution #2): a per-topology margin knee plus a Pelgrom
variation sigma on the access device, so ``beta ~ sqrt(size)`` and the
generic analytic sizing solve applies unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.cells.protocol import MINIMAL_SIZE_STEP, analytic_size_for_pf
from repro.tech.node import TechnologyNode, ptm32
from repro.tech.transistor import Transistor


@dataclass(frozen=True)
class EDRAMTechnology:
    """The 1T1C eDRAM cell family, before sizing.

    Attributes:
        name: cell family name ("EDRAM").
        base_area_f2: cell area in F^2 at size factor 1 (the capacitor
            stacks above the access device, so the footprint is far
            below 6T SRAM's 146 F^2).
        access_width_mult: access-device width in ``wmin`` units.
        storage_cap: storage capacitance (F) — MIM/trench, fixed by the
            capacitor module rather than transistor sizing.
        retention_margin: fraction of the stored level that may decay
            before a read becomes unreliable.
        retention_leak_fraction: off-state leakage of the access device
            relative to a standard logic transistor (boosted/negative
            wordline low level and higher access Vt suppress it).
        margin_slope: read-margin slope vs supply (V/V).
        margin_v0: supply at which the nominal margin crosses zero.
        sensitivity: margin degradation per volt of access-device Vt
            shift (defines the Pelgrom composite sigma).
        vmin_functional: write-ability floor no up-sizing fixes.
    """

    name: str = "EDRAM"
    base_area_f2: float = 60.0
    access_width_mult: float = 1.0
    storage_cap: float = 1.0e-15
    retention_margin: float = 0.20
    retention_leak_fraction: float = 0.02
    margin_slope: float = 0.50
    margin_v0: float = 0.12
    sensitivity: float = 0.90
    vmin_functional: float = 0.25

    # ------------------------------------------- CellTechnology protocol
    @property
    def technology(self) -> str:
        """Canonical technology token."""
        return "edram-1t1c"

    def design(
        self,
        size_factor: float = 1.0,
        node: TechnologyNode | None = None,
    ) -> "EDRAMCellDesign":
        """A sized 1T1C cell."""
        return EDRAMCellDesign(self, size_factor, node or ptm32())

    def is_operable(self, vdd: float) -> bool:
        """Whether the cell functions at all at ``vdd``."""
        return vdd >= self.vmin_functional

    def failure_probability(
        self,
        vdd: float,
        size_factor: float = 1.0,
        node: TechnologyNode | None = None,
    ) -> float:
        """Hard bit-failure probability at (``vdd``, ``size_factor``)."""
        return self.design(size_factor, node).failure_probability(vdd)

    def size_for_pf(
        self,
        vdd: float,
        pf_target: float,
        node: TechnologyNode | None = None,
    ) -> float:
        """Smallest quantized size factor meeting ``pf_target``."""
        return analytic_size_for_pf(self, vdd, pf_target, node)

    def minimal_size_step(self, node: TechnologyNode | None = None) -> float:
        """The shared 5 % width grid."""
        del node  # single-node library; kept for interface symmetry
        return MINIMAL_SIZE_STEP


#: The registered 1T1C eDRAM technology instance.
EDRAM_1T1C = EDRAMTechnology()


@dataclass(frozen=True)
class EDRAMCellDesign:
    """A sized 1T1C eDRAM cell on a technology node.

    ``size_factor`` scales the access-device width; the storage
    capacitor is a fixed module, so up-sizing buys margin (Pelgrom) and
    drive, not retention charge.
    """

    topology: EDRAMTechnology
    size_factor: float = 1.0
    node: TechnologyNode = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.node is None:
            object.__setattr__(self, "node", ptm32())
        if self.size_factor <= 0:
            raise ValueError("size_factor must be positive")

    def resized(self, size_factor: float) -> "EDRAMCellDesign":
        """The same cell at a different size factor."""
        return EDRAMCellDesign(self.topology, size_factor, self.node)

    # -------------------------------------------------------- identity
    @property
    def cell_name(self) -> str:
        """Short cell name."""
        return self.topology.name

    @property
    def technology(self) -> str:
        """Canonical technology token."""
        return self.topology.technology

    # --------------------------------------------------------- devices
    @property
    def access_width(self) -> float:
        """Physical width (m) of the access device."""
        return (
            self.topology.access_width_mult * self.node.wmin * self.size_factor
        )

    @cached_property
    def access(self) -> Transistor:
        """The sized access device (nominal Vt)."""
        return Transistor(width=self.access_width, kind="n", node=self.node)

    # ------------------------------------------------------------ ports
    @property
    def read_bitlines(self) -> int:
        """Single-ended charge-share read."""
        return 1

    @property
    def write_bitlines(self) -> int:
        """Single bitline drives the storage node through the access."""
        return 1

    @property
    def differential_read(self) -> bool:
        """1T1C reads are single-ended against a reference."""
        return False

    @property
    def read_wordline_cap_per_cell(self) -> float:
        """Gate load on the wordline (F) — the access device's gate."""
        return self.access.gate_cap

    @property
    def write_wordline_cap_per_cell(self) -> float:
        """Gate load on the wordline (F); same device as reads."""
        return self.access.gate_cap

    @property
    def read_bitline_cap_per_cell(self) -> float:
        """Diffusion load on the bitline (F)."""
        return self.access.drain_cap

    @property
    def write_bitline_cap_per_cell(self) -> float:
        """Diffusion load on the bitline (F); same junction."""
        return self.access.drain_cap

    # ------------------------------------------------------------- area
    @property
    def area(self) -> float:
        """Cell area (m^2); ~35 % is sizing-independent overhead."""
        scale = 0.35 + 0.65 * self.size_factor
        return self.topology.base_area_f2 * self.node.f2 * scale

    @property
    def width_m(self) -> float:
        """Physical cell width (m), laid out ~2:1 wide."""
        return (2.0 * self.area) ** 0.5

    @property
    def height_m(self) -> float:
        """Physical cell height (m)."""
        return (self.area / 2.0) ** 0.5

    # ------------------------------------------------------ electricals
    def leakage_current(self, vdd: float) -> float:
        """Static current of one cell (A).

        No supply-to-ground path exists; the only static current is the
        suppressed off-state leak of the access device into/out of the
        storage node — the same current that bounds retention.
        """
        return (
            self.topology.retention_leak_fraction
            * self.access.leakage_current(vdd)
        )

    def leakage_power(self, vdd: float) -> float:
        """Static power of one cell (W)."""
        return self.leakage_current(vdd) * vdd

    def read_current(self, vdd: float) -> float:
        """Bitline discharge current during a charge-share read (A).

        The stored level, not the supply, drives the access device, so
        the effective drive is about half the full-gate on-current.
        """
        return 0.5 * self.access.on_current(vdd)

    # -------------------------------------------------------- retention
    def retention_time(self, vdd: float) -> float:
        """Worst-case data retention time at ``vdd`` (s).

        Charge budget (``C_storage * retention_margin * vdd``) divided
        by the suppressed off-state leak of the access device.  The
        array model converts this into refresh power: one full-array
        rewrite per retention interval.
        """
        leak = self.leakage_current(vdd)
        if leak <= 0.0:
            return math.inf
        charge = self.topology.storage_cap * self.topology.retention_margin * vdd
        return charge / leak

    # ---------------------------------------------------------- failure
    def _beta(self, vdd: float) -> float:
        """Margin in sigma units; Pelgrom sigma on the access device."""
        topo = self.topology
        margin = topo.margin_slope * (vdd - topo.margin_v0)
        sigma = topo.sensitivity * self.node.sigma_vt(self.access_width)
        return margin / sigma

    def failure_probability(self, vdd: float) -> float:
        """Hard bit-failure probability of this sized cell at ``vdd``."""
        from scipy.stats import norm

        return float(norm.sf(self._beta(vdd)))

    def describe(self) -> str:
        """Short human-readable summary."""
        um2 = self.area * 1e12
        return (
            f"{self.topology.name} x{self.size_factor:.2f} "
            f"(1T1C, {um2:.3f} um^2)"
        )
