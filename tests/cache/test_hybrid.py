"""Tests for the hybrid (mode-switching) cache."""

import pytest

from repro.cache.hybrid import HybridCache
from repro.core.architect import build_cache_pair
from repro.tech.operating import Mode


@pytest.fixture()
def hybrid(design_a) -> HybridCache:
    baseline, _ = build_cache_pair(design_a)
    return HybridCache(baseline, mode=Mode.HP)


class TestModeSwitching:
    def test_initial_mode_masks(self, design_a):
        baseline, _ = build_cache_pair(design_a)
        at_ule = HybridCache(baseline, mode=Mode.ULE)
        assert at_ule.active_ways() == [7]

    def test_switch_to_ule_gates_hp_ways(self, hybrid):
        assert len(hybrid.active_ways()) == 8
        hybrid.set_mode(Mode.ULE)
        assert hybrid.active_ways() == [7]
        assert hybrid.mode is Mode.ULE

    def test_switch_flushes_dirty_hp_lines(self, hybrid):
        # Dirty a line that lands in an HP way (fill order starts at 0).
        hybrid.access(0x1000, is_write=True)
        assert hybrid.access(0x1000, False).way < 7
        writebacks = hybrid.set_mode(Mode.ULE)
        assert writebacks == 1

    def test_ule_way_contents_survive_switch(self, hybrid):
        """Lines resident in the ULE way stay valid across the switch."""
        # Fill one set's 8 ways; the last fill lands in way 7.
        sets = hybrid.config.sets
        line = hybrid.config.line_bytes
        addresses = [0x2000 + i * sets * line for i in range(8)]
        for address in addresses:
            hybrid.access(address, False)
        ule_resident = [
            a for a in addresses if hybrid.access(a, False).way == 7
        ]
        assert ule_resident
        hybrid.set_mode(Mode.ULE)
        for address in ule_resident:
            assert hybrid.access(address, False).hit

    def test_hp_ways_empty_after_return(self, hybrid):
        hybrid.access(0x3000, False)  # lands in an HP way
        hybrid.set_mode(Mode.ULE)
        hybrid.set_mode(Mode.HP)
        assert not hybrid.access(0x3000, False).hit

    def test_noop_switch(self, hybrid):
        assert hybrid.set_mode(Mode.HP) == 0
        assert hybrid.mode_switches == 0

    def test_switch_counter(self, hybrid):
        hybrid.set_mode(Mode.ULE)
        hybrid.set_mode(Mode.HP)
        assert hybrid.mode_switches == 2

    def test_ule_mode_only_fills_ule_way(self, hybrid):
        hybrid.set_mode(Mode.ULE)
        for i in range(64):
            result = hybrid.access(0x9000 + 32 * i, False)
            assert result.way == 7
            assert result.group == "ule"
