"""Sustainability experiments (registry ids ``sweep-cells``, ``sustain``).

* ``sweep-cells`` — one campaign over a space that mixes cell
  technologies (SRAM 8T/10T, eDRAM 1T1C, 2T gain cell) at the paper's
  geometry, Pareto-ranked over energy per instruction *and* annual CO2
  per GiB — the headline question of a carbon-aware redesign: does the
  paper's SRAM answer survive when the axis includes dynamic cells
  whose refresh is charged honestly?
* ``sustain`` — the carbon report card for the same candidates: average
  ULE power with its refresh share, CO2 per GiB-year under several
  grid-intensity profiles, and ESII against the 10T baseline.

Both drivers submit through the engine's current session (``--jobs`` /
``--cache-dir`` apply) and are deterministic for a fixed seed.
"""

from __future__ import annotations

from repro.core import calibration
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.explore.campaign import CampaignResult, ExplorationCampaign
from repro.explore.candidates import default_constraints
from repro.explore.space import DesignSpace
from repro.sustainability import (
    GRID_PROFILES,
    carbon_per_gib_year,
    chip_capacity_bytes,
    esii_index,
    grid_intensity,
)
from repro.util.tables import Table


def _cells_space() -> DesignSpace:
    """The mixed-technology slice at the paper's geometry.

    Every registered technology that is functional at 350 mV, each
    under the correcting schemes (the weak-at-NST technologies need a
    hard-fault budget; 10T tolerates one too, keeping the grid square).
    """
    return DesignSpace.from_dict(
        {
            "size_kb": (8,),
            "line_bytes": (32,),
            "ways": (8,),
            "ule_ways": (1,),
            "ule_cell": ("8T", "10T", "EDRAM", "GAIN"),
            "ule_scheme": ("secded", "dected"),
            "hp_scheme": ("none",),
            "vdd_ule": (0.35,),
            "replacement": ("lru",),
            "suite": ("paper",),
        },
        default_constraints(),
    )


def _cells_campaign(
    trace_length: int, seed: int, intensity: float
) -> CampaignResult:
    return ExplorationCampaign(
        space=_cells_space(),
        trace_length=trace_length,
        seed=seed,
        carbon_intensity=intensity,
    ).run()


def run_cells_sweep(
    trace_length: int = 20_000,
    seed: int = calibration.DEFAULT_SEED,
    carbon: str | float = "world",
) -> ExperimentResult:
    """SRAM vs eDRAM vs gain cell, Pareto over EPI and CO2/GiB-year."""
    intensity = grid_intensity(carbon)
    result = _cells_campaign(trace_length, seed, intensity)
    frontier_cells = {
        str(outcome.point_dict().get("ule_cell"))
        for outcome in result.frontier()
    }
    comparisons = (
        PaperComparison(
            quantity=(
                "the paper's 8T ULE way survives on the carbon-aware "
                "frontier (1 = yes)"
            ),
            paper=1.0,
            measured=float("8T" in frontier_cells),
        ),
    )
    return ExperimentResult(
        experiment_id="sweep-cells",
        title=(
            "Cell-technology sweep: SRAM vs eDRAM vs gain cell, "
            f"carbon-ranked at {intensity:.0f} g CO2/kWh"
        ),
        body=result.render_report(),
        comparisons=comparisons,
        data={
            "campaign": result.to_dict(),
            "carbon_intensity": intensity,
            "frontier_cells": sorted(frontier_cells),
        },
    )


def run_sustain(
    trace_length: int = 20_000,
    seed: int = calibration.DEFAULT_SEED,
    carbon: str | float = "world",
) -> ExperimentResult:
    """Carbon report card: power, refresh share, CO2/GiB-year, ESII."""
    intensity = grid_intensity(carbon)
    result = _cells_campaign(trace_length, seed, intensity)
    profiles = sorted(GRID_PROFILES, key=GRID_PROFILES.get)

    baseline = None
    for outcome in result.outcomes:
        point = outcome.point_dict()
        if (
            point.get("ule_cell") == "10T"
            and point.get("ule_scheme") == "secded"
        ):
            baseline = outcome
            break

    table = Table(
        ["candidate", "EPI ULE (pJ)", "avg power (uW)"]
        + [f"CO2/GiB-yr @{name} (g)" for name in profiles]
        + ["ESII vs 10T"],
        title=(
            "Sustainability ledger — annual operational CO2 per GiB "
            "of L1 at sustained ULE operation"
        ),
    )
    rows = []
    for outcome in result.outcomes:
        metrics = outcome.metrics
        spi = metrics.get("spi_ule", 0.0)
        power = metrics["epi_ule"] / spi if spi > 0.0 else 0.0
        capacity = chip_capacity_bytes(outcome.candidate.chip)
        per_profile = {
            name: carbon_per_gib_year(
                power, capacity, GRID_PROFILES[name]
            )
            for name in profiles
        }
        esii = None
        if baseline is not None and metrics["epi_ule"] > 0.0:
            esii = esii_index(
                baseline.metrics["epi_ule"],
                metrics["epi_ule"],
                intensity,
            ).esii
        table.add_row(
            [
                outcome.candidate.name,
                metrics["epi_ule"] * 1e12,
                power * 1e6,
            ]
            + [per_profile[name] for name in profiles]
            + ["" if esii is None else f"{esii:.3f}"]
        )
        rows.append(
            {
                "name": outcome.candidate.name,
                "point": outcome.point_dict(),
                "epi_ule": metrics["epi_ule"],
                "average_power_w": power,
                "co2_per_gib_year_g": per_profile,
                "esii_vs_10t": esii,
            }
        )

    comparisons = []
    proposed = next(
        (
            row
            for row in rows
            if row["point"].get("ule_cell") == "8T"
            and row["point"].get("ule_scheme") == "secded"
        ),
        None,
    )
    if proposed is not None and proposed["esii_vs_10t"] is not None:
        comparisons.append(
            PaperComparison(
                quantity=(
                    "proposed 8T+SECDED ESII vs the 10T baseline "
                    "(>1 = greener, as the paper's energy win implies)"
                ),
                paper=1.0,
                measured=proposed["esii_vs_10t"],
            )
        )
    return ExperimentResult(
        experiment_id="sustain",
        title="Sustainability ledger: CO2/GiB-year and ESII by cell",
        body=table.render(),
        comparisons=tuple(comparisons),
        data={
            "carbon_intensity": intensity,
            "grid_profiles": dict(GRID_PROFILES),
            "rows": rows,
            "cell_technologies": list(result.cell_technologies),
        },
    )
