"""Hypothesis: ProtectedArray usability vs sampled fault-map populations.

``word_is_usable`` / ``usable`` are the static side of Eq. (1): a word
is usable iff its stuck-bit count fits the scheme's hard-fault budget.
These properties pin that contract against arbitrary
:func:`repro.reliability.fault_maps.generate_fault_map` populations —
budget boundaries included — and the degenerate maps (fault-free and
fully saturated) that the analytic yield model never exercises.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.edc_layer import ProtectedArray
from repro.edc.protection import ProtectionScheme
from repro.reliability.fault_maps import generate_fault_map

SCHEMES = st.sampled_from(list(ProtectionScheme))


def _array_and_map(scheme, words, data_bits, pf, seed):
    array = ProtectedArray(words, data_bits, scheme)
    fault_map = generate_fault_map(
        pf, words, array.stored_bits, np.random.default_rng(seed)
    )
    return (
        ProtectedArray(words, data_bits, scheme, fault_map=fault_map),
        fault_map,
    )


@settings(max_examples=40, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 48),
    data_bits=st.sampled_from((26, 32)),
    pf=st.floats(0.0, 0.3),
    budget=st.integers(0, 4),
    seed=st.integers(0, 10_000),
)
def test_usability_matches_fault_population(
    scheme, words, data_bits, pf, budget, seed
):
    """A word is usable iff its stuck-bit count fits the budget."""
    array, fault_map = _array_and_map(scheme, words, data_bits, pf, seed)
    for index in range(words):
        assert array.word_is_usable(index, budget) == (
            fault_map.faults_in_word(index) <= budget
        )
    assert array.usable(budget) == (
        fault_map.max_faults_per_word() <= budget
    )


@settings(max_examples=25, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 48),
    data_bits=st.sampled_from((26, 32)),
    pf=st.floats(0.0, 0.3),
    seed=st.integers(0, 10_000),
)
def test_budget_boundary_is_tight(scheme, words, data_bits, pf, seed):
    """The worst word's fault count is exactly the smallest workable
    budget: one below fails, the count itself (and anything above)
    passes."""
    array, fault_map = _array_and_map(scheme, words, data_bits, pf, seed)
    worst = fault_map.max_faults_per_word()
    assert array.usable(worst)
    assert array.usable(worst + 1)
    if worst > 0:
        assert not array.usable(worst - 1)


@settings(max_examples=25, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 48),
    data_bits=st.sampled_from((26, 32)),
    budget=st.integers(0, 4),
    seed=st.integers(0, 10_000),
)
def test_zero_fault_map_is_always_usable(
    scheme, words, data_bits, budget, seed
):
    """pf=0 samples the empty population: every budget works, and a
    map-free array reports the same."""
    array, fault_map = _array_and_map(scheme, words, data_bits, 0.0, seed)
    assert fault_map.faulty_bit_count == 0
    assert array.usable(budget)
    bare = ProtectedArray(words, data_bits, scheme)
    assert bare.usable(0)


@settings(max_examples=25, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 32),
    data_bits=st.sampled_from((26, 32)),
    seed=st.integers(0, 10_000),
)
def test_saturated_map_needs_full_width_budget(
    scheme, words, data_bits, seed
):
    """pf=1 sticks every stored bit: only a budget of the full stored
    width admits any word."""
    array, fault_map = _array_and_map(scheme, words, data_bits, 1.0, seed)
    stored_bits = array.stored_bits
    assert fault_map.faulty_bit_count == words * stored_bits
    assert not array.usable(stored_bits - 1)
    assert array.usable(stored_bits)
    for index in range(words):
        assert not array.word_is_usable(index, stored_bits - 1)


@settings(max_examples=20, deadline=None)
@given(
    words=st.integers(1, 32),
    pf=st.floats(0.0, 0.5),
    seed=st.integers(0, 10_000),
)
def test_unmapped_array_ignores_budgets(words, pf, seed):
    """Without a fault map the static check is vacuously true."""
    array = ProtectedArray(words, 32, ProtectionScheme.SECDED)
    assert array.usable(0)
    for index in range(words):
        assert array.word_is_usable(index, 0)
