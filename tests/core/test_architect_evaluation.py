"""Tests for chip construction and the EPI evaluation pipeline."""

import pytest

from repro.core.architect import build_cache_pair, build_chips
from repro.core.evaluation import evaluate_scenario
from repro.core.scenarios import Scenario
from repro.tech.operating import Mode
from repro.workloads.suites import BIGBENCH, SMALLBENCH


class TestArchitect:
    def test_cache_pair_identical_geometry(self, design_a):
        baseline, proposed = build_cache_pair(design_a)
        assert baseline.sets == proposed.sets
        assert baseline.ways == proposed.ways
        assert baseline.line_bytes == proposed.line_bytes

    def test_only_ule_way_differs(self, design_a):
        baseline, proposed = build_cache_pair(design_a)
        assert baseline.group_of_way(0).cell == proposed.group_of_way(0).cell
        base_ule = baseline.group_of_way(7)
        prop_ule = proposed.group_of_way(7)
        assert base_ule.cell.topology.name == "10T"
        assert prop_ule.cell.topology.name == "8T"

    def test_custom_split(self, design_a):
        chips = build_chips(design_a, hp_ways=6, ule_ways=2)
        assert chips.baseline.config.il1.ways == 8
        assert chips.baseline.config.il1.active_ways(Mode.ULE) == 2

    def test_shared_core_arrays_cell(self, chips_a):
        base_cell = chips_a.baseline.config.core_arrays.cell
        prop_cell = chips_a.proposed.config.core_arrays.cell
        assert base_cell == prop_cell
        assert base_cell.topology.name == "10T"


class TestEvaluation:
    @pytest.fixture(scope="class")
    def eval_a_ule(self):
        return evaluate_scenario(Scenario.A, Mode.ULE, trace_length=15_000)

    def test_uses_paper_suites(self, eval_a_ule):
        names = {row.benchmark for row in eval_a_ule.rows}
        assert names == {spec.name for spec in SMALLBENCH}
        hp_eval = evaluate_scenario(
            Scenario.A, Mode.HP, trace_length=8_000,
            benchmarks=BIGBENCH[:2],
        )
        assert len(hp_eval.rows) == 2

    def test_proposal_wins_every_benchmark(self, eval_a_ule):
        for row in eval_a_ule.rows:
            assert row.epi_ratio < 1.0

    def test_exec_time_never_improves(self, eval_a_ule):
        """The proposal adds latency; it can never run faster."""
        for row in eval_a_ule.rows:
            assert row.exec_time_ratio >= 1.0

    def test_functional_behaviour_identical(self, eval_a_ule):
        """Baseline and proposed have identical hit/miss behaviour —
        only energy and latency differ."""
        for row in eval_a_ule.rows:
            assert row.baseline.il1_stats.misses == (
                row.proposed.il1_stats.misses
            )
            assert row.baseline.dl1_stats.hits == (
                row.proposed.dl1_stats.hits
            )

    def test_breakdown_normalization(self, eval_a_ule):
        for row in eval_a_ule.rows:
            baseline = row.baseline_breakdown()
            assert sum(baseline.values()) == pytest.approx(1.0)
            proposed = row.normalized_breakdown()
            assert sum(proposed.values()) == pytest.approx(row.epi_ratio)

    def test_averages(self, eval_a_ule):
        ratios = [row.epi_ratio for row in eval_a_ule.rows]
        assert eval_a_ule.average_epi_ratio == pytest.approx(
            sum(ratios) / len(ratios)
        )
        assert eval_a_ule.average_epi_saving == pytest.approx(
            1 - eval_a_ule.average_epi_ratio
        )

    def test_render(self, eval_a_ule):
        text = eval_a_ule.render()
        assert "average" in text
        assert "adpcm_c" in text
