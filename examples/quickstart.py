#!/usr/bin/env python3
"""Quickstart: design the paper's cache and reproduce a headline number.

Runs the Fig. 2 design methodology for scenario A, prints the sizing
table, then compares baseline and proposed chips on one SmallBench
workload at ULE mode via the batched simulation engine — the 60-second
version of the paper.

Usage::

    python examples/quickstart.py
"""

from repro.core import Scenario, build_chips, design_scenario
from repro.engine import SimulationJob, SimulationSession, TraceSpec
from repro.tech.operating import Mode
from repro.util.units import si


def main() -> None:
    # 1. Run the paper's design methodology (Fig. 2) for scenario A:
    #    size 6T for HP mode, 10T for fault-free ULE operation, and find
    #    the smallest 8T cell whose SECDED-protected yield matches.
    design = design_scenario(Scenario.A)
    print(design.summary())
    print()

    # 2. Build the two chips it compares: the 6T+10T baseline and the
    #    proposed 6T+8T+SECDED cache (identical cores and geometry).
    chips = build_chips(design)
    print("baseline cache :", chips.baseline.config.il1.describe())
    print("proposed cache :", chips.proposed.config.il1.describe())
    print()

    # 3. Run one ULE-mode workload on both chips, submitted as a batch
    #    through the simulation engine (the session deduplicates shared
    #    work and can fan out across processes via jobs=N).
    session = SimulationSession()
    trace = TraceSpec("adpcm_c", length=50_000, seed=2013)
    baseline, proposed = session.run_jobs(
        [
            SimulationJob(chip=chips.baseline.config, trace=trace,
                          mode=Mode.ULE),
            SimulationJob(chip=chips.proposed.config, trace=trace,
                          mode=Mode.ULE),
        ]
    )

    print(
        f"workload: {trace.benchmark} "
        f"({trace.length} instructions at ULE mode)"
    )
    print(f"  baseline EPI : {si(baseline.epi, 'J')}")
    print(f"  proposed EPI : {si(proposed.epi, 'J')}")
    saving = 1.0 - proposed.epi / baseline.epi
    slowdown = proposed.timing.cycles / baseline.timing.cycles - 1.0
    print(f"  energy saving: {100 * saving:.1f} %  (paper: ~42 %)")
    print(f"  exec overhead: {100 * slowdown:.1f} %  (paper: ~3 %)")


if __name__ == "__main__":
    main()
