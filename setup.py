"""Setup shim for legacy editable installs (offline env lacks `wheel`).

All project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
