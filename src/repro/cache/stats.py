"""Counters collected by the functional cache simulator."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Access statistics, global and per way group.

    Invariants (checked by tests): ``reads + writes == accesses``,
    ``hits + misses == accesses``, each per-group counter sums to its
    global counterpart.
    """

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    fills: int = 0
    writebacks: int = 0
    flush_writebacks: int = 0
    #: Misses that could not allocate because every usable way of the
    #: set is disabled by a hard-fault map (``fills + bypasses ==
    #: misses`` always holds; without a fault map ``bypasses`` is 0).
    bypasses: int = 0
    #: Read hits whose word carried upsets the active code corrected
    #: (soft-error injection only; see :mod:`repro.transients`).
    transient_corrected: int = 0
    #: Read hits with a detected-uncorrectable word on a *clean* line:
    #: recovered by refetching from the next level.
    transient_refetches: int = 0
    #: Detected-uncorrectable reads of *dirty* lines — no clean copy
    #: exists, so the error is a DUE (detected uncorrectable error).
    transient_due: int = 0
    #: Reads whose upsets exceeded even the detection budget: corrupt
    #: data silently consumed (SDC).
    transient_silent: int = 0
    group_read_hits: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    group_write_hits: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    group_fills: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    group_writebacks: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    group_transient_corrected: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    group_transient_refetches: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    @property
    def transient_affected(self) -> int:
        """Read hits that observed at least one upset."""
        return (
            self.transient_corrected
            + self.transient_refetches
            + self.transient_due
            + self.transient_silent
        )

    @property
    def accesses(self) -> int:
        """Total probes."""
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        """Total hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    #: The per-way-group counter maps, in declaration order; shared by
    #: :meth:`merge` and :meth:`clone`.
    _GROUP_ATTRS = (
        "group_read_hits",
        "group_write_hits",
        "group_fills",
        "group_writebacks",
        "group_transient_corrected",
        "group_transient_refetches",
    )

    def clone(self) -> "CacheStats":
        """A mutation-isolated copy.

        Counters are ints and the per-group maps are flat ``str -> int``
        dictionaries, so a shallow rebuild *is* a deep copy — at a
        fraction of :func:`copy.deepcopy`'s cost (no recursive
        dispatch, no memo table).  The batching layer hands clones of
        memoized stats to each job so one job's ``merge`` can never
        corrupt another's result.
        """
        twin = CacheStats(
            reads=self.reads,
            writes=self.writes,
            read_hits=self.read_hits,
            write_hits=self.write_hits,
            read_misses=self.read_misses,
            write_misses=self.write_misses,
            fills=self.fills,
            writebacks=self.writebacks,
            flush_writebacks=self.flush_writebacks,
            bypasses=self.bypasses,
            transient_corrected=self.transient_corrected,
            transient_refetches=self.transient_refetches,
            transient_due=self.transient_due,
            transient_silent=self.transient_silent,
        )
        for attr in self._GROUP_ATTRS:
            getattr(twin, attr).update(getattr(self, attr))
        return twin

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        self.reads += other.reads
        self.writes += other.writes
        self.read_hits += other.read_hits
        self.write_hits += other.write_hits
        self.read_misses += other.read_misses
        self.write_misses += other.write_misses
        self.fills += other.fills
        self.writebacks += other.writebacks
        self.flush_writebacks += other.flush_writebacks
        self.bypasses += other.bypasses
        self.transient_corrected += other.transient_corrected
        self.transient_refetches += other.transient_refetches
        self.transient_due += other.transient_due
        self.transient_silent += other.transient_silent
        for attr in self._GROUP_ATTRS:
            mine = getattr(self, attr)
            for key, value in getattr(other, attr).items():
                mine[key] += value

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.accesses} accesses, {self.hits} hits "
            f"({100 * (1 - self.miss_rate):.1f} %), "
            f"{self.fills} fills, {self.writebacks} writebacks"
        )
