"""Documentation gates, enforced by the tier-1 suite.

CI additionally runs the real ``mkdocs build --strict`` and
``interrogate``; these tests are the dependency-free local half, so
docs and docstrings cannot rot even on machines without the doc
toolchain installed.
"""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
TOOLS = REPO / "tools"

sys.path.insert(0, str(TOOLS))


class TestDocsTree:
    def test_mkdocs_config_exists(self):
        assert (REPO / "mkdocs.yml").is_file()

    @pytest.mark.parametrize(
        "page",
        [
            "index.md",
            "installation.md",
            "cli.md",
            "reproducing.md",
            "runtime.md",
            "cells.md",
            "sustainability.md",
            "architecture.md",
            "examples.md",
        ],
    )
    def test_core_pages_exist(self, page):
        assert (REPO / "docs" / page).is_file()

    def test_cli_reference_covers_every_subcommand(self):
        text = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
        for subcommand in (
            "list", "run", "design", "all", "sweep", "pareto",
            "schedule", "population", "transients",
        ):
            assert f"## {subcommand}" in text, (
                f"docs/cli.md lacks a section for '{subcommand}'"
            )

    def test_reproducing_maps_every_paper_artifact(self):
        text = (REPO / "docs" / "reproducing.md").read_text(
            encoding="utf-8"
        )
        for experiment_id in (
            "fig3", "fig4", "tab-sizing", "tab-area", "tab-exectime",
            "tab-reliability", "tab-edc", "tab-wcet", "tab-modeswitch",
        ):
            assert experiment_id in text

    def test_architecture_documents_cache_contract(self):
        text = (REPO / "docs" / "architecture.md").read_text(
            encoding="utf-8"
        )
        assert "ENGINE_CACHE_VERSION" in text
        assert "repro.util.canonical" in text or "util.canonical" in text
        assert "runtime" in text
        assert "explore" in text


class TestNavAndLinks:
    def test_check_docs_passes(self, capsys):
        import check_docs

        assert check_docs.main() == 0


class TestDocstringCoverage:
    def test_public_api_fully_documented(self):
        import docstring_coverage

        cov = docstring_coverage.measure(REPO / "src" / "repro")
        assert cov.percent == 100.0, (
            "undocumented public definitions:\n  "
            + "\n  ".join(cov.missing)
        )

    def test_cli_entrypoint_gate(self):
        """The tool itself enforces --fail-under as a subprocess."""
        result = subprocess.run(
            [
                sys.executable,
                str(TOOLS / "docstring_coverage.py"),
                str(REPO / "src" / "repro"),
                "--fail-under", "100",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
