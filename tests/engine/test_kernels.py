"""Array-kernel equivalence: flat-array LRU == dict LRU, bit for bit.

:mod:`repro.engine.kernels` re-expresses the dict-based multi-way LRU
run kernel over flat numpy state so numba can compile it.  Its contract
is exact equivalence — counters, per-group counters *and* the per-run
record arrays the transient post-pass consumes — across way splits,
fault maps and randomized streams.  These tests drive the *interpreted*
kernel (``kernel=_lru_run_kernel``) so the logic is covered with or
without numba; the optional numba CI job runs the same suite with the
JIT-compiled kernel active.
"""

import numpy as np
import pytest

from repro.cache.stats import CacheStats
from repro.core.architect import build_cache_pair
from repro.engine import kernels
from repro.engine.kernels import (
    MAX_BITMASK_WAYS,
    _lru_run_kernel,
    accumulate_lru_runs_array,
)
from repro.engine.plan import build_stream_plan
from repro.engine.vectorized import (
    _accumulate_lru_runs,
    simulate_trace_vectorized,
)
from repro.tech.operating import Mode
from repro.workloads.mediabench import generate_trace


def _setup(config, mode, disabled_lines=()):
    mask = config.active_way_mask(mode)
    actives = [way for way, active in enumerate(mask) if active]
    group_names = [
        config.group_of_way(way).name for way in range(len(mask))
    ]
    disabled_by_set: dict[int, set[int]] = {}
    for set_index, way in disabled_lines:
        disabled_by_set.setdefault(set_index, set()).add(way)
    return actives, group_names, disabled_by_set


def _fresh_records(runs):
    return (
        np.full(runs, -1, dtype=np.int64),
        np.zeros(runs, dtype=bool),
        np.zeros(runs, dtype=bool),
    )


def _both_kernels(
    config, mode, addresses, is_write=None, disabled_lines=()
):
    """Run the same plan through both kernels, records included."""
    actives, group_names, disabled_by_set = _setup(
        config, mode, disabled_lines
    )
    plan = build_stream_plan(config, addresses, is_write)
    runs = len(plan.starts)

    dict_stats = CacheStats()
    dict_records = _fresh_records(runs)
    _accumulate_lru_runs(
        dict_stats,
        actives=actives,
        group_names=group_names,
        run_tag=plan.run_tag,
        run_len=plan.run_len,
        run_writes=plan.run_writes,
        run_head_write=plan.run_head_write,
        run_new_set=plan.run_new_set,
        run_set=plan.run_set if disabled_by_set else None,
        disabled_by_set=disabled_by_set or None,
        records=dict_records,
    )

    array_stats = CacheStats()
    array_records = _fresh_records(runs)
    accumulate_lru_runs_array(
        array_stats,
        actives=actives,
        group_names=group_names,
        run_tag=plan.run_tag,
        run_len=plan.run_len,
        run_writes=plan.run_writes,
        run_head_write=plan.run_head_write,
        run_new_set=plan.run_new_set,
        run_set=plan.run_set,
        sets=config.sets,
        disabled_by_set=disabled_by_set or None,
        records=array_records,
        kernel=_lru_run_kernel,
    )
    return (dict_stats, dict_records), (array_stats, array_records)


def _assert_kernels_agree(dict_out, array_out):
    (dict_stats, dict_records), (array_stats, array_records) = (
        dict_out,
        array_out,
    )
    assert dict_stats == array_stats
    for attr in (
        "group_read_hits",
        "group_write_hits",
        "group_fills",
        "group_writebacks",
    ):
        assert dict(getattr(dict_stats, attr)) == dict(
            getattr(array_stats, attr)
        )
    for left, right in zip(dict_records, array_records):
        np.testing.assert_array_equal(left, right)


class TestKernelEquivalence:
    @pytest.mark.parametrize("mode", [Mode.HP, Mode.ULE])
    @pytest.mark.parametrize("which", ["baseline", "proposed"])
    def test_benchmark_streams(self, design_a, mode, which):
        """Real fetch + data streams, both chips, both modes (ULE also
        covers the single-active-way degenerate case)."""
        baseline, proposed = build_cache_pair(design_a)
        config = baseline if which == "baseline" else proposed
        trace = generate_trace("gsm_c", length=15_000, seed=7)

        dict_out, array_out = _both_kernels(config, mode, trace.pc)
        _assert_kernels_agree(dict_out, array_out)

        addresses, is_write = trace.memory_stream()
        dict_out, array_out = _both_kernels(
            config, mode, addresses, is_write
        )
        _assert_kernels_agree(dict_out, array_out)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_conflict_heavy_streams(self, design_a, seed):
        """Small address spaces force evictions and writebacks — the
        branches runny benchmark streams rarely stress."""
        _, proposed = build_cache_pair(design_a)
        rng = np.random.default_rng(seed)
        n = 6_000
        addresses = (
            rng.integers(0, 2_048, size=n).astype(np.uint64) * 32
        )
        is_write = rng.random(n) < 0.3
        dict_out, array_out = _both_kernels(
            proposed, Mode.HP, addresses, is_write
        )
        _assert_kernels_agree(dict_out, array_out)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_fault_maps_including_fully_disabled_sets(
        self, design_a, seed
    ):
        """Partial disables reduce per-set associativity; a set whose
        every active way is disabled must bypass — in both kernels."""
        _, proposed = build_cache_pair(design_a)
        actives, _, _ = _setup(proposed, Mode.HP)
        rng = np.random.default_rng(seed)
        n = 6_000
        addresses = (
            rng.integers(0, 2_048, size=n).astype(np.uint64) * 32
        )
        is_write = rng.random(n) < 0.3
        disabled = [
            (int(rng.integers(0, proposed.sets)), int(way))
            for way in rng.choice(actives, size=3, replace=False)
        ]
        # Set 0: every active way dead — the graceful-bypass path.
        disabled += [(0, way) for way in actives]
        dict_out, array_out = _both_kernels(
            proposed,
            Mode.HP,
            addresses,
            is_write,
            disabled_lines=tuple(set(disabled)),
        )
        _assert_kernels_agree(dict_out, array_out)
        assert array_out[0].bypasses > 0


class TestDispatch:
    def test_compiled_flag_matches_interpreted(self, design_a):
        """``compiled=True`` must be a pure performance knob: without
        numba it falls back to the dict kernel; with numba (the
        optional CI job) it runs the JIT kernel — identical either
        way."""
        _, proposed = build_cache_pair(design_a)
        trace = generate_trace("epic_c", length=12_000, seed=11)
        addresses, is_write = trace.memory_stream()
        for mode in (Mode.HP, Mode.ULE):
            plain = simulate_trace_vectorized(
                proposed, mode, addresses, is_write
            )
            compiled = simulate_trace_vectorized(
                proposed, mode, addresses, is_write, compiled=True
            )
            assert plain == compiled

    def test_kernel_alias_follows_numba_availability(self):
        if kernels.HAVE_NUMBA:
            assert kernels.lru_run_kernel is not kernels._lru_run_kernel
        else:
            assert kernels.lru_run_kernel is kernels._lru_run_kernel

    def test_rejects_more_than_64_ways(self):
        """The per-set disabled bitmask is a uint64: wider masks must
        be refused loudly, not silently mis-modeled."""
        empty = np.zeros(0, dtype=np.uint64)
        with pytest.raises(ValueError, match="at most 64"):
            accumulate_lru_runs_array(
                CacheStats(),
                actives=list(range(MAX_BITMASK_WAYS + 1)),
                group_names=["g"] * (MAX_BITMASK_WAYS + 1),
                run_tag=empty,
                run_len=empty,
                run_writes=empty,
                run_head_write=empty,
                run_new_set=empty,
                run_set=empty,
                sets=4,
            )
