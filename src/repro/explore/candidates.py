"""From sweep points to sized, executable chip candidates.

A sweep point assigns the axes of :func:`default_space`; this module
runs the generalized Fig. 2 methodology for the point's ULE way (sizing
the chosen bitcell under the chosen EDC scheme at the chosen supply) and
assembles a full :class:`~repro.cpu.chip.ChipConfig` through the public
candidate builders of :mod:`repro.core.architect`.

Candidates are *single* chips — the exploration campaign compares them
against each other, not against a paired baseline — and are identified
by the content digest of their chip configuration, so structurally
identical points collapse before any simulation is submitted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Mapping

from repro.core import calibration
from repro.core.architect import (
    build_chip,
    hybrid_way_groups,
    make_cache_config,
)
from repro.core.methodology import (
    WayDesign,
    default_ule_geometry,
    design_way_for_pf,
    design_way_for_yield,
)
from repro.core.scenarios import ProtectionPlan
from repro.cpu.chip import ChipConfig
from repro.edc.protection import ProtectionScheme
from repro.explore.space import Constraint, DesignSpace, Point
from repro.cells import (
    CELL_6T,
    CELL_10T,
    requires_hard_fault_coding,
    technology_by_name,
)
from repro.tech.operating import HP_OPERATING_POINT, Mode, OperatingPoint
from repro.util.canonical import canonical_digest

#: ULE frequency is held at the paper's 5 MHz across NST supplies.
ULE_FREQUENCY = 5e6


class CandidateError(ValueError):
    """A sweep point that cannot be realized as hardware."""


@dataclass(frozen=True)
class Candidate:
    """One buildable sweep point.

    Attributes:
        point: the axis assignment that produced the candidate.
        chip: the executable chip configuration.
        ule_design: the sized ULE way (cell, Pf, yield).
        ule_point: the candidate's ULE operating point.
    """

    point: tuple[tuple[str, object], ...]
    chip: ChipConfig
    ule_design: WayDesign
    ule_point: OperatingPoint

    @property
    def name(self) -> str:
        """The candidate's report/campaign row label."""
        return self.chip.name

    @property
    def digest(self) -> str:
        """Content digest of the candidate's *hardware*.

        Labels are stripped before hashing: two sweep points whose
        names differ but whose configurations quantize to the same
        sized hardware digest identically.  The operating point is NOT
        part of this digest — hardware identity and evaluation identity
        are separate (see ``ExplorationCampaign.expand``).
        """
        blank_cache = replace(self.chip.il1, name="")
        blank = replace(
            self.chip,
            name="",
            il1=blank_cache,
            dl1=(
                blank_cache
                if self.chip.dl1 == self.chip.il1
                else replace(self.chip.dl1, name="")
            ),
        )
        return canonical_digest(blank)

    def point_dict(self) -> Point:
        """The axis assignment as a dict."""
        return dict(self.point)


def default_space() -> DesignSpace:
    """The stock exploration space around the paper's design point.

    576 grid combinations before constraints; the paper's own proposed
    designs (scenarios A and B) are interior points of the space.
    """
    return DesignSpace.from_dict(
        {
            "size_kb": (4, 8, 16),
            "line_bytes": (16, 32),
            "ways": (4, 8),
            "ule_ways": (1, 2),
            "ule_cell": ("8T", "10T"),
            "ule_scheme": ("parity", "secded", "dected"),
            "hp_scheme": ("none", "secded"),
            "vdd_ule": (0.35, 0.40),
            "replacement": ("lru",),
            "suite": ("paper",),
        },
        constraints=default_constraints(),
    )


def hardware_invalidity(point: Mapping[str, object]) -> str | None:
    """Why a point cannot be hardware, or None if it can.

    The single source of the cheap validity rules: the default space's
    constraints and :func:`build_candidate` both consult it, so the
    sampler and the builder can never disagree about feasibility.
    """
    size_bytes = int(point.get("size_kb", 8)) * 1024
    line_bytes = int(point.get("line_bytes", 32))
    ways = int(point.get("ways", 8))
    ule_ways = int(point.get("ule_ways", 1))
    if ule_ways >= ways:
        return "ule_ways must leave at least one HP way"
    lines = size_bytes // line_bytes
    if lines < ways or lines % ways:
        return (
            f"{size_bytes // 1024} KB / {line_bytes} B lines do not "
            f"fill {ways} ways evenly"
        )
    cell = technology_by_name(str(point.get("ule_cell", "8T")))
    vdd_ule = float(point.get("vdd_ule", 0.35))
    if vdd_ule < cell.vmin_functional:
        return (
            f"{cell.name} is not functional at {vdd_ule * 1e3:.0f} mV"
        )
    return None


def default_constraints() -> tuple[Constraint, ...]:
    """Hardware-validity predicates over fully-assigned points."""

    def hardware_valid(point: Point) -> bool:
        return hardware_invalidity(point) is None

    def coded_if_weak(point: Point) -> bool:
        # Weak-at-NST technologies (8T, eDRAM, gain cell) lean on EDC
        # to absorb hard faults; without a correcting code their yield
        # target is unreachable (the sizing loop would diverge), so
        # reject the combination up front.
        scheme = _scheme(point.get("ule_scheme", "secded"))
        if requires_hard_fault_coding(str(point.get("ule_cell", "8T"))):
            return scheme.hard_fault_budget > 0
        return True

    return (hardware_valid, coded_if_weak)


def _scheme(value: object) -> ProtectionScheme:
    if isinstance(value, ProtectionScheme):
        return value
    return ProtectionScheme(str(value).lower())


@lru_cache(maxsize=None)
def _hp_cell(pf_target: float):
    """The 6T HP-way cell, sized once per Pf target (shared by all)."""
    geometry = default_ule_geometry()
    return design_way_for_pf(
        CELL_6T,
        ProtectionScheme.NONE,
        geometry,
        HP_OPERATING_POINT.vdd,
        pf_target=pf_target,
    ).cell


@lru_cache(maxsize=None)
def _reference_yield(geometry, vdd: float) -> float:
    """The paper-baseline yield floor: a pf-target-sized 10T way."""
    return design_way_for_pf(
        CELL_10T,
        ProtectionScheme.NONE,
        geometry,
        vdd,
        hard_budget=0,
    ).yield_value


@lru_cache(maxsize=None)
def _design_ule_way(
    cell_name: str, scheme: ProtectionScheme, geometry, vdd: float
) -> WayDesign:
    """Size one candidate ULE way (memoized across candidates).

    Correcting schemes get the proposed-side treatment — grow from
    minimum size until the coded yield reaches the 10T reference floor;
    detection-only schemes get baseline-style pf-target sizing.
    """
    topology = technology_by_name(cell_name)
    if scheme.hard_fault_budget > 0:
        return design_way_for_yield(
            topology,
            scheme,
            geometry,
            vdd,
            yield_floor=_reference_yield(geometry, vdd),
        )
    return design_way_for_pf(topology, scheme, geometry, vdd)


def build_candidate(point: Mapping[str, object]) -> Candidate:
    """Realize one sweep point as a sized chip configuration.

    Raises :class:`CandidateError` when the point is not buildable
    (inconsistent geometry, an unreachable yield target, ...).
    """
    values = dict(point)
    size_kb = int(values.pop("size_kb", 8))
    line_bytes = int(values.pop("line_bytes", 32))
    ways = int(values.pop("ways", 8))
    ule_ways = int(values.pop("ule_ways", 1))
    ule_cell = str(values.pop("ule_cell", "8T")).upper()
    ule_scheme = _scheme(values.pop("ule_scheme", "secded"))
    hp_scheme = _scheme(values.pop("hp_scheme", "none"))
    vdd_ule = float(values.pop("vdd_ule", 0.35))
    replacement = str(values.pop("replacement", "lru")).lower()
    # The suite is campaign-level (it shapes the runs, not the
    # hardware) but must still distinguish the candidate's *name*:
    # reports and saved campaigns key rows by name.
    suite = str(values.pop("suite", "paper")).lower()
    if suite != "paper":
        from repro.workloads.suites import known_suite_names, suite_by_name

        try:
            suite_by_name(suite, Mode.ULE)
        except ValueError:
            raise CandidateError(
                f"unknown suite {suite!r}; known: {known_suite_names()}"
            ) from None
    if values:
        raise CandidateError(f"unknown axes: {sorted(values)}")

    size_bytes = size_kb * 1024
    invalid = hardware_invalidity(point)
    if invalid is not None:
        raise CandidateError(invalid)

    geometry = default_ule_geometry(
        cache_bytes=size_bytes,
        line_bytes=line_bytes,
        ways=ways,
        ule_ways=ule_ways,
    )
    try:
        ule_design = _design_ule_way(
            ule_cell, ule_scheme, geometry, vdd_ule
        )
    except RuntimeError as error:
        raise CandidateError(str(error)) from error

    edc_inline = ule_scheme.hard_fault_budget > 0
    groups = hybrid_way_groups(
        hp_cell=_hp_cell(calibration.PF_TARGET),
        ule_cell=ule_design.cell,
        hp_plan=ProtectionPlan(hp=hp_scheme, ule=hp_scheme),
        ule_plan=ProtectionPlan(hp=hp_scheme, ule=ule_scheme),
        ule_edc_inline=edc_inline,
        hp_ways=ways - ule_ways,
        ule_ways=ule_ways,
    )
    name = (
        f"x{size_kb}k-l{line_bytes}-{ways - ule_ways}+{ule_ways}-"
        f"{ule_cell.lower()}-{ule_scheme.value}-hp{hp_scheme.value}-"
        f"{vdd_ule * 1e3:.0f}mv-{replacement}"
    )
    if suite != "paper":
        name += f"-{suite}"
    cache = make_cache_config(
        name, groups, size_bytes, line_bytes, replacement=replacement
    )
    chip = build_chip(name, cache, core_cell=_ule_core_cell())
    return Candidate(
        point=tuple(sorted(dict(point).items(), key=lambda kv: kv[0])),
        chip=chip.config,
        ule_design=ule_design,
        ule_point=OperatingPoint(
            mode=Mode.ULE, vdd=vdd_ule, frequency=ULE_FREQUENCY
        ),
    )


@lru_cache(maxsize=None)
def _ule_core_cell():
    """The shared non-L1 array cell: NST-sized 10T, as in the paper."""
    geometry = default_ule_geometry()
    return design_way_for_pf(
        CELL_10T,
        ProtectionScheme.NONE,
        geometry,
        0.35,
    ).cell
