"""Finite-field arithmetic GF(2^m) via exp/log tables.

Elements are ints in ``[0, 2^m)`` interpreted as polynomials over GF(2)
modulo a primitive polynomial.  Supports the BCH construction and decoding
in :mod:`repro.edc.bch`.
"""

from __future__ import annotations

#: Default primitive polynomials (x^m + ... + 1) per field degree.
PRIMITIVE_POLYS = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
}


class GF2m:
    """The field GF(2^m) with generator alpha = x."""

    def __init__(self, m: int, primitive_poly: int | None = None):
        if primitive_poly is None:
            if m not in PRIMITIVE_POLYS:
                raise ValueError(f"no default primitive polynomial for m={m}")
            primitive_poly = PRIMITIVE_POLYS[m]
        if primitive_poly >> m != 1:
            raise ValueError("primitive polynomial must have degree m")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self.primitive_poly = primitive_poly

        self._exp = [0] * (2 * self.order)
        self._log = [0] * self.size
        value = 1
        for exponent in range(self.order):
            self._exp[exponent] = value
            self._log[value] = exponent
            value <<= 1
            if value & self.size:
                value ^= primitive_poly
        if value != 1:
            raise ValueError("polynomial is not primitive")
        # Duplicate the exp table so mul can skip a modulo.
        for exponent in range(self.order, 2 * self.order):
            self._exp[exponent] = self._exp[exponent - self.order]

    # ------------------------------------------------------------- basics
    def alpha_pow(self, exponent: int) -> int:
        """alpha^exponent (exponent may be any integer)."""
        return self._exp[exponent % self.order]

    def log(self, element: int) -> int:
        """Discrete log base alpha; element must be non-zero."""
        if element == 0:
            raise ZeroDivisionError("log of zero")
        return self._log[element]

    def mul(self, a: int, b: int) -> int:
        """Field product."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field quotient a / b."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[(self._log[a] - self._log[b]) % self.order]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        return self.div(1, a)

    def pow(self, a: int, exponent: int) -> int:
        """a^exponent (a != 0 for negative exponents)."""
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 to a non-positive power")
            return 0
        return self._exp[(self._log[a] * exponent) % self.order]

    # --------------------------------------------- polynomials over GF(2^m)
    def poly_eval(self, coeffs: list[int], x: int) -> int:
        """Evaluate a polynomial (coeffs[i] is the x^i coefficient)."""
        result = 0
        for coeff in reversed(coeffs):
            result = self.mul(result, x) ^ coeff
        return result

    def poly_mul(self, a: list[int], b: list[int]) -> list[int]:
        """Product of two coefficient lists."""
        result = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    result[i + j] ^= self.mul(ca, cb)
        return result

    def minimal_polynomial(self, exponent: int) -> int:
        """Minimal polynomial over GF(2) of alpha^exponent, as a bitmask.

        Bit i of the result is the x^i coefficient; all coefficients are
        guaranteed to be 0/1 by conjugacy.
        """
        # Collect the conjugacy class {e, 2e, 4e, ...} mod (2^m - 1).
        conjugates = []
        current = exponent % self.order
        while current not in conjugates:
            conjugates.append(current)
            current = (current * 2) % self.order
        poly = [1]
        for conj in conjugates:
            poly = self.poly_mul(poly, [self.alpha_pow(conj), 1])
        mask = 0
        for index, coeff in enumerate(poly):
            if coeff not in (0, 1):
                raise AssertionError(
                    "minimal polynomial has non-binary coefficient"
                )
            if coeff:
                mask |= 1 << index
        return mask
