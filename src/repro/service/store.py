"""Digest-sharded, content-addressed result store for concurrent writers.

The fleet-scale service promotes the engine's flat on-disk result cache
into a *shared* store that many processes — service workers, library
sessions, CI jobs — read and write at once without any file locks::

    <root>/<key[:2]>/<key>.pkl

Sharding by the first digest byte keeps directory fan-out bounded at
256 entries per level however many millions of results accumulate, so
``readdir`` on any one shard stays cheap on every filesystem.

Concurrency rests on the same two properties as the columnar trace
store (:mod:`repro.workloads.store`):

* **Content addressing.**  A key is a SHA-256 over everything that
  determines the result (:func:`repro.engine.jobs.job_key`), so two
  writers racing on one key are by construction writing identical
  bytes — last-rename-wins is correct, not merely tolerated.
* **Atomic-rename publish.**  Values are serialized to a scratch file
  in the destination shard and published with one :func:`os.replace`;
  a reader can observe the old entry or the new one, never a torn
  half-write.  A writer that crashes mid-scratch leaves only a
  ``*.tmp`` file that :meth:`ShardedResultStore.compact` sweeps up.

A corrupt or truncated entry (filesystem hiccup, killed writer on a
filesystem without atomic rename) is treated as a warned **miss**: the
caller simply recomputes and overwrites it.  The store therefore never
returns partial values — an entry either unpickles completely or does
not exist, which is the invariant the service's exactly-once tests
lean on.

The store is value-agnostic (it pickles whatever it is given); the
engine layers its code-fingerprint generation directories on top (see
:class:`repro.engine.session.DiskResultCache`).
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

#: File suffix of published entries.
ENTRY_SUFFIX = ".pkl"

#: File suffix of in-flight scratch files (never read, swept by compact).
SCRATCH_SUFFIX = ".tmp"


@dataclass(frozen=True)
class StoreSummary:
    """A point-in-time inventory of a store directory.

    Attributes:
        entries: published (readable) entries.
        payload_bytes: total size of the published entries.
        shards: shard directories in use.
        scratch_files: leftover in-flight scratch files (crashed or
            racing writers); :meth:`ShardedResultStore.compact`
            removes the stale ones.
    """

    entries: int
    payload_bytes: int
    shards: int
    scratch_files: int


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`ShardedResultStore.compact` pass cleaned up.

    Attributes:
        scratch_removed: abandoned ``*.tmp`` files deleted.
        corrupt_removed: published entries that failed to unpickle and
            were deleted (each one also warns).
        empty_shards_removed: shard directories left empty afterwards.
    """

    scratch_removed: int
    corrupt_removed: int
    empty_shards_removed: int


class ShardedResultStore:
    """Lock-free, digest-sharded pickle store shared by many writers.

    Parameters
    ----------
    root : path-like
        Store root; created on first use.  Safe to share between any
        number of concurrent processes — writers publish with atomic
        renames and never block each other.

    Attributes
    ----------
    stats : dict
        Operation counters for this handle — ``gets``, ``hits``,
        ``misses``, ``corrupt`` (entries discarded as warned misses),
        ``puts`` (entries published) — exposed so dedup accounting in
        the service and the concurrency tests can assert where results
        came from.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.stats = {
            "gets": 0,
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "puts": 0,
        }

    # ------------------------------------------------------------ layout
    def path_for(self, key: str) -> Path:
        """The published path of ``key`` (whether or not it exists)."""
        return self.root / key[:2] / f"{key}{ENTRY_SUFFIX}"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """Iterate over the keys of every published entry."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob(f"*{ENTRY_SUFFIX}")):
                yield entry.name[: -len(ENTRY_SUFFIX)]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # --------------------------------------------------------- get / put
    def get(self, key: str) -> Any | None:
        """The stored value for ``key``, or None.

        A corrupt or truncated entry is a *warned* miss — the caller
        recomputes and overwrites it — so damage from a crashed writer
        or filesystem hiccup heals itself while staying visible.
        """
        self.stats["gets"] += 1
        path = self.path_for(key)
        try:
            payload = path.read_bytes()
        except OSError:
            self.stats["misses"] += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception as error:
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            warnings.warn(
                f"discarding corrupt result-cache entry {path.name} "
                f"({type(error).__name__}: {error}); treated as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.stats["hits"] += 1
        return value

    def get_bytes(self, key: str) -> bytes | None:
        """The raw pickle payload of ``key``, or None.

        The service API ships results over the wire as the *stored*
        bytes, so what a client unpickles is byte-identical to what a
        library-mode session would have cached — the byte-identity
        contract is checked against this exact payload.  Entries that
        fail to unpickle are discarded as in :meth:`get`.
        """
        payload_path = self.path_for(key)
        try:
            payload = payload_path.read_bytes()
        except OSError:
            return None
        try:
            pickle.loads(payload)
        except Exception:
            # Route through get() for the counting + warning behaviour.
            self.get(key)
            return None
        return payload

    def put(self, key: str, value: Any) -> bool:
        """Publish ``value`` under ``key`` with one atomic rename.

        Concurrent writers need no coordination: keys are content
        hashes, so racers serialize identical bytes and whichever
        rename lands last changes nothing.  Returns True when this
        call published the entry, False when it was already present
        (the put still refreshed it — idempotent either way).
        """
        path = self.path_for(key)
        existed = path.exists()
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(
            f"{path.name}.{os.getpid()}-{id(object()):x}{SCRATCH_SUFFIX}"
        )
        scratch.write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        os.replace(scratch, path)
        self.stats["puts"] += 1
        return not existed

    # ------------------------------------------------- stats / compaction
    def summary(self) -> StoreSummary:
        """Inventory the store: entries, bytes, shards, scratch files."""
        entries = payload_bytes = shards = scratch = 0
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if not shard.is_dir():
                    continue
                shards += 1
                for item in shard.iterdir():
                    if item.name.endswith(SCRATCH_SUFFIX):
                        scratch += 1
                    elif item.name.endswith(ENTRY_SUFFIX):
                        entries += 1
                        payload_bytes += item.stat().st_size
        return StoreSummary(
            entries=entries,
            payload_bytes=payload_bytes,
            shards=shards,
            scratch_files=scratch,
        )

    def compact(self, *, verify: bool = False) -> CompactionReport:
        """Sweep abandoned scratch files (and, optionally, bad entries).

        Removes every leftover ``*.tmp`` scratch file — debris from
        writers that died between serialize and publish — and prunes
        shard directories left empty.  With ``verify=True`` every
        published entry is additionally test-unpickled and corrupt
        ones are deleted (each deletion warns), so a damaged store can
        be healed in one pass instead of lazily on access.
        """
        scratch_removed = corrupt_removed = empty_removed = 0
        if not self.root.is_dir():
            return CompactionReport(0, 0, 0)
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for item in sorted(shard.iterdir()):
                if item.name.endswith(SCRATCH_SUFFIX):
                    try:
                        item.unlink()
                        scratch_removed += 1
                    except OSError:  # pragma: no cover - racing sweeper
                        pass
                elif verify and item.name.endswith(ENTRY_SUFFIX):
                    try:
                        pickle.loads(item.read_bytes())
                    except Exception as error:
                        warnings.warn(
                            f"compact: removing corrupt entry "
                            f"{item.name} ({type(error).__name__})",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        item.unlink(missing_ok=True)
                        corrupt_removed += 1
            try:
                shard.rmdir()
                empty_removed += 1
            except OSError:
                pass  # non-empty: the normal case
        return CompactionReport(
            scratch_removed=scratch_removed,
            corrupt_removed=corrupt_removed,
            empty_shards_removed=empty_removed,
        )
