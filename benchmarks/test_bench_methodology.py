"""Bench ``tab-sizing``: the Fig. 2 design-methodology intermediates.

Anchors: Pf = 1.22e-6 for the 99 %-yield example; 7/13 check bits; the
10T >> 8T sizing gap that carries the whole paper.
"""

from conftest import record_report, run_once

from repro.experiments.methodology_table import run_methodology


def test_methodology_sizing(benchmark):
    result = run_once(benchmark, run_methodology)
    record_report("tab-sizing", result.render())

    for scenario in ("A", "B"):
        entry = result.data[scenario]
        assert abs(entry["pf_target"] - 1.22e-6) / 1.22e-6 < 0.005
        # Sizing ordering: s6 mild < s8 moderate < s10 heavy.
        assert 1.0 <= entry["s6"] < 1.5
        assert entry["s6"] < entry["s8"] < entry["s10"]
        assert entry["s10"] > 3.0
        # The methodology's defining constraint.
        assert entry["yield_proposed"] >= entry["yield_baseline"]
        assert entry["yield_baseline"] > 0.97
