"""Per-die disabled-line fault maps — the unit the engine batches.

A manufactured die realizes one draw from the parametric-variation
models: some bitcells are hard-faulty, and a cache line whose words hold
more hard faults than their EDC code can absorb is *disabled* (its
valid/way-disable fuse is blown at test time, the standard fault-aware
low-voltage cache move).  The functional simulators never see individual
stuck bits — correctable faults are transparent by construction, and
uncorrectable ones remove the whole line — so the die-level description
the simulation needs is exactly the set of disabled ``(set, way)`` lines
per physical cache array per operating mode.

:class:`DieFaultMap` captures that and nothing else.  Deliberately, it
carries **no die index and no seed**: the engine's job keys hash the
map's content (see :func:`repro.engine.jobs.job_key`), so the many dies
of a population that drew *zero* uncorrectable faults — the common case
at the paper's yield targets — collapse into a single simulation.

This module is dependency-light (``tech.operating`` only) so that the
engine and the chip model can import it without layering cycles; the
actual population sampling lives in :mod:`repro.faults.sampling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.operating import Mode
from repro.util.canonical import canonical_digest

#: The physical cache arrays of a chip a map may address.
CACHE_LABELS = ("il1", "dl1")


@dataclass(frozen=True)
class CacheFaultMap:
    """Disabled lines of one physical cache array in one mode.

    Attributes:
        cache: which array ("il1" or "dl1") — IL1 and DL1 are distinct
            silicon even when they share a configuration.
        mode: the operating mode the disables apply to.  Hard faults
            are voltage-dependent: a cell that fails at 350 mV usually
            works at 1 V, so each mode carries its own set.
        disabled: sorted ``(set, way)`` pairs of unusable lines.
    """

    cache: str
    mode: Mode
    disabled: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.cache not in CACHE_LABELS:
            raise ValueError(
                f"unknown cache label {self.cache!r}; "
                f"known: {list(CACHE_LABELS)}"
            )
        ordered = tuple(
            (int(s), int(w)) for s, w in sorted(set(self.disabled))
        )
        object.__setattr__(self, "disabled", ordered)


@dataclass(frozen=True)
class DieFaultMap:
    """One die's disabled lines across its caches and modes.

    The map is pure *content*: two dies whose draws produce the same
    disabled lines compare (and hash, and job-key) identically, which
    is what lets the engine deduplicate and disk-cache population runs.

    Attributes:
        entries: the per-(cache, mode) disabled-line sets.  Entries
            with no disabled lines may be omitted entirely — an absent
            entry and an empty one mean the same thing.
    """

    entries: tuple[CacheFaultMap, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen = set()
        for entry in self.entries:
            key = (entry.cache, entry.mode)
            if key in seen:
                raise ValueError(
                    f"duplicate fault-map entry for {key}"
                )
            seen.add(key)
        ordered = tuple(
            sorted(
                self.entries,
                key=lambda e: (e.cache, e.mode.value),
            )
        )
        object.__setattr__(self, "entries", ordered)

    def disabled_for(
        self, cache: str, mode: Mode
    ) -> tuple[tuple[int, int], ...]:
        """The disabled ``(set, way)`` lines of one array in one mode."""
        for entry in self.entries:
            if entry.cache == cache and entry.mode is mode:
                return entry.disabled
        return ()

    @property
    def disabled_line_count(self) -> int:
        """Total disabled lines over all entries."""
        return sum(len(entry.disabled) for entry in self.entries)

    @property
    def is_fault_free(self) -> bool:
        """Whether the die has no disabled line anywhere.

        A fault-free map is semantically identical to passing no map at
        all — ``tests/faults`` pins that the simulated results agree
        byte-for-byte.
        """
        return self.disabled_line_count == 0

    def normalized(self) -> "DieFaultMap":
        """An equal map with empty entries dropped.

        Population sampling emits normalized maps so that every
        fault-free die — whatever (cache, mode) combinations it was
        sampled over — shares one canonical content (and therefore one
        engine job key) with the plain ``DieFaultMap()``.
        """
        return DieFaultMap(
            entries=tuple(e for e in self.entries if e.disabled)
        )

    def content_digest(self) -> str:
        """SHA-256 over the canonical content (normalized first)."""
        return canonical_digest(self.normalized())


#: The canonical fault-free die — what most of a population draws.
FAULT_FREE_DIE = DieFaultMap()
