"""repro.engine — batched simulation engine and experiment orchestration.

The engine layer sits between the behavioural cache model and the
evaluation pipeline (see DESIGN.md section 5):

* :mod:`repro.engine.backends` — one entry point,
  :func:`simulate_cache`, with interchangeable bit-identical backends:
  the behavioural reference model and the batched numpy engine.
* :mod:`repro.engine.vectorized` — the fast path: whole-trace decode,
  per-set stream extraction and run-collapsed LRU kernels.
* :mod:`repro.engine.plan` — :class:`StreamPlan`: the trace-dependent
  half of the fast path, hoisted so batches reuse it across jobs.
* :mod:`repro.engine.kernels` — the flat-array LRU kernel behind
  ``backend="numba"`` (JIT-compiled when numba is importable).
* :mod:`repro.engine.batch` — trace-grouped execution: shared plans,
  memoized functional simulations, store-backed worker dispatch.
* :mod:`repro.engine.jobs` — picklable job descriptions and the
  per-process execution worker.
* :mod:`repro.engine.session` — :class:`SimulationSession`: batch
  submission with deduplication, multi-process dispatch and
  content-hash-keyed on-disk memoization.

Exports are lazy (PEP 562) so that low layers — ``repro.cpu.chip``
imports :func:`simulate_cache` — can load without dragging in the
orchestration stack.
"""

from __future__ import annotations

__all__ = [
    "BACKENDS",
    "ProgressEvent",
    "SimulationJob",
    "SimulationSession",
    "StoredTraceRef",
    "StreamPlan",
    "TraceSpec",
    "TraceStore",
    "build_stream_plan",
    "current_session",
    "execute_group",
    "job_key",
    "reset_default_session",
    "simulate_cache",
    "use_session",
]

_LAZY_EXPORTS = {
    "BACKENDS": ("repro.engine.backends", "BACKENDS"),
    "simulate_cache": ("repro.engine.backends", "simulate_cache"),
    "SimulationJob": ("repro.engine.jobs", "SimulationJob"),
    "TraceSpec": ("repro.engine.jobs", "TraceSpec"),
    "job_key": ("repro.engine.jobs", "job_key"),
    "StreamPlan": ("repro.engine.plan", "StreamPlan"),
    "build_stream_plan": ("repro.engine.plan", "build_stream_plan"),
    "execute_group": ("repro.engine.batch", "execute_group"),
    "StoredTraceRef": ("repro.workloads.store", "StoredTraceRef"),
    "TraceStore": ("repro.workloads.store", "TraceStore"),
    "ProgressEvent": ("repro.engine.session", "ProgressEvent"),
    "SimulationSession": ("repro.engine.session", "SimulationSession"),
    "current_session": ("repro.engine.session", "current_session"),
    "reset_default_session": (
        "repro.engine.session", "reset_default_session"
    ),
    "use_session": ("repro.engine.session", "use_session"),
}


def __getattr__(name: str):
    """Lazy exports (PEP 562) to avoid import cycles with low layers."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")
