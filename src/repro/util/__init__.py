"""Shared low-level helpers: units, bit vectors, seeded RNG streams, tables."""

from repro.util.units import (
    FEMTO,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    from_si,
    si,
)
from repro.util.bitvec import (
    bits_to_int,
    int_to_bits,
    pack_words,
    parity,
    popcount,
    random_word,
)
from repro.util.rng import RngStreams, derive_seed
from repro.util.tables import Table

__all__ = [
    "FEMTO",
    "PICO",
    "NANO",
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "si",
    "from_si",
    "bits_to_int",
    "int_to_bits",
    "pack_words",
    "parity",
    "popcount",
    "random_word",
    "RngStreams",
    "derive_seed",
    "Table",
]
