"""Runtime mode scheduling: simulated HP/ULE operation over long traces.

The paper's headline claim is *hybrid* voltage operation — a chip that
alternates high-performance (1 V / 1 GHz) and ultra-low-energy
(350 mV / 5 MHz) phases.  This package makes that temporal dimension
executable:

* :mod:`repro.runtime.epochs` — slices any trace into fixed-length or
  phase-boundary epochs with policy-visible features;
* :mod:`repro.runtime.policies` — decides the operating mode per epoch
  (static duty cycle, utilization threshold, energy budget, and an
  offline-optimal oracle bound);
* :mod:`repro.runtime.simulator` — replays the epochs through the
  batched simulation engine, charges mode-transition costs with carried
  cache-residency state, and reduces everything into a per-epoch
  ledger (:class:`ScheduleResult`).

See ``docs/runtime.md`` for the user guide and
``python -m repro schedule --help`` for the CLI entry point.
"""

from repro.runtime.epochs import (
    Epoch,
    EpochFeatures,
    segment,
    segment_fixed,
    segment_phases,
)
from repro.runtime.policies import (
    CANDIDATE_MODES,
    POLICIES,
    EnergyBudget,
    Oracle,
    ScheduleContext,
    SchedulePolicy,
    StaticDutyCycle,
    UtilizationThreshold,
    policy_by_name,
)
from repro.runtime.simulator import (
    EpochLedgerEntry,
    ScheduleResult,
    ScheduleSimulator,
    simulate_schedule,
)

__all__ = [
    "Epoch",
    "EpochFeatures",
    "segment",
    "segment_fixed",
    "segment_phases",
    "CANDIDATE_MODES",
    "POLICIES",
    "SchedulePolicy",
    "ScheduleContext",
    "StaticDutyCycle",
    "UtilizationThreshold",
    "EnergyBudget",
    "Oracle",
    "policy_by_name",
    "EpochLedgerEntry",
    "ScheduleResult",
    "ScheduleSimulator",
    "simulate_schedule",
]
