"""Hsiao single-error-correct / double-error-detect (SECDED) codes.

The paper uses the Hsiao codes of Chen & Hsiao (IBM JRD 1984): an
odd-weight-column parity-check matrix where

* check-bit columns are the identity (weight 1),
* data-bit columns are *distinct odd-weight* columns of weight >= 3,
  selected to balance the row weights (which minimizes the widest XOR tree
  in the encoder — the property Hsiao codes are famous for).

Odd-weight columns give the SECDED property directly: any single error has
an odd syndrome equal to one column; any double error has a non-zero *even*
syndrome, which can never be confused with a single error.

Layout: data bits at codeword positions ``0 .. k-1``, check bits at
``k .. n-1`` (LSB-first ints).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.edc.base import DecodeResult, DecodeStatus, LinearBlockCode
from repro.util.bitvec import int_to_bits, popcount


def _odd_weight_columns(r: int, count: int) -> list[int]:
    """Choose ``count`` distinct odd-weight (>=3) r-bit columns, balanced.

    Candidates are consumed weight-class by weight-class (3, 5, ...); within
    a class a greedy pass keeps the per-row ones-counts as equal as
    possible, which reproduces the balanced row weights of Hsiao's tables.
    """
    available = 0
    weights = []
    for weight in range(3, r + 1, 2):
        size = len(list(combinations(range(r), weight)))
        weights.append(weight)
        available += size
    if count > available:
        raise ValueError(
            f"{r} check bits support at most {available} data bits "
            f"with odd-weight columns; requested {count}"
        )

    chosen: list[int] = []
    row_load = np.zeros(r, dtype=np.int64)
    for weight in weights:
        if len(chosen) >= count:
            break
        candidates = [
            sum(1 << bit for bit in combo)
            for combo in combinations(range(r), weight)
        ]
        while candidates and len(chosen) < count:
            # Greedy: pick the candidate whose rows are currently least
            # loaded (ties broken by numeric value for determinism).
            def load_key(column: int) -> tuple[int, int, int]:
                rows = [b for b in range(r) if (column >> b) & 1]
                loads = sorted((int(row_load[b]) for b in rows), reverse=True)
                return (loads[0], sum(loads), column)

            best = min(candidates, key=load_key)
            candidates.remove(best)
            chosen.append(best)
            for bit in range(r):
                if (best >> bit) & 1:
                    row_load[bit] += 1
    return chosen


class HsiaoSecDed(LinearBlockCode):
    """(k + r, k) Hsiao SECDED code.

    Args:
        data_bits: number of data bits k.
        check_bits: number of check bits r; defaults to the smallest r
            whose odd-weight column pool covers k (the paper fixes r = 7
            for both 32-bit data and 26-bit tag words — pass it
            explicitly to match).
    """

    correctable = 1
    detectable = 2

    def __init__(self, data_bits: int, check_bits: int | None = None):
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        if check_bits is None:
            check_bits = self._minimal_check_bits(data_bits)
        if check_bits < 4:
            raise ValueError("SECDED needs at least 4 check bits")
        self.k = data_bits
        self.n = data_bits + check_bits
        self._r = check_bits
        self._columns = _odd_weight_columns(check_bits, data_bits)
        # Syndrome -> position lookup for correction: data columns first,
        # then the identity columns of the check bits themselves.
        self._syndrome_to_position = {
            column: position for position, column in enumerate(self._columns)
        }
        for check_index in range(check_bits):
            self._syndrome_to_position[1 << check_index] = (
                data_bits + check_index
            )

    @staticmethod
    def _minimal_check_bits(data_bits: int) -> int:
        r = 4
        while True:
            pool = sum(
                len(list(combinations(range(r), w)))
                for w in range(3, r + 1, 2)
            )
            if pool >= data_bits:
                return r
            r += 1

    # -------------------------------------------------------------- matrix
    @property
    def parity_check_matrix(self) -> np.ndarray:
        """H as an (r, n) uint8 matrix (columns: data then identity)."""
        matrix = np.zeros((self._r, self.n), dtype=np.uint8)
        for position, column in enumerate(self._columns):
            matrix[:, position] = int_to_bits(column, self._r)
        for check_index in range(self._r):
            matrix[check_index, self.k + check_index] = 1
        return matrix

    @property
    def row_weights(self) -> list[int]:
        """Ones per H row (balanced by construction)."""
        return [int(w) for w in self.parity_check_matrix.sum(axis=1)]

    # --------------------------------------------------------------- codec
    def encode(self, data: int) -> int:
        """Append Hsiao check bits to the data bits."""
        self._check_data_range(data)
        checks = 0
        for check_index in range(self._r):
            mask = 0
            for position, column in enumerate(self._columns):
                if (column >> check_index) & 1:
                    mask |= 1 << position
            checks |= (popcount(data & mask) & 1) << check_index
        return data | (checks << self.k)

    def _syndrome(self, received: int) -> int:
        syndrome = 0
        for check_index in range(self._r):
            acc = (received >> (self.k + check_index)) & 1
            for position, column in enumerate(self._columns):
                if (column >> check_index) & 1:
                    acc ^= (received >> position) & 1
            syndrome |= acc << check_index
        return syndrome

    def decode(self, received: int) -> DecodeResult:
        """Correct single errors, detect doubles."""
        self._check_word_range(received)
        syndrome = self._syndrome(received)
        data_mask = (1 << self.k) - 1
        if syndrome == 0:
            return DecodeResult(
                data=received & data_mask, status=DecodeStatus.CLEAN
            )
        if popcount(syndrome) % 2 == 1:
            position = self._syndrome_to_position.get(syndrome)
            if position is not None:
                corrected = received ^ (1 << position)
                return DecodeResult(
                    data=corrected & data_mask,
                    status=DecodeStatus.CORRECTED,
                    corrected_positions=(position,),
                )
            # Odd syndrome matching no column: an odd (>= 3) error burst.
            return DecodeResult(
                data=received & data_mask, status=DecodeStatus.DETECTED
            )
        # Non-zero even syndrome: double (or even-count) error.
        return DecodeResult(
            data=received & data_mask, status=DecodeStatus.DETECTED
        )

    def extract_data(self, codeword: int) -> int:
        """The data bits of a codeword."""
        self._check_word_range(codeword)
        return codeword & ((1 << self.k) - 1)

    # Encoding is also what a fast precomputed implementation would use;
    # expose the per-check input counts for the circuit model.
    def encoder_fanins(self) -> list[int]:
        """Number of data bits feeding each check bit's XOR tree."""
        fanins = []
        for check_index in range(self._r):
            fanins.append(
                sum(
                    1
                    for column in self._columns
                    if (column >> check_index) & 1
                )
            )
        return fanins
