"""Hypothesis: ProtectedArray usability vs sampled fault-map populations.

``word_is_usable`` / ``usable`` are the static side of Eq. (1): a word
is usable iff its stuck-bit count fits the scheme's hard-fault budget.
These properties pin that contract against arbitrary
:func:`repro.reliability.fault_maps.generate_fault_map` populations —
budget boundaries included — and the degenerate maps (fault-free and
fully saturated) that the analytic yield model never exercises.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.edc_layer import ProtectedArray
from repro.edc.base import DecodeStatus
from repro.edc.protection import ProtectionScheme, make_code
from repro.reliability.fault_maps import generate_fault_map

SCHEMES = st.sampled_from(list(ProtectionScheme))


def _array_and_map(scheme, words, data_bits, pf, seed):
    array = ProtectedArray(words, data_bits, scheme)
    fault_map = generate_fault_map(
        pf, words, array.stored_bits, np.random.default_rng(seed)
    )
    return (
        ProtectedArray(words, data_bits, scheme, fault_map=fault_map),
        fault_map,
    )


@settings(max_examples=40, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 48),
    data_bits=st.sampled_from((26, 32)),
    pf=st.floats(0.0, 0.3),
    budget=st.integers(0, 4),
    seed=st.integers(0, 10_000),
)
def test_usability_matches_fault_population(
    scheme, words, data_bits, pf, budget, seed
):
    """A word is usable iff its stuck-bit count fits the budget."""
    array, fault_map = _array_and_map(scheme, words, data_bits, pf, seed)
    for index in range(words):
        assert array.word_is_usable(index, budget) == (
            fault_map.faults_in_word(index) <= budget
        )
    assert array.usable(budget) == (
        fault_map.max_faults_per_word() <= budget
    )


@settings(max_examples=25, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 48),
    data_bits=st.sampled_from((26, 32)),
    pf=st.floats(0.0, 0.3),
    seed=st.integers(0, 10_000),
)
def test_budget_boundary_is_tight(scheme, words, data_bits, pf, seed):
    """The worst word's fault count is exactly the smallest workable
    budget: one below fails, the count itself (and anything above)
    passes."""
    array, fault_map = _array_and_map(scheme, words, data_bits, pf, seed)
    worst = fault_map.max_faults_per_word()
    assert array.usable(worst)
    assert array.usable(worst + 1)
    if worst > 0:
        assert not array.usable(worst - 1)


@settings(max_examples=25, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 48),
    data_bits=st.sampled_from((26, 32)),
    budget=st.integers(0, 4),
    seed=st.integers(0, 10_000),
)
def test_zero_fault_map_is_always_usable(
    scheme, words, data_bits, budget, seed
):
    """pf=0 samples the empty population: every budget works, and a
    map-free array reports the same."""
    array, fault_map = _array_and_map(scheme, words, data_bits, 0.0, seed)
    assert fault_map.faulty_bit_count == 0
    assert array.usable(budget)
    bare = ProtectedArray(words, data_bits, scheme)
    assert bare.usable(0)


@settings(max_examples=25, deadline=None)
@given(
    scheme=SCHEMES,
    words=st.integers(1, 32),
    data_bits=st.sampled_from((26, 32)),
    seed=st.integers(0, 10_000),
)
def test_saturated_map_needs_full_width_budget(
    scheme, words, data_bits, seed
):
    """pf=1 sticks every stored bit: only a budget of the full stored
    width admits any word."""
    array, fault_map = _array_and_map(scheme, words, data_bits, 1.0, seed)
    stored_bits = array.stored_bits
    assert fault_map.faulty_bit_count == words * stored_bits
    assert not array.usable(stored_bits - 1)
    assert array.usable(stored_bits)
    for index in range(words):
        assert not array.word_is_usable(index, stored_bits - 1)


@settings(max_examples=20, deadline=None)
@given(
    words=st.integers(1, 32),
    pf=st.floats(0.0, 0.5),
    seed=st.integers(0, 10_000),
)
def test_unmapped_array_ignores_budgets(words, pf, seed):
    """Without a fault map the static check is vacuously true."""
    array = ProtectedArray(words, 32, ProtectionScheme.SECDED)
    assert array.usable(0)
    for index in range(words):
        assert array.word_is_usable(index, 0)


def _distinct_bits(rng, stored_bits, count):
    return tuple(
        int(b) for b in rng.choice(stored_bits, size=count, replace=False)
    )


def _budgets(scheme, data_bits):
    code = make_code(scheme, data_bits)
    return (code.correctable, code.detectable) if code else (0, 0)


@settings(max_examples=120, deadline=None)
@given(
    scheme=SCHEMES,
    data_bits=st.sampled_from((26, 32)),
    value_seed=st.integers(0, 10_000),
    flip_seed=st.integers(0, 10_000),
)
def test_within_detection_budget_never_silent(
    scheme, data_bits, value_seed, flip_seed
):
    """Any flip pattern within the code's detection budget must be
    corrected or flagged — never silently consumed.  This is the
    contract scenario-B verification rests on: every scheme in a way
    group's ``edc_inline_modes`` map keeps the property."""
    _, detectable = _budgets(scheme, data_bits)
    rng = np.random.default_rng(flip_seed)
    array = ProtectedArray(2, data_bits, scheme)
    value = int(
        np.random.default_rng(value_seed).integers(0, 1 << data_bits)
    )
    array.write(0, value)
    for count in range(detectable + 1):
        record = array.read(
            0, soft_error_bits=_distinct_bits(rng, array.stored_bits, count)
        )
        # Not DETECTED => the returned data must be the written data.
        if record.status is not DecodeStatus.DETECTED:
            assert record.correct
            assert record.value == value
    assert array.silent_errors == 0
    assert array.miscorrections == 0
    assert array.undetected_errors == 0


@settings(max_examples=120, deadline=None)
@given(
    scheme=SCHEMES,
    data_bits=st.sampled_from((26, 32)),
    value_seed=st.integers(0, 10_000),
    flip_seed=st.integers(0, 10_000),
)
def test_one_past_detection_budget_is_observable(
    scheme, data_bits, value_seed, flip_seed
):
    """One flip beyond the detection budget may miscorrect or alias,
    but it must be *observable*: either a non-CLEAN status, or wrong
    data that lands in the miscorrection/undetected counters — it can
    never masquerade as a clean, correct read."""
    _, detectable = _budgets(scheme, data_bits)
    rng = np.random.default_rng(flip_seed)
    array = ProtectedArray(2, data_bits, scheme)
    value = int(
        np.random.default_rng(value_seed).integers(0, 1 << data_bits)
    )
    array.write(0, value)
    record = array.read(
        0,
        soft_error_bits=_distinct_bits(
            rng, array.stored_bits, detectable + 1
        ),
    )
    assert not (record.status is DecodeStatus.CLEAN and record.correct)
    observable = (
        record.status is DecodeStatus.DETECTED
        or array.miscorrections + array.undetected_errors == 1
    )
    assert observable
