"""Frontier quality metrics: hypervolume, knee points, convergence.

Pure numpy reductions over rows of ``{metric: value}`` mappings — the
same row shape :mod:`repro.explore.pareto` consumes — so saved campaigns
re-reduce without any simulation:

* :func:`hypervolume` — the exact dominated volume between a frontier
  and a reference point (WFG-style exclusive-volume recursion), the
  scalar that lets two frontiers be compared as "how much of the
  objective space does each cover";
* :func:`reference_point` — a deterministic reference derived from the
  worst observed value per objective plus a margin, so a surrogate
  campaign and its exhaustive comparator score against the same corner;
* :func:`knee_index` — the frontier row closest to the normalized ideal
  point, the "best compromise" a ranked report can headline;
* :class:`ConvergenceTracker` — the stopping rule of the surrogate
  loop: rounds stop when the relative hypervolume gain stays below a
  tolerance for a configured number of consecutive rounds.

All directions are handled through :class:`~repro.explore.pareto.
Objective`: maximized metrics are negated into minimization space once,
in :func:`objective_matrix`, and every function here works on that
orientation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.explore.pareto import DEFAULT_OBJECTIVES, Objective

#: Fractional margin :func:`reference_point` adds beyond the worst
#: observed value per objective, so boundary rows still enclose volume.
REFERENCE_MARGIN = 0.1


def objective_matrix(
    rows: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> np.ndarray:
    """Rows as a float matrix in *minimization* orientation.

    Column ``j`` is objective ``j``'s metric, negated when the
    objective maximizes — after this, "smaller is better" holds
    everywhere, which is the orientation every function in this module
    assumes.
    """
    matrix = np.empty((len(rows), len(objectives)), dtype=float)
    for j, objective in enumerate(objectives):
        sign = -1.0 if objective.maximize else 1.0
        matrix[:, j] = [sign * row[objective.metric] for row in rows]
    return matrix


def reference_point(
    rows: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    margin: float = REFERENCE_MARGIN,
) -> np.ndarray:
    """A deterministic hypervolume reference for these observations.

    Per objective (minimization orientation): the worst observed value
    plus ``margin`` times the observed span (or ``margin`` times the
    magnitude when the objective is constant), so every observed row
    strictly dominates the reference and boundary rows still contribute
    volume.  Two frontiers compared by hypervolume must score against
    the same reference — derive it from the *union* of their rows.
    """
    if not rows:
        raise ValueError("reference_point needs at least one row")
    matrix = objective_matrix(rows, objectives)
    worst = matrix.max(axis=0)
    span = worst - matrix.min(axis=0)
    pad = np.where(span > 0.0, span, np.maximum(np.abs(worst), 1.0))
    return worst + margin * pad


def _nondominated(points: np.ndarray) -> np.ndarray:
    """The non-dominated subset (minimization), first-occurrence order.

    Duplicate points keep one representative — dominance is "at least
    as good everywhere, strictly better somewhere", so exact duplicates
    never dominate each other but contribute identical volume.
    """
    keep: list[int] = []
    for i, p in enumerate(points):
        dominated = False
        for j in keep:
            q = points[j]
            if np.all(q <= p) and (np.any(q < p) or np.all(q == p)):
                dominated = True
                break
        if not dominated:
            keep = [
                j
                for j in keep
                if not (
                    np.all(p <= points[j]) and np.any(p < points[j])
                )
            ]
            keep.append(i)
    return points[keep] if keep else points[:0]


def _wfg(points: np.ndarray, reference: np.ndarray) -> float:
    """Exact hypervolume of a non-dominated set (WFG recursion).

    ``hv(S) = sum_i exclhv(p_i, S[i+1:])`` where the exclusive volume
    of a point is its inclusive box minus the volume of the remaining
    points clipped into that box.  Exponential in the worst case but
    the limit-and-prune step keeps campaign-sized frontiers (tens of
    points, a handful of objectives) well inside milliseconds.
    """
    total = 0.0
    for i in range(len(points)):
        point = points[i]
        inclusive = float(np.prod(reference - point))
        rest = points[i + 1 :]
        if len(rest):
            limited = np.maximum(rest, point)
            limited = _nondominated(limited)
            inclusive -= _wfg(limited, reference)
        total += inclusive
    return total


def hypervolume(
    rows: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    reference: np.ndarray | Sequence[float] | None = None,
) -> float:
    """Dominated hypervolume of ``rows`` against ``reference``.

    Rows that do not strictly dominate the reference contribute
    nothing (their clipped box is empty); dominated rows are pruned
    before the recursion, so passing a whole campaign or just its
    frontier yields the same value.  ``reference=None`` derives one
    from the rows themselves (:func:`reference_point`) — fine for a
    standalone score, wrong for comparing two frontiers (share one
    reference instead).
    """
    if not rows:
        return 0.0
    matrix = objective_matrix(rows, objectives)
    if reference is None:
        ref = reference_point(rows, objectives)
    else:
        ref = np.asarray(reference, dtype=float)
        if ref.shape != (len(objectives),):
            raise ValueError(
                f"reference has shape {ref.shape}; expected "
                f"({len(objectives)},)"
            )
    inside = matrix[np.all(matrix < ref, axis=1)]
    if not len(inside):
        return 0.0
    # Lexicographic sort: deterministic recursion order and better
    # pruning than submission order.
    order = np.lexsort(inside.T[::-1])
    return _wfg(_nondominated(inside[order]), ref)


def knee_index(
    rows: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> int:
    """The row closest to the normalized ideal point.

    Objectives are min-max normalized over the rows (constant
    objectives collapse to zero and carry no weight), and the row with
    the smallest Euclidean distance to the all-best corner wins — the
    classic "knee" compromise a ranked report can headline.  Ties break
    to the lowest index.
    """
    if not rows:
        raise ValueError("knee_index needs at least one row")
    matrix = objective_matrix(rows, objectives)
    low = matrix.min(axis=0)
    span = matrix.max(axis=0) - low
    span = np.where(span > 0.0, span, 1.0)
    normalized = (matrix - low) / span
    distances = np.sqrt((normalized**2).sum(axis=1))
    return int(np.argmin(distances))


class ConvergenceTracker:
    """Hypervolume-based stopping rule for iterative exploration.

    Feed each round's observed rows to :meth:`update`; the tracker
    re-derives a shared reference from *everything* it has seen, scores
    the previous and current frontiers against it, and records the
    relative gain.  :attr:`converged` turns true once the gain has
    stayed below ``rel_tol`` for ``patience`` consecutive updates —
    the "frontier stopped moving" signal the surrogate loop stops on.

    Parameters
    ----------
    objectives : tuple of Objective
        The frontier's optimization directions.
    rel_tol : float
        Relative hypervolume gain under which a round counts as quiet.
    patience : int
        Consecutive quiet rounds required before :attr:`converged`.
    """

    def __init__(
        self,
        objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
        rel_tol: float = 1e-3,
        patience: int = 2,
    ) -> None:
        if rel_tol < 0.0:
            raise ValueError("rel_tol must be non-negative")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.objectives = tuple(objectives)
        self.rel_tol = float(rel_tol)
        self.patience = int(patience)
        self.history: list[float] = []
        self.gains: list[float] = []
        self._seen: list[Mapping[str, float]] = []
        self._previous: list[Mapping[str, float]] | None = None
        self._quiet = 0

    def update(self, rows: Sequence[Mapping[str, float]]) -> float:
        """Record one round's observed rows; return the relative gain.

        The first update has nothing to compare against and reports a
        gain of infinity (never quiet).
        """
        rows = list(rows)
        if not rows:
            raise ValueError("update needs at least one row")
        self._seen.extend(rows)
        reference = reference_point(self._seen, self.objectives)
        current = hypervolume(rows, self.objectives, reference)
        self.history.append(current)
        if self._previous is None:
            gain = float("inf")
        else:
            previous = hypervolume(
                self._previous, self.objectives, reference
            )
            gain = (current - previous) / max(current, 1e-300)
        self.gains.append(gain)
        self._previous = rows
        if gain < self.rel_tol:
            self._quiet += 1
        else:
            self._quiet = 0
        return gain

    @property
    def converged(self) -> bool:
        """Whether the frontier has been quiet for ``patience`` rounds."""
        return self._quiet >= self.patience
