"""tab-exectime: ULE-mode execution-time overhead of the EDC cycle.

Paper, Section IV-B.2: "Performance variation due to the extra cycle for
EDC encoding/decoding is negligible (around 3 % increase in execution time
in all cases)."
"""

from __future__ import annotations

from repro.core import calibration
from repro.core.evaluation import evaluate_scenario
from repro.core.scenarios import Scenario
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.tech.operating import Mode
from repro.util.tables import Table


def run_exec_time(
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """Per-benchmark execution-time ratios at ULE mode."""
    table = Table(
        ["scenario", "benchmark", "baseline CPI", "proposed CPI", "ratio"],
        title="Execution time at ULE mode (proposed / baseline)",
    )
    data: dict = {}
    comparisons = []
    for scenario in (Scenario.A, Scenario.B):
        evaluation = evaluate_scenario(
            scenario, Mode.ULE, trace_length=trace_length, seed=seed
        )
        for row in evaluation.rows:
            table.add_row(
                [
                    scenario.value,
                    row.benchmark,
                    row.baseline.timing.cpi,
                    row.proposed.timing.cpi,
                    row.exec_time_ratio,
                ]
            )
            data[f"{scenario.value}:{row.benchmark}"] = row.exec_time_ratio
        overhead_pct = 100.0 * (evaluation.average_exec_time_ratio - 1.0)
        comparisons.append(
            PaperComparison(
                quantity=f"scenario {scenario.value} ULE exec overhead",
                paper=3.0,
                measured=overhead_pct,
                unit="%",
            )
        )
        data[f"avg_{scenario.value}"] = evaluation.average_exec_time_ratio
        table.add_separator()
    return ExperimentResult(
        experiment_id="tab-exectime",
        title="EDC-cycle execution-time overhead at ULE mode (§IV-B.2)",
        body=table.render(),
        comparisons=tuple(comparisons),
        data=data,
    )
