#!/usr/bin/env python
"""Tree-hygiene gate: no build debris may be committed.

Scans the *git index* (``git ls-files``), not the working tree —
pytest and normal imports regenerate ``__pycache__`` on disk all the
time and that is fine; what must never happen again is those
directories (or any other generated artifact) getting committed.
Exits non-zero listing every offending tracked path.

Usage::

    python tools/check_tree.py
"""

from __future__ import annotations

import fnmatch
import subprocess
import sys

#: Glob patterns no tracked path may match.
FORBIDDEN = (
    "*__pycache__*",
    "*.pyc",
    "*.pyo",
    "*.egg-info/*",
    ".pytest_cache/*",
    ".hypothesis/*",
    "*.orig",
    "*.rej",
)


def tracked_files() -> list[str]:
    """Every path in the git index."""
    output = subprocess.run(
        ["git", "ls-files"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return [line for line in output.splitlines() if line]


def violations(paths: list[str]) -> list[tuple[str, str]]:
    """(path, offending pattern) pairs over the tracked files."""
    found = []
    for path in paths:
        for pattern in FORBIDDEN:
            if fnmatch.fnmatch(path, pattern):
                found.append((path, pattern))
                break
    return found


def main() -> int:
    """Run the gate; print offenders; exit status for CI."""
    bad = violations(tracked_files())
    if not bad:
        print(f"tree clean: no debris among {len(tracked_files())} "
              "tracked files")
        return 0
    print("committed build debris (remove with 'git rm --cached'):")
    for path, pattern in bad:
        print(f"  {path}  (matches {pattern})")
    return 1


if __name__ == "__main__":
    sys.exit(main())
