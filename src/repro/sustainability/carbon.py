"""Operational-carbon accounting over the simulator's energy ledgers.

The reproduction's energy models stop at joules; this module prices
those joules in grams of CO2 using a grid carbon intensity (g CO2 per
kWh) and normalizes them into the fleet-facing figures of merit used by
sustainability-aware memory studies:

* **CO2 per GiB-year** — the annual operational carbon of keeping one
  GiB of cache capacity powered at a measured average power.  This is
  the metric that makes an eDRAM way's refresh background power (paid
  for as long as state is held, independent of activity) directly
  comparable to an SRAM way's leakage.
* **ESII** (Environmental Sustainability Improvement Index, in
  :mod:`repro.sustainability.esii`) — a pairwise improvement ratio
  against an explicit baseline.

Intensities are deliberately *parameters*, not constants baked into
results: the same chip is green on a renewable grid and carbon-heavy on
a coal one, and ranking candidates under several profiles is exactly
the point of the ``sustain`` experiment.
"""

from __future__ import annotations

#: Named grid carbon-intensity profiles (g CO2 per kWh).  Rounded
#: public figures: the world average, the EU mix, a renewable-heavy
#: grid and a coal-dominated one.
GRID_PROFILES: dict[str, float] = {
    "world": 475.0,
    "eu": 275.0,
    "renewable": 50.0,
    "coal": 820.0,
}

#: Joules in one kilowatt-hour.
JOULES_PER_KWH = 3.6e6

#: Seconds in one (Julian) year of continuous operation.
SECONDS_PER_YEAR = 365.25 * 24.0 * 3600.0

#: Bytes in one GiB.
GIB_BYTES = float(1 << 30)


def grid_intensity(profile: str | float) -> float:
    """Resolve a grid profile name or explicit number to g CO2/kWh.

    Accepts a :data:`GRID_PROFILES` key (case-insensitive), a numeric
    string, or a plain number; rejects negative intensities.
    """
    if isinstance(profile, str):
        name = profile.strip().lower()
        if name in GRID_PROFILES:
            return GRID_PROFILES[name]
        try:
            value = float(name)
        except ValueError:
            known = ", ".join(sorted(GRID_PROFILES))
            raise ValueError(
                f"unknown grid profile {profile!r}; choose from "
                f"{known} or pass g CO2/kWh as a number"
            ) from None
    else:
        value = float(profile)
    if value < 0.0:
        raise ValueError("carbon intensity must be non-negative")
    return value


def co2_grams(energy_j: float, intensity_g_per_kwh: float) -> float:
    """Grams of CO2 for ``energy_j`` joules drawn from the grid."""
    if energy_j < 0.0:
        raise ValueError("energy must be non-negative")
    return energy_j / JOULES_PER_KWH * float(intensity_g_per_kwh)


def annual_energy_j(power_w: float) -> float:
    """Joules of one year of continuous operation at ``power_w``."""
    if power_w < 0.0:
        raise ValueError("power must be non-negative")
    return power_w * SECONDS_PER_YEAR


def carbon_per_gib_year(
    power_w: float,
    capacity_bytes: int,
    intensity_g_per_kwh: float,
) -> float:
    """Annual g CO2 per GiB of capacity held at ``power_w``.

    The normalization of the sustainability literature's
    "kg CO2 per GiB of annual decoder/maintenance energy", applied to
    whole-chip average power: grams of CO2 emitted by one year of
    continuous operation, divided by the capacity (in GiB) that the
    power keeps alive.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    annual = co2_grams(annual_energy_j(power_w), intensity_g_per_kwh)
    return annual / (capacity_bytes / GIB_BYTES)
