"""Design-space exploration: declarative sweeps over chip candidates.

The subsystem in one breath::

    DesignSpace  --sample-->  points  --build_candidate-->  Candidate
        --ExplorationCampaign.run (one SimulationSession batch)-->
    CampaignResult  --reduce-->  Pareto frontier + sensitivity + ranking

See DESIGN.md section 7 and ``python -m repro sweep --help``.
"""

from repro.explore.campaign import (
    POPULATION_OBJECTIVES,
    TRANSIENT_OBJECTIVE,
    CampaignResult,
    CandidateOutcome,
    ExplorationCampaign,
)
from repro.explore.candidates import (
    Candidate,
    CandidateError,
    build_candidate,
    default_constraints,
    default_space,
)
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    dominates,
    pareto_indices,
    rank_rows,
    sensitivity,
)
from repro.explore.space import Axis, DesignSpace

__all__ = [
    "Axis",
    "DesignSpace",
    "Candidate",
    "CandidateError",
    "build_candidate",
    "default_constraints",
    "default_space",
    "ExplorationCampaign",
    "CampaignResult",
    "CandidateOutcome",
    "Objective",
    "DEFAULT_OBJECTIVES",
    "POPULATION_OBJECTIVES",
    "TRANSIENT_OBJECTIVE",
    "dominates",
    "pareto_indices",
    "rank_rows",
    "sensitivity",
]
