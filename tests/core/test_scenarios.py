"""Tests for the scenario plans (paper Section III-B)."""

from repro.core.scenarios import Scenario, plan_for
from repro.edc.protection import ProtectionScheme


class TestScenarioA:
    def test_baseline_uncoded(self):
        plan = plan_for(Scenario.A)
        assert plan.baseline_hp_ways.hp is ProtectionScheme.NONE
        assert plan.baseline_ule_way.ule is ProtectionScheme.NONE

    def test_proposed_secded_at_ule_only(self):
        """'by adding SECDED whenever no coding is in place ... At HP
        mode, SECDED is simply turned off'."""
        plan = plan_for(Scenario.A)
        assert plan.proposed_ule_way.ule is ProtectionScheme.SECDED
        assert plan.proposed_ule_way.hp is ProtectionScheme.NONE
        assert plan.proposed_hp_ways.hp is ProtectionScheme.NONE

    def test_hard_budget(self):
        assert plan_for(Scenario.A).proposed_ule_hard_budget == 1


class TestScenarioB:
    def test_baseline_secded_everywhere(self):
        plan = plan_for(Scenario.B)
        assert plan.baseline_hp_ways.hp is ProtectionScheme.SECDED
        assert plan.baseline_ule_way.hp is ProtectionScheme.SECDED
        assert plan.baseline_ule_way.ule is ProtectionScheme.SECDED

    def test_proposed_dected_at_ule(self):
        """'by replacing SECDED (only for ULE ways) by DECTED' with
        SECDED retained at HP mode."""
        plan = plan_for(Scenario.B)
        assert plan.proposed_ule_way.ule is ProtectionScheme.DECTED
        assert plan.proposed_ule_way.hp is ProtectionScheme.SECDED
        assert plan.proposed_hp_ways.hp is ProtectionScheme.SECDED

    def test_hard_budget_reserves_soft_correction(self):
        """DECTED's second correction is reserved for soft errors, so
        the hard budget stays 1 (the paper's Eq. 1 upper limit)."""
        assert plan_for(Scenario.B).proposed_ule_hard_budget == 1

    def test_mapping_conversion(self):
        from repro.tech.operating import Mode

        mapping = plan_for(Scenario.B).proposed_ule_way.as_mapping()
        assert mapping[Mode.HP] is ProtectionScheme.SECDED
        assert mapping[Mode.ULE] is ProtectionScheme.DECTED
