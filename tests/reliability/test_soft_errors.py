"""Tests for repro.reliability.soft_errors."""

import math

import pytest

from repro.reliability.soft_errors import SoftErrorModel, poisson_pmf

MODEL = SoftErrorModel()


class TestUpsetRate:
    def test_positive(self):
        assert MODEL.upset_rate_per_bit(1.0) > 0

    def test_grows_at_low_vdd(self):
        """Lower Vdd, lower critical charge, higher SER."""
        assert MODEL.upset_rate_per_bit(0.35) > 5 * (
            MODEL.upset_rate_per_bit(1.0)
        )

    def test_fit_conversion(self):
        """1000 FIT/Mbit at nominal = 1000/2^20 upsets/1e9 bit-hours."""
        rate = MODEL.upset_rate_per_bit(1.0)
        per_bit_hour = rate * 3600
        expected = 1000.0 / (1 << 20) / 1e9
        assert per_bit_hour == pytest.approx(expected)

    def test_bad_vdd(self):
        with pytest.raises(ValueError):
            MODEL.upset_rate_per_bit(0.0)


class TestWordProbabilities:
    def test_poisson_normalization(self):
        total = sum(
            MODEL.word_upset_probability(0.35, 39, 3600.0, k)
            for k in range(10)
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_uncorrectable_complements_budget(self):
        p0 = MODEL.word_upset_probability(0.35, 39, 3600.0, 0)
        p1 = MODEL.word_upset_probability(0.35, 39, 3600.0, 1)
        uncorrectable = MODEL.word_uncorrectable_probability(
            0.35, 39, 3600.0, soft_budget=1
        )
        assert uncorrectable == pytest.approx(1.0 - p0 - p1)

    def test_budget_monotone(self):
        values = [
            MODEL.word_uncorrectable_probability(0.35, 45, 3600.0, b)
            for b in range(3)
        ]
        assert values == sorted(values, reverse=True)


class TestScenarioBEquivalence:
    def test_dected_with_hard_fault_matches_clean_secded(self):
        """The paper's scenario-B argument: a DECTED word carrying one
        hard fault retains soft budget 1 — exactly a clean SECDED word's
        budget.  FIT rates are then equivalent (same order)."""
        exposure = 24 * 3600.0
        secded_clean = MODEL.cache_fit(
            0.35, words=288, word_bits=39, scrub_interval_seconds=exposure,
            soft_budget=1,
        )
        dected_one_hard = MODEL.cache_fit(
            0.35, words=288, word_bits=45, scrub_interval_seconds=exposure,
            soft_budget=1,
        )
        assert dected_one_hard == pytest.approx(secded_clean, rel=0.5)

    def test_secded_with_hard_fault_is_catastrophically_worse(self):
        """And the converse: 8T+SECDED in scenario B would be unsafe —
        a hard fault eats the only correction, leaving budget 0."""
        exposure = 24 * 3600.0
        healthy = MODEL.cache_fit(0.35, 288, 39, exposure, soft_budget=1)
        consumed = MODEL.cache_fit(0.35, 288, 39, exposure, soft_budget=0)
        assert consumed > 100 * healthy

    def test_validation(self):
        with pytest.raises(ValueError):
            MODEL.cache_fit(0.35, -1, 39, 100.0, 1)
        with pytest.raises(ValueError):
            MODEL.word_uncorrectable_probability(0.35, 39, 10.0, -1)


class TestLogSpacePmf:
    """Regression: the pmf must survive extreme exposure windows."""

    def test_extreme_exposure_no_overflow(self):
        """A year-long exposure of a whole-array word population used
        to overflow ``mean ** k`` / ``factorial(k)``; the log-space
        form stays finite for any (mean, k)."""
        year = 365 * 24 * 3600.0
        for upsets in (0, 1, 50, 500, 5_000):
            p = MODEL.word_upset_probability(
                0.2, 10_000_000, 1e6 * year, upsets
            )
            assert 0.0 <= p <= 1.0
            assert math.isfinite(p)

    def test_large_mean_peak_location(self):
        """With a huge mean the pmf peaks near it — sanity that the
        log-space evaluation is not just returning zeros."""
        pmf = poisson_pmf
        assert pmf(1000.0, 1000) > pmf(1000.0, 500)
        assert pmf(1000.0, 1000) > pmf(1000.0, 1500)
        assert pmf(1000.0, 1000) == pytest.approx(
            math.exp(
                1000 * math.log(1000.0) - 1000.0 - math.lgamma(1001)
            )
        )

    def test_matches_naive_form_in_safe_range(self):
        mean = 2.5
        for k in range(10):
            naive = (
                math.exp(-mean) * mean**k / math.factorial(k)
            )
            assert poisson_pmf(mean, k) == pytest.approx(naive)

    def test_zero_mean(self):
        assert poisson_pmf(0.0, 0) == 1.0
        assert poisson_pmf(0.0, 3) == 0.0

    def test_negative_upsets_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MODEL.word_upset_probability(0.35, 39, 3600.0, -1)
        with pytest.raises(ValueError, match="non-negative"):
            poisson_pmf(1.0, -2)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_pmf(-0.1, 0)


class TestStableTail:
    """Regression: tiny uncorrectable probabilities must not cancel."""

    def test_tiny_mean_tail_is_positive(self):
        """Realistic upset means are ~1e-16 per interval; the naive
        ``1 - cdf`` form cancels to exactly 0 in float."""
        p = MODEL.word_uncorrectable_probability(
            0.35, 39, 1e-3, soft_budget=0
        )
        assert p > 0.0
        mean = 39 * MODEL.upset_rate_per_bit(0.35) * 1e-3
        # Leading-order tail: P(>0) ~ mean for tiny means.
        assert p == pytest.approx(mean, rel=1e-6)

    def test_tail_matches_higher_budget_order(self):
        mean = 39 * MODEL.upset_rate_per_bit(0.35) * 1e-3
        p2 = MODEL.word_uncorrectable_probability(
            0.35, 39, 1e-3, soft_budget=1
        )
        # P(>1) ~ mean^2 / 2 at leading order.
        assert p2 == pytest.approx(mean**2 / 2, rel=1e-6)

    def test_cache_fit_positive_at_realistic_rates(self):
        fit = MODEL.cache_fit(
            0.35,
            words=2048,
            word_bits=39,
            scrub_interval_seconds=1e-3,
            soft_budget=1,
        )
        assert fit > 0.0
