#!/usr/bin/env python3
"""Layering lint: no new direct ``repro.sram`` imports (no external deps).

The cell-technology API (:mod:`repro.cells`) is the supported way to
consume bitcells — it re-exports the SRAM stack and adds the protocol,
registry and non-SRAM technologies.  Direct ``repro.sram`` imports
bypass the protocol and freeze callers onto one technology, so this
gate walks ``src/repro`` with :mod:`ast` and fails on any ``import
repro.sram...`` / ``from repro.sram... import ...`` outside the two
packages allowed to know the layering:

* ``repro/sram/`` itself (intra-package imports), and
* ``repro/cells/`` (the compatibility shim re-exporting it).

Usage::

    python tools/check_imports.py src/repro
    python tools/check_imports.py src/repro --list

Runs in CI and as a test (``tests/docs/test_documentation.py`` style),
so a violating import fails the suite before it fails review.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

#: Module prefix whose direct imports are gated.
FORBIDDEN_PREFIX = "repro.sram"

#: Directories (relative to the scanned package root) whose files may
#: import the gated prefix directly.
ALLOWED_DIRS = ("sram", "cells")


def _violations_in(path: pathlib.Path, tree: ast.Module) -> list[str]:
    """Offending import lines of one parsed module."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (
                    alias.name == FORBIDDEN_PREFIX
                    or alias.name.startswith(FORBIDDEN_PREFIX + ".")
                ):
                    found.append(
                        f"{path}:{node.lineno}: import {alias.name}"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == FORBIDDEN_PREFIX
                or module.startswith(FORBIDDEN_PREFIX + ".")
            ):
                found.append(
                    f"{path}:{node.lineno}: from {module} import ..."
                )
    return found


def check_package(root: pathlib.Path) -> list[str]:
    """All forbidden-import violations under ``root``, sorted."""
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if relative.parts and relative.parts[0] in ALLOWED_DIRS:
            continue
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=str(path)
        )
        violations.extend(_violations_in(path, tree))
    return violations


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a shell exit status."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "package", type=pathlib.Path,
        help="package directory to scan (e.g. src/repro)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print violations without failing (for triage)",
    )
    args = parser.parse_args(argv)
    if not args.package.is_dir():
        print(f"error: {args.package} is not a directory",
              file=sys.stderr)
        return 2
    violations = check_package(args.package)
    for line in violations:
        print(line)
    if violations and not args.list:
        print(
            f"{len(violations)} direct {FORBIDDEN_PREFIX} import(s) "
            "outside repro/sram and repro/cells; import from "
            "repro.cells instead",
            file=sys.stderr,
        )
        return 1
    print(
        f"import layering OK: no direct {FORBIDDEN_PREFIX} imports "
        "outside the allowed packages"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
