"""Tests for the top-level package API (lazy exports, version)."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_scenario_export(self):
        from repro.core.scenarios import Scenario

        assert repro.Scenario is Scenario

    def test_design_scenario_export(self):
        design = repro.design_scenario(repro.Scenario.A)
        assert design.scenario is repro.Scenario.A

    def test_experiment_exports(self):
        assert "fig4" in repro.list_experiments()
        result = repro.run_experiment("tab-sizing")
        assert result.experiment_id == "tab-sizing"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_symbol  # noqa: B018

    def test_all_declared(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            assert getattr(repro, name) is not None
