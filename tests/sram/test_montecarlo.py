"""Tests for repro.sram.montecarlo (the Chen-analysis substitute)."""

import numpy as np
import pytest

from repro.sram.cells import CELL_8T, CELL_10T, CellDesign
from repro.sram.failure import analytic_pf
from repro.sram.montecarlo import importance_sampling_pf, monte_carlo_pf


class TestMonteCarlo:
    def test_matches_analytic_at_high_pf(self, rng):
        design = CellDesign(CELL_8T, 1.0)  # Pf ~ 6e-3 at 350 mV
        result = monte_carlo_pf(design, 0.35, 200_000, rng)
        expected = analytic_pf(design, 0.35)
        assert result.pf == pytest.approx(expected, rel=0.15)

    def test_stderr_reported(self, rng):
        design = CellDesign(CELL_8T, 1.0)
        result = monte_carlo_pf(design, 0.35, 50_000, rng)
        assert result.stderr > 0
        assert result.samples == 50_000

    def test_bad_samples(self, rng):
        with pytest.raises(ValueError):
            monte_carlo_pf(CellDesign(CELL_8T), 0.35, 0, rng)


class TestImportanceSampling:
    def test_matches_analytic_at_tiny_pf(self, rng):
        """The whole point: estimate Pf ~ 1e-6 with only 20k samples."""
        design = CellDesign(CELL_10T, 4.5)
        expected = analytic_pf(design, 0.35)
        assert expected < 1e-5  # plain MC would need > 1e7 samples
        result = importance_sampling_pf(design, 0.35, 20_000, rng)
        assert result.pf == pytest.approx(expected, rel=0.10)

    def test_efficiency_half_samples_fail(self, rng):
        """Mean-shift to the design point makes ~half the samples fail."""
        design = CellDesign(CELL_8T, 2.0)
        result = importance_sampling_pf(design, 0.35, 10_000, rng)
        assert 0.3 < result.hits / result.samples < 0.7

    def test_relative_error_small(self, rng):
        design = CellDesign(CELL_8T, 2.0)
        result = importance_sampling_pf(design, 0.35, 20_000, rng)
        assert result.relative_error < 0.05

    def test_shift_scale_robustness(self, rng):
        """A mis-centred proposal is less efficient but still unbiased."""
        design = CellDesign(CELL_8T, 1.5)
        expected = analytic_pf(design, 0.35)
        result = importance_sampling_pf(
            design, 0.35, 60_000, rng, shift_scale=1.3
        )
        assert result.pf == pytest.approx(expected, rel=0.15)

    def test_agrees_with_plain_mc_in_overlap(self, rng):
        """Where both estimators work, they agree."""
        design = CellDesign(CELL_8T, 1.0)
        mc = monte_carlo_pf(design, 0.35, 300_000, rng)
        is_ = importance_sampling_pf(design, 0.35, 30_000, rng)
        assert is_.pf == pytest.approx(mc.pf, rel=0.2)

    def test_deterministic_given_rng(self):
        design = CellDesign(CELL_8T, 1.5)
        a = importance_sampling_pf(
            design, 0.35, 5_000, np.random.default_rng(3)
        )
        b = importance_sampling_pf(
            design, 0.35, 5_000, np.random.default_rng(3)
        )
        assert a.pf == b.pf
