"""transients: executable soft-error injection vs the analytic model.

The paper's scenario-B argument — DECTED keeps a soft-error budget
where hard faults already consumed SECDED's single correction — is
stated analytically.  This experiment makes it executable on both axes:

* a **DUE-vs-Vdd curve** per chip: the analytic uncorrectable rate
  (:meth:`~repro.reliability.soft_errors.SoftErrorModel.cache_fit`,
  true and accelerated physics) next to the *sampled* rate of the
  counter-based injector, enumerated with no trace in the loop — the
  statistical validation of the subsystem;
* **trace-observed recovery accounting** at the paper's ULE point:
  corrected / refetched / DUE / SDC reads, the recovery-stall share
  and the injection EPI overhead of each chip, simulated through the
  engine (so backends, dedup and caching all apply).

The two chips of the scenario differ only in the ULE way's code, so
the table is a direct SECDED-vs-DECTED comparison under identical
strikes.
"""

from __future__ import annotations

from repro.core import calibration
from repro.core.evaluation import cached_chips
from repro.core.scenarios import Scenario
from repro.engine.jobs import SimulationJob, TraceSpec
from repro.engine.session import current_session
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.faults.population import DEFAULT_VDD_GRID
from repro.tech.operating import Mode, OperatingPoint, ULE_OPERATING_POINT
from repro.transients.metrics import transient_run_metrics
from repro.transients.sampling import analytic_cache_fit, make_sampler
from repro.transients.spec import TransientSpec
from repro.util.rng import derive_seed
from repro.util.tables import Table
from repro.workloads.suites import suite_for_mode

#: Default rate acceleration: pushes the per-word-interval upset mean
#: into observable territory while staying far from saturation.
DEFAULT_ACCELERATION = 1e16

#: Default scrub interval (µs) for the experiment's injection spec.
DEFAULT_SCRUB_US = 100.0


def _curve_rows(
    config, mode_vdds, spec: TransientSpec, intervals: int
) -> list[dict]:
    """Analytic and sampled FIT of one chip's L1s per ULE supply."""
    rows = []
    for vdd in mode_vdds:
        op = OperatingPoint(
            mode=Mode.ULE,
            vdd=vdd,
            frequency=ULE_OPERATING_POINT.frequency,
        )
        analytic_true = analytic_fit = sampled_fit = 0.0
        for label, cache in (("il1", config.il1), ("dl1", config.dl1)):
            analytic_true += analytic_cache_fit(
                cache, Mode.ULE, vdd, spec
            )
            analytic_fit += analytic_cache_fit(
                cache, Mode.ULE, vdd, spec, accelerated=True
            )
            sampler = make_sampler(cache, Mode.ULE, op, spec, label)
            sampled_fit += sampler.sampled_cache_fit(intervals)
        rows.append(
            {
                "vdd": vdd,
                "fit_analytic": analytic_true,
                "fit_analytic_accelerated": analytic_fit,
                "fit_sampled_accelerated": sampled_fit,
            }
        )
    return rows


def run_transients(
    trace_length: int = 12_000,
    seed: int = calibration.DEFAULT_SEED,
    scenario: str = "B",
    acceleration: float = DEFAULT_ACCELERATION,
    scrub_interval_us: float = DEFAULT_SCRUB_US,
    intervals: int = 400,
) -> ExperimentResult:
    """Soft-error injection study of one scenario's two chips.

    Parameters
    ----------
    trace_length : int
        Dynamic instructions per benchmark for the trace-driven half.
    seed : int
        Root seed (injection streams derive a child).
    scenario : str
        Paper scenario ("A" or "B"; B is the soft-error scenario).
    acceleration : float
        Upset-rate acceleration of the injection spec.
    scrub_interval_us : float
        Scrub interval in microseconds.
    intervals : int
        Scrub intervals the no-trace FIT enumeration covers per array
        (more intervals, tighter Monte Carlo error).
    """
    scenario = Scenario(scenario)
    chips = cached_chips(scenario)
    spec = TransientSpec(
        acceleration=acceleration,
        scrub_interval_seconds=scrub_interval_us * 1e-6,
        seed=derive_seed(seed, "transients"),
    )

    curve_table = Table(
        [
            "chip",
            "Vdd ULE (mV)",
            "FIT analytic (true)",
            "FIT analytic (accel)",
            "FIT sampled (accel)",
        ],
        title=(
            "Uncorrectable soft-error rate vs ULE supply "
            f"(x{acceleration:g} acceleration, "
            f"{scrub_interval_us:g} us scrub)"
        ),
    )
    curve: dict[str, list[dict]] = {}
    comparisons = []
    for name in ("baseline", "proposed"):
        config = getattr(chips, name).config
        rows = _curve_rows(config, DEFAULT_VDD_GRID, spec, intervals)
        curve[name] = rows
        for row in rows:
            curve_table.add_row(
                [
                    config.name,
                    f"{row['vdd'] * 1e3:.0f}",
                    f"{row['fit_analytic']:.3g}",
                    f"{row['fit_analytic_accelerated']:.4g}",
                    f"{row['fit_sampled_accelerated']:.4g}",
                ]
            )
        anchor = next(
            row for row in rows
            if abs(row["vdd"] - ULE_OPERATING_POINT.vdd) < 1e-9
        )
        comparisons.append(
            PaperComparison(
                quantity=(
                    f"{config.name} accelerated DUE FIT at 350 mV "
                    "(analytic vs sampled)"
                ),
                paper=anchor["fit_analytic_accelerated"],
                measured=anchor["fit_sampled_accelerated"],
            )
        )

    # Trace-driven half: both chips, ULE suite, with and without
    # injection (the clean runs price the EPI overhead).
    session = current_session()
    suite = tuple(suite_for_mode(Mode.ULE))
    jobs = []
    for name in ("baseline", "proposed"):
        config = getattr(chips, name).config
        for injected in (spec, None):
            for bench in suite:
                jobs.append(
                    SimulationJob(
                        chip=config,
                        trace=TraceSpec(bench.name, trace_length, seed),
                        mode=Mode.ULE,
                        transients=injected,
                    )
                )
    results = session.run_jobs(jobs)

    events_table = Table(
        [
            "chip",
            "corrected",
            "refetches",
            "DUE",
            "SDC",
            "recovery cycles",
            "EPI overhead",
        ],
        title=(
            "Trace-observed recovery accounting at 350 mV "
            f"({trace_length} instr x {len(suite)} benchmarks)"
        ),
    )
    events: dict[str, dict] = {}
    per_chip = 2 * len(suite)
    for rank, name in enumerate(("baseline", "proposed")):
        config = getattr(chips, name).config
        chunk = results[rank * per_chip:(rank + 1) * per_chip]
        injected, clean = chunk[:len(suite)], chunk[len(suite):]
        corrected = refetches = due = sdc = 0
        recovery = 0.0
        for run in injected:
            for stats in (run.il1_stats, run.dl1_stats):
                corrected += stats.transient_corrected
                refetches += stats.transient_refetches
                due += stats.transient_due
                sdc += stats.transient_silent
            recovery += run.timing.recovery_cycles
        epi_injected = sum(r.epi for r in injected) / len(injected)
        epi_clean = sum(r.epi for r in clean) / len(clean)
        overhead = epi_injected / epi_clean - 1.0
        events[name] = {
            "corrected": corrected,
            "refetches": refetches,
            "due": due,
            "sdc": sdc,
            "recovery_cycles": recovery,
            "epi_overhead": overhead,
            **transient_run_metrics(injected, "ule"),
        }
        events_table.add_row(
            [
                config.name,
                corrected,
                refetches,
                due,
                sdc,
                f"{recovery:.0f}",
                f"{100 * overhead:.2f} %",
            ]
        )

    return ExperimentResult(
        experiment_id="transients",
        title=(
            f"Soft-error transients — scenario {scenario.value}, "
            "SECDED vs DECTED under identical strikes"
        ),
        body="\n\n".join(
            (curve_table.render(), events_table.render())
        ),
        comparisons=tuple(comparisons),
        data={
            "curve": curve,
            "events": events,
            "spec": {
                "acceleration": acceleration,
                "scrub_interval_us": scrub_interval_us,
                "intervals": intervals,
            },
        },
    )
