"""The counter-based upset sampler: determinism, order independence,
classification rules and the sampled-vs-analytic FIT contract."""

import numpy as np
import pytest

from repro.tech.operating import Mode, ULE_OPERATING_POINT
from repro.transients import (
    TransientOutcome,
    TransientSpec,
    analytic_cache_fit,
    counter_uniforms,
    make_sampler,
)


@pytest.fixture(scope="module")
def config():
    from repro.core.architect import build_chips
    from repro.core.methodology import design_scenario
    from repro.core.scenarios import Scenario

    return build_chips(design_scenario(Scenario.B)).proposed.config.il1


def _sampler(config, acceleration=1e16, seed=9, **kwargs):
    spec = TransientSpec(
        acceleration=acceleration,
        scrub_interval_seconds=kwargs.pop("scrub", 1e-4),
        seed=seed,
        **kwargs,
    )
    return make_sampler(
        config, Mode.ULE, ULE_OPERATING_POINT, spec, "il1"
    )


class TestCounterUniforms:
    def test_deterministic(self):
        sets = np.arange(100, dtype=np.uint64)
        words = sets % np.uint64(8)
        intervals = sets // np.uint64(10)
        a = counter_uniforms(123, sets, words, intervals)
        b = counter_uniforms(123, sets, words, intervals)
        assert np.array_equal(a, b)

    def test_order_independent(self):
        """Evaluating coordinates in any order gives the same values."""
        sets = np.arange(64, dtype=np.uint64)
        words = (sets * np.uint64(3)) % np.uint64(8)
        intervals = sets % np.uint64(5)
        forward = counter_uniforms(7, sets, words, intervals)
        perm = np.random.default_rng(0).permutation(64)
        shuffled = counter_uniforms(
            7, sets[perm], words[perm], intervals[perm]
        )
        assert np.array_equal(forward, shuffled[np.argsort(perm)])

    def test_in_unit_interval(self):
        sets = np.arange(1000, dtype=np.uint64)
        zeros = np.zeros(1000, dtype=np.uint64)
        uniform = counter_uniforms(42, sets, zeros, zeros)
        assert float(uniform.min()) >= 0.0
        assert float(uniform.max()) < 1.0
        # A crude uniformity sanity check.
        assert 0.4 < float(uniform.mean()) < 0.6

    def test_seed_decorrelates(self):
        sets = np.arange(256, dtype=np.uint64)
        zeros = np.zeros(256, dtype=np.uint64)
        a = counter_uniforms(1, sets, zeros, zeros)
        b = counter_uniforms(2, sets, zeros, zeros)
        assert not np.array_equal(a, b)


class TestSamplerGeometry:
    def test_gated_ways_have_no_params(self, config):
        sampler = _sampler(config)
        mask = config.active_way_mask(Mode.ULE)
        for way, active in enumerate(mask):
            params = sampler.way_params(way)
            assert (params is not None) == active

    def test_word_of_matches_line_layout(self, config):
        sampler = _sampler(config)
        assert sampler.word_of(0) == 0
        assert sampler.word_of(3) == 0
        assert sampler.word_of(4) == 1
        assert (
            sampler.word_of(config.line_bytes - 1)
            == config.words_per_line - 1
        )

    def test_interval_from_wall_clock(self, config):
        spec = TransientSpec(scrub_interval_seconds=1e-3)
        sampler = make_sampler(
            config, Mode.ULE, ULE_OPERATING_POINT, spec, "il1"
        )
        # 1 ms at 5 MHz and one access per cycle = 5000 accesses.
        assert sampler.accesses_per_interval == 5000
        assert sampler.interval_of(4999) == 0
        assert sampler.interval_of(5000) == 1

    def test_il1_and_dl1_streams_decorrelate(self, config):
        spec = TransientSpec(acceleration=1e16, seed=9)
        il1 = make_sampler(
            config, Mode.ULE, ULE_OPERATING_POINT, spec, "il1"
        )
        dl1 = make_sampler(
            config, Mode.ULE, ULE_OPERATING_POINT, spec, "dl1"
        )
        way = next(
            w
            for w in range(config.ways)
            if il1.way_params(w) is not None
        )
        sets = np.arange(512, dtype=np.uint64) % np.uint64(config.sets)
        zeros = np.zeros(512, dtype=np.uint64)
        intervals = np.arange(512, dtype=np.uint64)
        a = counter_uniforms(
            il1.way_params(way).way_seed, sets, zeros, intervals
        )
        b = counter_uniforms(
            dl1.way_params(way).way_seed, sets, zeros, intervals
        )
        assert not np.array_equal(a, b)


class TestClassification:
    def test_scalar_matches_array_kernel(self, config):
        """The reference path's scalar observe re-uses the array
        kernel, so classifications can never diverge."""
        sampler = _sampler(config, acceleration=1e17)
        way = next(
            w
            for w in range(config.ways)
            if sampler.way_params(w) is not None
        )
        params = sampler.way_params(way)
        outcomes = {o: 0 for o in TransientOutcome}
        for position in range(3000):
            set_index = position % config.sets
            address = (position * 4) % config.line_bytes
            outcome = sampler.observe_read_hit(
                way, set_index, address, position,
                dirty=bool(position % 2),
            )
            if outcome is None:
                continue
            outcomes[outcome] += 1
            upsets = int(
                params.upset_counts(
                    np.asarray([set_index], dtype=np.uint64),
                    np.asarray(
                        [sampler.word_of(address)], dtype=np.uint64
                    ),
                    np.asarray(
                        [sampler.interval_of(position)],
                        dtype=np.uint64,
                    ),
                )[0]
            )
            assert upsets > 0
            if outcome is TransientOutcome.CORRECTED:
                assert upsets <= params.correctable
            elif outcome is TransientOutcome.SILENT:
                assert upsets > params.detectable
            else:
                assert (
                    params.correctable < upsets <= params.detectable
                )
        assert sum(outcomes.values()) > 0

    def test_detected_on_dirty_is_due(self, config):
        sampler = _sampler(config, acceleration=1e17)
        way = next(
            w
            for w in range(config.ways)
            if sampler.way_params(w) is not None
        )
        hits = [
            (position, position % config.sets, (position * 4) % 32)
            for position in range(20000)
        ]
        found_refetch = found_due = False
        for position, set_index, address in hits:
            clean = sampler.observe_read_hit(
                way, set_index, address, position, dirty=False
            )
            dirty = sampler.observe_read_hit(
                way, set_index, address, position, dirty=True
            )
            if clean is TransientOutcome.REFETCH:
                assert dirty is TransientOutcome.DUE
                found_refetch = found_due = True
            elif clean is not None:
                # Corrected / silent do not depend on dirtiness.
                assert dirty is clean
        assert found_refetch and found_due

    def test_repeated_reads_same_interval_same_outcome(self, config):
        """Accumulated damage persists within a scrub interval."""
        sampler = _sampler(config, acceleration=1e17)
        way = next(
            w
            for w in range(config.ways)
            if sampler.way_params(w) is not None
        )
        per_interval = sampler.accesses_per_interval
        for position in range(0, min(per_interval, 500)):
            first = sampler.observe_read_hit(way, 3, 8, 0, False)
            again = sampler.observe_read_hit(
                way, 3, 8, position, False
            )
            assert again is first


class TestFitContract:
    def test_sampled_matches_accelerated_analytic(self, config):
        """The acceptance tolerance: the enumerated FIT agrees with
        the closed form within 4 binomial standard errors (documented
        in docs/transients.md)."""
        spec = TransientSpec(
            acceleration=3e16, scrub_interval_seconds=1e-4, seed=11
        )
        sampler = make_sampler(
            config, Mode.ULE, ULE_OPERATING_POINT, spec, "il1"
        )
        intervals = 600
        events = sampler.uncorrectable_events(intervals)
        assert events > 100  # enough statistics for the bound
        sampled = sampler.sampled_cache_fit(intervals)
        analytic = analytic_cache_fit(
            config, Mode.ULE, ULE_OPERATING_POINT.vdd, spec,
            accelerated=True,
        )
        sigma = sampled / max(events, 1) ** 0.5
        assert abs(sampled - analytic) < 4 * sigma

    def test_unaccelerated_analytic_is_tiny(self, config):
        spec = TransientSpec(acceleration=3e16)
        accelerated = analytic_cache_fit(
            config, Mode.ULE, 0.35, spec, accelerated=True
        )
        true = analytic_cache_fit(config, Mode.ULE, 0.35, spec)
        assert 0 < true < accelerated

    def test_fit_grows_as_vdd_drops(self, config):
        spec = TransientSpec(acceleration=3e16)
        fits = [
            analytic_cache_fit(
                config, Mode.ULE, vdd, spec, accelerated=True
            )
            for vdd in (0.40, 0.35, 0.30)
        ]
        assert fits[0] < fits[1] < fits[2]

    def test_enumeration_validates_arguments(self, config):
        sampler = _sampler(config)
        with pytest.raises(ValueError):
            sampler.uncorrectable_events(-1)
        with pytest.raises(ValueError):
            sampler.sampled_cache_fit(0)
