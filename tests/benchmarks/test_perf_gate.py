"""The perf_smoke regression gate (--check-against) logic.

The script itself lives outside the package (``benchmarks/``), so it is
loaded by path; the timed evaluations and the timed sweep are stubbed
to make every gate path deterministic — the real end-to-end timing runs
in CI.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "perf_smoke.py"
)

#: The stubbed fresh metrics every gate test sees.
FRESH = {"speedup": 20.0, "sweep_speedup": 500.0, "batch_vs_perjob": 5.0}


def _fake_sweep_metrics(
    trace_length, candidates, backend="auto", *, identical=True
) -> dict:
    return {
        "sweep_candidates": candidates,
        "sweep_trace_length": trace_length,
        "sweep_jobs": candidates * 4,
        "sweep_batched_seconds": 0.1,
        "sweep_perjob_seconds": 0.1 * FRESH["batch_vs_perjob"],
        "sweep_reference_seconds_extrapolated": (
            0.1 * FRESH["sweep_speedup"]
        ),
        "sweep_speedup": FRESH["sweep_speedup"],
        "batch_vs_perjob": FRESH["batch_vs_perjob"],
        "min_sweep_speedup": 100.0,
        "min_batch_vs_perjob": 3.0,
        "sweep_identical": identical,
    }


@pytest.fixture()
def perf_smoke(monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "perf_smoke_under_test", _SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)

    class _FakeEvaluation:
        rows = [None] * 6

        @staticmethod
        def render() -> str:
            return "identical tables"

    def fake_timed(backend, trace_length):
        seconds = 0.1 if backend == "vectorized" else 2.0  # 20x
        return seconds, _FakeEvaluation()

    monkeypatch.setattr(module, "_timed_evaluation", fake_timed)
    monkeypatch.setattr(module, "_timed_sweep", _fake_sweep_metrics)
    monkeypatch.setattr(module, "cached_chips", lambda scenario: None)
    yield module
    sys.modules.pop(spec.name, None)


def _baseline(tmp_path, speedup=None, **overrides) -> str:
    payload = dict(FRESH)
    if speedup is not None:
        payload["speedup"] = speedup
    payload.update(overrides)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestRegressionGate:
    def test_passes_within_tolerance(self, perf_smoke, tmp_path):
        out = tmp_path / "fresh.json"
        status = perf_smoke.main(
            ["--check-against", _baseline(tmp_path, 22.0),
             "--out", str(out)]
        )
        assert status == 0
        fresh = json.loads(out.read_text())
        assert fresh["speedup"] == 20.0
        assert fresh["sweep_speedup"] == 500.0
        assert fresh["batch_vs_perjob"] == 5.0

    def test_fails_beyond_tolerance(self, perf_smoke, tmp_path, capsys):
        status = perf_smoke.main(
            ["--check-against", _baseline(tmp_path, 40.0),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "regressed" in capsys.readouterr().err

    def test_boundary_is_exactly_thirty_percent(
        self, perf_smoke, tmp_path
    ):
        """A fresh 20x against a baseline of exactly 20/0.7: just at
        the floor passes; one hair above the baseline fails."""
        at_floor = 20.0 / (1.0 - perf_smoke.REGRESSION_TOLERANCE)
        assert perf_smoke.main(
            ["--check-against", _baseline(tmp_path, at_floor),
             "--out", str(tmp_path / "fresh.json")]
        ) == 0
        assert perf_smoke.main(
            ["--check-against", _baseline(tmp_path, at_floor + 0.1),
             "--out", str(tmp_path / "fresh.json")]
        ) == 1

    def test_mismatched_trace_length_fails(
        self, perf_smoke, tmp_path, capsys
    ):
        """Speedups from different workloads are incomparable: a
        baseline recorded at another trace length must not gate."""
        path = _baseline(tmp_path, trace_length=60_000)
        status = perf_smoke.main(
            ["--check-against", path, "--trace-length", "5000",
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "comparable" in capsys.readouterr().err

    def test_matching_trace_length_gates(self, perf_smoke, tmp_path):
        path = _baseline(tmp_path, trace_length=60_000)
        assert perf_smoke.main(
            ["--check-against", path,
             "--out", str(tmp_path / "fresh.json")]
        ) == 0

    def test_baseline_without_speedup_fails(
        self, perf_smoke, tmp_path, capsys
    ):
        """A baseline lacking a positive speedup must fail loudly —
        a zero floor would make the gate pass vacuously forever."""
        path = tmp_path / "baseline.json"
        path.write_text("{}")
        status = perf_smoke.main(
            ["--check-against", str(path),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "no usable 'speedup'" in capsys.readouterr().err

    def test_missing_baseline_fails(self, perf_smoke, tmp_path, capsys):
        status = perf_smoke.main(
            ["--check-against", str(tmp_path / "absent.json"),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "cannot read baseline" in capsys.readouterr().err

    def test_no_baseline_keeps_absolute_floors_only(
        self, perf_smoke, tmp_path
    ):
        assert perf_smoke.main(
            ["--out", str(tmp_path / "fresh.json")]
        ) == 0


class TestSweepGate:
    def test_sweep_regression_fails(self, perf_smoke, tmp_path, capsys):
        """The batching throughput is gated exactly like the backend
        speedup: a big drop below the baseline's sweep_speedup fails
        even when the backend speedup is healthy."""
        status = perf_smoke.main(
            ["--check-against",
             _baseline(tmp_path, sweep_speedup=2_000.0),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "sweep_speedup" in capsys.readouterr().err

    def test_batch_vs_perjob_regression_fails(
        self, perf_smoke, tmp_path, capsys
    ):
        status = perf_smoke.main(
            ["--check-against",
             _baseline(tmp_path, batch_vs_perjob=20.0),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "batch_vs_perjob" in capsys.readouterr().err

    def test_baseline_without_sweep_metric_fails(
        self, perf_smoke, tmp_path, capsys
    ):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"speedup": 20.0}))
        status = perf_smoke.main(
            ["--check-against", str(path),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "no usable 'sweep_speedup'" in capsys.readouterr().err

    def test_mismatched_sweep_candidates_fails(
        self, perf_smoke, tmp_path, capsys
    ):
        """Sharing degree scales with the candidate count: sweeps of
        different widths are incomparable."""
        path = _baseline(tmp_path, sweep_candidates=50)
        status = perf_smoke.main(
            ["--check-against", path, "--sweep-candidates", "10",
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "comparable" in capsys.readouterr().err

    def test_below_sweep_floor_fails(
        self, perf_smoke, tmp_path, monkeypatch, capsys
    ):
        def slow_sweep(trace_length, candidates, backend="auto"):
            metrics = _fake_sweep_metrics(trace_length, candidates)
            metrics["sweep_speedup"] = 40.0  # < MIN_SWEEP_SPEEDUP
            return metrics

        monkeypatch.setattr(perf_smoke, "_timed_sweep", slow_sweep)
        status = perf_smoke.main(
            ["--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "below floor" in capsys.readouterr().err

    def test_diverged_sweep_results_fail(
        self, perf_smoke, tmp_path, monkeypatch, capsys
    ):
        """Bit-identity is the contract — a fast but wrong batch path
        must never pass the benchmark."""
        monkeypatch.setattr(
            perf_smoke,
            "_timed_sweep",
            lambda trace_length, candidates, backend="auto": (
                _fake_sweep_metrics(
                    trace_length, candidates, identical=False
                )
            ),
        )
        status = perf_smoke.main(
            ["--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "diverged" in capsys.readouterr().err


def _fake_surrogate_record(
    hv_ratio=0.99, jobs_ratio=0.3333, identical=True, seed=2013,
    samples=90, trace_length=4_000,
) -> dict:
    return {
        "experiment": "surrogate benchmark (stubbed)",
        "seed": seed,
        "surrogate_samples": samples,
        "surrogate_trace_length": trace_length,
        "candidates_total": samples,
        "candidates_simulated": samples // 3,
        "budget": samples // 3,
        "rounds": 4,
        "converged": True,
        "jobs_submitted": samples // 3 * 10,
        "jobs_executed": samples // 3 * 10,
        "exhaustive_jobs": samples * 10,
        "surrogate_jobs_ratio": jobs_ratio,
        "surrogate_hv_ratio": hv_ratio,
        "surrogate_seconds": 1.0,
        "exhaustive_seconds": 3.0,
        "max_surrogate_jobs_ratio": 0.3333,
        "min_surrogate_hv_ratio": 0.95,
        "surrogate_identical": identical,
    }


class TestSurrogateGate:
    @pytest.fixture()
    def stubbed(self, perf_smoke, monkeypatch):
        def fake_record(seed, samples, trace_length):
            return _fake_surrogate_record(
                seed=seed, samples=samples, trace_length=trace_length
            )

        monkeypatch.setattr(
            perf_smoke, "_surrogate_record", fake_record
        )
        return perf_smoke

    def test_healthy_run_passes(self, stubbed, tmp_path):
        out = tmp_path / "fresh.json"
        assert stubbed.main(["--surrogate", "--out", str(out)]) == 0
        fresh = json.loads(out.read_text())
        assert fresh["surrogate_hv_ratio"] == 0.99
        assert fresh["surrogate_jobs_ratio"] == 0.3333

    def test_low_hv_ratio_fails(
        self, perf_smoke, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            perf_smoke,
            "_surrogate_record",
            lambda *a: _fake_surrogate_record(hv_ratio=0.90),
        )
        status = perf_smoke.main(
            ["--surrogate", "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "surrogate_hv_ratio" in capsys.readouterr().err

    def test_jobs_ratio_above_ceiling_fails(
        self, perf_smoke, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            perf_smoke,
            "_surrogate_record",
            lambda *a: _fake_surrogate_record(jobs_ratio=0.5),
        )
        status = perf_smoke.main(
            ["--surrogate", "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "surrogate_jobs_ratio" in capsys.readouterr().err

    def test_serial_parallel_divergence_fails(
        self, perf_smoke, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            perf_smoke,
            "_surrogate_record",
            lambda *a: _fake_surrogate_record(identical=False),
        )
        status = perf_smoke.main(
            ["--surrogate", "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "diverged" in capsys.readouterr().err

    def test_regression_gate_on_hv_ratio(
        self, stubbed, tmp_path, capsys
    ):
        # 0.99 fresh against an (hypothetical) much better baseline
        # computed so the 30% tolerance fails: 0.99 < 1.5 * 0.7.
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_fake_surrogate_record(hv_ratio=1.5))
        )
        status = stubbed.main(
            ["--surrogate", "--check-against", str(baseline),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "regressed" in capsys.readouterr().err

    def test_mismatched_workload_fails(
        self, stubbed, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_fake_surrogate_record(samples=40))
        )
        status = stubbed.main(
            ["--surrogate", "--check-against", str(baseline),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        assert "comparable" in capsys.readouterr().err

    def test_different_seed_still_comparable(self, stubbed, tmp_path):
        """The CI matrix checks both seeds against one committed
        baseline: seeds differ, workload shape matches, gate runs."""
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_fake_surrogate_record(seed=2014))
        )
        assert stubbed.main(
            ["--surrogate", "--check-against", str(baseline),
             "--out", str(tmp_path / "fresh.json")]
        ) == 0

    def test_baseline_without_hv_ratio_fails(
        self, stubbed, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        status = stubbed.main(
            ["--surrogate", "--check-against", str(baseline),
             "--out", str(tmp_path / "fresh.json")]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "no usable 'surrogate_hv_ratio'" in err


class TestCheckedInBaseline:
    def test_checked_in_baseline_is_readable(self):
        """CI points --check-against at the committed file; it must
        parse and carry every gated metric above its absolute floor."""
        repo_root = _SCRIPT.parent.parent
        payload = json.loads(
            (repo_root / "BENCH_engine.json").read_text()
        )
        assert payload["speedup"] >= payload["min_speedup"]
        assert (
            payload["sweep_speedup"] >= payload["min_sweep_speedup"]
        )
        assert (
            payload["batch_vs_perjob"]
            >= payload["min_batch_vs_perjob"]
        )

    def test_checked_in_surrogate_baseline_is_readable(self):
        repo_root = _SCRIPT.parent.parent
        payload = json.loads(
            (repo_root / "BENCH_surrogate.json").read_text()
        )
        assert (
            payload["surrogate_hv_ratio"]
            >= payload["min_surrogate_hv_ratio"]
        )
        assert (
            payload["surrogate_jobs_ratio"]
            <= payload["max_surrogate_jobs_ratio"] + 1e-9
        )
        assert payload["surrogate_identical"] is True