"""Bench ``tab-modeswitch``: quantify "overheads are negligible" (§III-B)."""

from conftest import TRACE_LENGTH, record_report, run_once

from repro.experiments.modeswitch_table import run_modeswitch


def test_modeswitch_overhead(benchmark):
    result = run_once(benchmark, run_modeswitch, trace_length=TRACE_LENGTH)
    record_report("tab-modeswitch", result.render())

    for scenario in ("A", "B"):
        entry = result.data[scenario]
        # Against even one short ULE phase the switch cost is < 2 %;
        # against realistic multi-second phases it vanishes entirely.
        assert entry["overhead"] < 0.02
    # Scenario A pays the re-encode pass that scenario B's always-DECTED
    # stored format avoids.
    assert result.data["A"]["switch_energy"] > (
        result.data["B"]["switch_energy"]
    )
