"""Common result container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperComparison:
    """One paper-reported value next to its reproduction.

    Attributes:
        quantity: what is being compared.
        paper: the paper's value.
        measured: the reproduction's value.
        unit: display unit.
    """

    quantity: str
    paper: float
    measured: float
    unit: str = ""

    @property
    def delta(self) -> float:
        """measured - paper."""
        return self.measured - self.paper

    def render(self) -> str:
        """One comparison line for the report text."""
        unit = f" {self.unit}" if self.unit else ""
        return (
            f"{self.quantity}: paper {self.paper:g}{unit}, "
            f"measured {self.measured:.3g}{unit} "
            f"(delta {self.delta:+.3g})"
        )


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment driver.

    Attributes:
        experiment_id: registry id (e.g. "fig4").
        title: human-readable experiment title.
        body: the rendered tables (the paper's rows/series).
        comparisons: paper-vs-measured anchors.
        data: machine-readable results for tests/benches.
    """

    experiment_id: str
    title: str
    body: str
    comparisons: tuple[PaperComparison, ...] = ()
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """Full report text."""
        lines = [f"== {self.experiment_id}: {self.title} ==", "", self.body]
        if self.comparisons:
            lines.append("")
            lines.append("Paper vs measured:")
            for comparison in self.comparisons:
                lines.append("  " + comparison.render())
        return "\n".join(lines)
