"""Scenario B end-to-end: hard faults and soft errors together.

The whole reason scenario B uses DECTED: an 8T ULE way carries permanent
stuck bits *and* must still absorb particle strikes, like the baseline's
clean-cell SECDED does.  These tests drive the real codecs through that
combined threat model.
"""

import numpy as np
import pytest

from repro.cache.edc_layer import ProtectedArray
from repro.edc.base import DecodeStatus
from repro.edc.protection import ProtectionScheme
from repro.reliability.fault_maps import generate_fault_map


@pytest.fixture(scope="module")
def faulty_dected_array(design_b):
    """A DECTED-protected ULE-way data array on a faulty-but-yielding
    die at the designed scenario-B fault rate."""
    rng = np.random.default_rng(99)
    while True:
        fault_map = generate_fault_map(
            design_b.pf_8t_ule, words=256, word_bits=45, rng=rng
        )
        if fault_map.max_faults_per_word() == 1 and fault_map.faulty_words():
            return ProtectedArray(
                256, 32, ProtectionScheme.DECTED, fault_map=fault_map
            ), fault_map


class TestHardPlusSoft:
    def test_strike_on_faulty_word_still_corrected(
        self, faulty_dected_array, rng
    ):
        """One stuck bit + one strike in the same word: corrected."""
        array, fault_map = faulty_dected_array
        word = fault_map.faulty_words()[0]
        stuck_bit = fault_map.fault_masks[word].bit_length() - 1
        for _ in range(30):
            value = int(rng.integers(0, 1 << 32))
            array.write(word, value)
            strike = int(rng.integers(0, 45))
            if strike == stuck_bit:
                continue
            record = array.read(word, soft_error_bits=(strike,))
            assert record.correct
            assert record.value == value
        assert array.silent_errors == 0

    def test_secded_would_fail_the_same_die(
        self, faulty_dected_array, rng
    ):
        """Counterfactual: 8T+SECDED on the identical threat (stuck bit
        + strike in one word) is *detected-not-corrected* at best —
        the data is lost, breaking the baseline's soft-error SLA."""
        _, fault_map = faulty_dected_array
        word = fault_map.faulty_words()[0]
        from repro.edc.protection import make_code

        secded = make_code(ProtectionScheme.SECDED, 32)
        failures = 0
        trials = 0
        for _ in range(40):
            value = int(rng.integers(0, 1 << 32))
            codeword = secded.encode(value)
            stuck_bit = int(rng.integers(0, secded.n))
            strike = int(rng.integers(0, secded.n))
            if strike == stuck_bit:
                continue
            corrupted = codeword ^ (1 << stuck_bit) ^ (1 << strike)
            result = secded.decode(corrupted)
            trials += 1
            if result.status is DecodeStatus.DETECTED or (
                result.data != value
            ):
                failures += 1
        assert failures == trials  # every double error is unrecoverable

    def test_two_strikes_on_faulty_word_detected(
        self, faulty_dected_array, rng
    ):
        """Beyond the budget (1 hard + 2 soft): detected, never silent."""
        array, fault_map = faulty_dected_array
        word = fault_map.faulty_words()[0]
        stuck_mask = fault_map.fault_masks[word]
        detections = 0
        for _ in range(60):
            value = int(rng.integers(0, 1 << 32))
            array.write(word, value)
            strikes = rng.choice(
                [b for b in range(45) if not (stuck_mask >> b) & 1],
                size=2,
                replace=False,
            )
            record = array.read(
                word, soft_error_bits=tuple(int(s) for s in strikes)
            )
            # Either the stuck bit agreed with the written data (only 2
            # effective errors -> corrected) or it is detected.
            if record.status is DecodeStatus.DETECTED:
                detections += 1
            else:
                assert record.correct
        assert detections > 0
        assert array.silent_errors == 0
