"""Die-population fault injection over the variation models.

Three layers, bottom-up:

* :mod:`repro.faults.maps` — :class:`DieFaultMap`, the content-
  addressed per-die description of disabled cache lines the engine's
  job keys hash (dependency-light so ``engine`` and ``cpu`` can import
  it);
* :mod:`repro.faults.sampling` — seeded, order-independent sampling of
  die populations from the sized cells' analytic failure
  probabilities;
* :mod:`repro.faults.population` — :class:`PopulationStudy`, batching
  die x benchmark x mode through the simulation session and reducing
  population distributions, yield curves and fault histograms.
"""

from repro.faults.maps import (
    CACHE_LABELS,
    FAULT_FREE_DIE,
    CacheFaultMap,
    DieFaultMap,
)

#: Sampling and population symbols resolve lazily (PEP 562): the
#: engine imports :mod:`repro.faults.maps` from inside its job layer,
#: so this ``__init__`` must stay as light as ``maps`` itself — an
#: eager population import would close a cycle back through
#: ``repro.core``, and an eager sampling import would drag the sram
#: failure models into every engine import.
_LAZY_EXPORTS = {
    "DEFAULT_PERCENTILES": "repro.faults.population",
    "DEFAULT_VDD_GRID": "repro.faults.population",
    "DieOutcome": "repro.faults.population",
    "PopulationResult": "repro.faults.population",
    "PopulationStudy": "repro.faults.population",
    "scenario_population_study": "repro.faults.population",
    "functional_fraction": "repro.faults.sampling",
    "sample_cache_fault_map": "repro.faults.sampling",
    "sample_die_fault_map": "repro.faults.sampling",
    "sample_population": "repro.faults.sampling",
}


def __getattr__(name: str):
    """Lazy re-export of the sampling/population layers' symbols."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "CACHE_LABELS",
    "DEFAULT_PERCENTILES",
    "DEFAULT_VDD_GRID",
    "FAULT_FREE_DIE",
    "CacheFaultMap",
    "DieFaultMap",
    "DieOutcome",
    "PopulationResult",
    "PopulationStudy",
    "functional_fraction",
    "sample_cache_fault_map",
    "sample_die_fault_map",
    "sample_population",
    "scenario_population_study",
]
