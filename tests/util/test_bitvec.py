"""Tests for repro.util.bitvec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bitvec import (
    bits_to_int,
    int_to_bits,
    pack_words,
    parity,
    popcount,
    random_word,
)


class TestIntToBits:
    def test_basic(self):
        bits = int_to_bits(0b1011, 4)
        assert list(bits) == [1, 1, 0, 1]  # LSB first

    def test_zero(self):
        assert list(int_to_bits(0, 3)) == [0, 0, 0]

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)


class TestPopcountParity:
    def test_popcount(self):
        assert popcount(0b1011) == 3

    def test_popcount_zero(self):
        assert popcount(0) == 0

    def test_popcount_negative_raises(self):
        with pytest.raises(ValueError):
            popcount(-3)

    def test_parity_even(self):
        assert parity(0b101000001010) == 0

    def test_parity_odd(self):
        assert parity(0b111) == 1


class TestRandomWord:
    def test_width_respected(self):
        rng = np.random.default_rng(0)
        for width in (1, 7, 31, 32, 64, 100):
            word = random_word(rng, width)
            assert 0 <= word < (1 << width)

    def test_deterministic(self):
        a = random_word(np.random.default_rng(5), 64)
        b = random_word(np.random.default_rng(5), 64)
        assert a == b

    def test_bad_width(self):
        with pytest.raises(ValueError):
            random_word(np.random.default_rng(0), 0)


class TestPackWords:
    def test_shape_and_content(self):
        matrix = pack_words([0b01, 0b10], 2)
        assert matrix.shape == (2, 2)
        assert list(matrix[0]) == [1, 0]
        assert list(matrix[1]) == [0, 1]


@given(st.integers(min_value=0, max_value=(1 << 80) - 1))
def test_roundtrip(word):
    """bits_to_int(int_to_bits(w)) == w for any 80-bit word."""
    assert bits_to_int(int_to_bits(word, 80)) == word


@given(st.integers(min_value=0, max_value=(1 << 40) - 1))
def test_parity_matches_popcount(word):
    assert parity(word) == popcount(word) % 2
