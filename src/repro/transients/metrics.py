"""Shared reductions of transient counters over finished runs.

Both the population study and the exploration campaigns reduce the same
quantities from a bag of :class:`~repro.cpu.chip.RunResult`\\ s: the
observed DUE and SDC rates (in FIT — at the spec's *accelerated*
physics, since that is what actually struck during the simulated
wall-clock) and the refetch rate per instruction.  The module is
dependency-free on purpose: it duck-types the run results, so the
transients package never has to import the cpu stack.
"""

from __future__ import annotations

from typing import Iterable


def transient_run_metrics(
    results: Iterable, suffix: str = "ule"
) -> dict[str, float]:
    """DUE/SDC FIT and refetch-rate metrics over a set of runs.

    Args:
        results: finished :class:`~repro.cpu.chip.RunResult`-like
            objects (need ``il1_stats`` / ``dl1_stats`` /
            ``execution_seconds`` / ``timing.instructions``).
        suffix: metric-name suffix, conventionally the mode the runs
            executed in.

    Returns:
        ``{"due_fit_<suffix>", "sdc_fit_<suffix>",
        "refetch_rate_<suffix>"}``.  The FIT figures are *events per
        billion hours of simulated wall-clock at the accelerated upset
        rate* — comparable across candidates and dies under one spec,
        and validated against the analytic model by the population
        study's sampler-level cross-check.  Rates reduce to 0.0 over
        an empty run set.
    """
    due = silent = refetches = 0
    seconds = 0.0
    instructions = 0
    for result in results:
        for stats in (result.il1_stats, result.dl1_stats):
            due += stats.transient_due
            silent += stats.transient_silent
            refetches += stats.transient_refetches
        seconds += result.execution_seconds
        instructions += result.timing.instructions
    hours = seconds / 3600.0
    def fit(events: int) -> float:
        return events / hours * 1e9 if hours > 0 else 0.0
    return {
        f"due_fit_{suffix}": fit(due),
        f"sdc_fit_{suffix}": fit(silent),
        f"refetch_rate_{suffix}": refetches / max(instructions, 1),
    }
