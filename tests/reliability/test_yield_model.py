"""Tests for the paper's Eq. (1)-(2) yield model."""

from math import comb

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.reliability.yield_model import (
    WordOrganization,
    cache_yield,
    exact_pf_for_yield,
    paper_pf_target,
    word_survival_probability,
)


class TestEquationOne:
    def test_zero_pf(self):
        assert word_survival_probability(0.0, 39, 1) == 1.0

    def test_certain_failure(self):
        assert word_survival_probability(1.0, 39, 1) == pytest.approx(0.0)

    def test_uncoded_word_closed_form(self):
        pf = 1e-4
        expected = (1 - pf) ** 39
        assert word_survival_probability(pf, 39, 0) == pytest.approx(expected)

    def test_secded_word_closed_form(self):
        """i_max = 1: survive with 0 or exactly 1 faulty bit."""
        pf, n = 1e-3, 39
        expected = (1 - pf) ** n + n * pf * (1 - pf) ** (n - 1)
        assert word_survival_probability(pf, n, 1) == pytest.approx(expected)

    def test_budget_monotonicity(self):
        pf = 5e-3
        values = [word_survival_probability(pf, 45, t) for t in range(4)]
        assert values == sorted(values)

    def test_matches_direct_enumeration(self):
        """Cross-check Eq. (1) against explicit binomial enumeration."""
        pf, n, t = 0.01, 20, 2
        direct = sum(
            comb(n, i) * pf**i * (1 - pf) ** (n - i) for i in range(t + 1)
        )
        assert word_survival_probability(pf, n, t) == pytest.approx(direct)

    def test_matches_monte_carlo(self, rng):
        """Empirical word-survival frequency agrees with Eq. (1)."""
        pf, n, t = 0.05, 39, 1
        faults = rng.random((200_000, n)) < pf
        survived = (faults.sum(axis=1) <= t).mean()
        assert survived == pytest.approx(
            word_survival_probability(pf, n, t), abs=0.005
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            word_survival_probability(-0.1, 10, 0)
        with pytest.raises(ValueError):
            word_survival_probability(0.5, 0, 0)
        with pytest.raises(ValueError):
            word_survival_probability(0.5, 10, -1)


class TestEquationTwo:
    def test_composition(self):
        pf = 1e-4
        y = cache_yield(
            pf,
            data_words=256,
            data_word_bits=39,
            tag_words=32,
            tag_word_bits=33,
            correctable=1,
        )
        p_data = word_survival_probability(pf, 39, 1)
        p_tag = word_survival_probability(pf, 33, 1)
        assert y == pytest.approx(p_data**256 * p_tag**32)

    def test_organization_wrapper(self):
        org = WordOrganization(
            data_words=256,
            data_word_bits=39,
            tag_words=32,
            tag_word_bits=33,
            hard_fault_budget=1,
        )
        assert org.total_bits == 256 * 39 + 32 * 33
        assert org.yield_at(1e-4) == pytest.approx(
            cache_yield(1e-4, 256, 39, 32, 33, 1)
        )

    def test_monotone_in_pf(self):
        org = WordOrganization(256, 39, 32, 33, 1)
        yields = [org.yield_at(pf) for pf in (1e-6, 1e-4, 1e-2)]
        assert yields == sorted(yields, reverse=True)


class TestPaperAnchor:
    def test_pf_example_reproduced(self):
        """'to have a 99 % yield for an 8 KB cache, faulty bit rate Pf
        must be 1.22e-6' — the linearized 8192-bit form (DESIGN.md)."""
        assert paper_pf_target(0.99) == pytest.approx(1.22e-6, rel=0.005)

    def test_exact_form_close_to_linearized(self):
        exact = exact_pf_for_yield(0.99, 8192)
        assert exact == pytest.approx(paper_pf_target(0.99), rel=0.01)

    def test_exact_with_budget_bisection(self):
        pf = exact_pf_for_yield(0.99, 8192, correctable=1)
        assert word_survival_probability(pf, 8192, 1) == pytest.approx(
            0.99, abs=1e-4
        )
        assert pf > exact_pf_for_yield(0.99, 8192)

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_pf_target(1.0)
        with pytest.raises(ValueError):
            exact_pf_for_yield(0.5, 0)


@settings(max_examples=50)
@given(
    pf=st.floats(min_value=1e-9, max_value=0.2),
    bits=st.integers(min_value=1, max_value=128),
    budget=st.integers(min_value=0, max_value=3),
)
def test_survival_is_probability(pf, bits, budget):
    value = word_survival_probability(pf, bits, budget)
    assert 0.0 <= value <= 1.0
