"""Counter-based soft-error sampling and read classification.

The heart of the subsystem is a *counter-based* random stream: the
upset count of one stored word in one scrub interval is a pure function
of ``(seed, way, set, word, interval)``, computed by hashing the
coordinates (splitmix64 finalizer) into a uniform and inverting the
Poisson CDF.  Nothing is drawn sequentially, so

* serial and ``--jobs N`` runs are byte-identical (no shared stream to
  race on),
* the reference and vectorized backends agree bit-for-bit (both call
  the same array kernel — the scalar path wraps length-1 arrays), and
* repeated reads of the same word in the same interval observe the
  *same* accumulated damage, exactly like a real exposed cell.

:class:`TransientSampler` binds one cache array in one operating mode:
per way it precomputes the Poisson CDF thresholds (evaluated through
the log-space :func:`repro.reliability.soft_errors.poisson_pmf`) and
the active code's correction/detection budgets, and classifies reads as
clean / corrected / detected→refetch / detected-on-dirty (DUE) /
silent (SDC).

Modeling notes (shared by both backends, so equivalence is by
construction):

* accesses sit on the wall clock at ``i * cycles_per_access *
  cycle_time`` — interval boundaries must be known *before* timing is;
* only **read hits** observe stored (exposed) data: misses and
  bypasses fetch fresh words from memory, writes overwrite the word;
* a read observes the whole interval's upset draw even if the line was
  filled mid-interval, and a refetch does not clear the interval's
  draw for later reads — both conservative, both deterministic;
* data words only; tag upsets are second-order and left analytic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cache.config import CacheConfig
from repro.edc.protection import ProtectionScheme, make_code
from repro.reliability.soft_errors import SoftErrorModel, poisson_pmf
from repro.tech.operating import Mode, OperatingPoint
from repro.transients.spec import TransientSpec
from repro.util.rng import derive_seed

#: splitmix64 finalizer constants.
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: 53-bit mantissa scale: uniforms in [0, 1).
_UNIFORM_SCALE = 2.0 ** -53

#: Interval block size for whole-array enumeration (bounds memory).
_ENUMERATE_BLOCK = 64


class TransientOutcome(enum.Enum):
    """Classification of one affected read."""

    CORRECTED = "corrected"   #: within the code's correction budget
    REFETCH = "refetch"       #: detected on a clean line -> refetched
    DUE = "due"               #: detected on a dirty line -> unrecoverable
    SILENT = "silent"         #: beyond detection -> corrupt data consumed

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wraps silently)."""
    x = x.copy()
    x ^= x >> 30
    x *= _MIX1
    x ^= x >> 27
    x *= _MIX2
    x ^= x >> 31
    return x


def counter_uniforms(
    way_seed: int,
    sets: np.ndarray,
    words: np.ndarray,
    intervals: np.ndarray,
) -> np.ndarray:
    """Order-independent uniforms in [0, 1) keyed on the coordinates.

    Three chained splitmix64 finalizer rounds over ``(seed, set, word,
    interval)``.  Pure and vectorized: the value at one coordinate
    never depends on which other coordinates were evaluated, or in
    what order — the property that keeps serial and parallel runs
    byte-identical.
    """
    z = np.atleast_1d(
        np.full_like(
            np.asarray(sets, dtype=np.uint64),
            np.uint64(way_seed & 0xFFFFFFFFFFFFFFFF),
        )
    )
    z = _mix64(z ^ np.asarray(sets, dtype=np.uint64))
    z = _mix64(z ^ np.asarray(words, dtype=np.uint64))
    z = _mix64(z ^ np.asarray(intervals, dtype=np.uint64))
    return (z >> 11).astype(np.float64) * _UNIFORM_SCALE


@dataclass(frozen=True)
class WayTransientParams:
    """Per-way precomputed sampling and classification parameters.

    Attributes:
        group: owning way-group name (for per-group stats counters).
        word_bits: exposed bits per stored word under the active code.
        correctable / detectable: the active code's budgets (0/0 for
            unprotected ways — any upset is consumed silently).
        thresholds: Poisson CDF values for upset counts ``0..
            detectable``; ``searchsorted`` inverts a uniform into an
            upset count (counts beyond ``detectable`` fall off the
            end, which is exactly the silent region).
        way_seed: derived child seed of this way's counter stream.
    """

    group: str
    word_bits: int
    correctable: int
    detectable: int
    thresholds: np.ndarray
    way_seed: int

    def upset_counts(
        self,
        sets: np.ndarray,
        words: np.ndarray,
        intervals: np.ndarray,
    ) -> np.ndarray:
        """Upset counts of the given (set, word, interval) coordinates."""
        uniform = counter_uniforms(self.way_seed, sets, words, intervals)
        return np.searchsorted(self.thresholds, uniform, side="right")


class TransientSampler:
    """Soft-error injection for one cache array in one operating mode.

    Built per run from the job's :class:`~repro.transients.spec.
    TransientSpec` (see :func:`make_sampler`); holds no mutable state,
    so one sampler may serve any number of classification calls in any
    order.

    Attributes:
        config: the cache configuration being injected.
        mode: the operating mode of the run.
        vdd: supply voltage the upset rate was evaluated at.
        spec: the originating injection spec.
        accesses_per_interval: how many accesses share one scrub
            interval on the nominal wall clock.
    """

    def __init__(
        self,
        config: CacheConfig,
        mode: Mode,
        op: OperatingPoint,
        spec: TransientSpec,
        seed: int,
    ):
        self.config = config
        self.mode = mode
        self.vdd = op.vdd
        self.spec = spec
        self.seed = seed
        self.accesses_per_interval = max(
            1,
            int(
                spec.scrub_interval_seconds
                / (op.cycle_time * spec.cycles_per_access)
            ),
        )
        rate = spec.accelerated_rate_per_bit(op.vdd)
        mask = config.active_way_mask(mode)
        self._ways: list[WayTransientParams | None] = []
        for way, active in enumerate(mask):
            if not active:
                self._ways.append(None)
                continue
            group = config.group_of_way(way)
            scheme = group.data_protection.get(
                mode, ProtectionScheme.NONE
            )
            code = make_code(scheme, config.data_word_bits)
            word_bits = code.n if code else config.data_word_bits
            correctable = code.correctable if code else 0
            detectable = code.detectable if code else 0
            mean = rate * word_bits * spec.scrub_interval_seconds
            thresholds = np.cumsum(
                [poisson_pmf(mean, k) for k in range(detectable + 1)]
            )
            self._ways.append(
                WayTransientParams(
                    group=group.name,
                    word_bits=word_bits,
                    correctable=correctable,
                    detectable=detectable,
                    thresholds=thresholds,
                    way_seed=derive_seed(seed, "way", way),
                )
            )

    @property
    def content_token(self) -> str:
        """Canonical text identifying this sampler's entire behaviour.

        Two samplers with equal tokens classify every (way, set, word,
        interval) coordinate identically: the spec fixes the physics
        and budgets, ``mode``/``vdd`` fix the way parameters and upset
        rate, ``accesses_per_interval`` fixes interval indexing, and
        ``seed`` fixes the counter streams.  The config is *not*
        folded in directly because batched callers key on it
        separately (see :mod:`repro.engine.batch`).
        """
        from repro.util.canonical import canonical_text

        return canonical_text(
            (
                self.spec,
                repr(self.mode),
                self.vdd,
                self.accesses_per_interval,
                self.seed,
            )
        )

    # ----------------------------------------------------------- geometry
    def way_params(self, way: int) -> WayTransientParams | None:
        """Sampling parameters of one way (None when gated off)."""
        return self._ways[way]

    def interval_of(self, access_index: int) -> int:
        """Scrub-interval index of one program-order access position."""
        return access_index // self.accesses_per_interval

    def word_of(self, address: int) -> int:
        """Data-word index of a byte address within its cache line."""
        return (
            (address % self.config.line_bytes) * 8
            // self.config.data_word_bits
        )

    # ------------------------------------------------------ classification
    def classify_upsets(
        self,
        params: WayTransientParams,
        upsets: np.ndarray,
        dirty: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(corrected, refetch, due, silent) masks for upset counts.

        Pure integer comparisons against the way's budgets — the one
        classification rule both backends share: within the correction
        budget the decoder fixes the word; within detection the word
        refetches from the next level unless the line is dirty (the
        only copy is the corrupt one: a detected uncorrectable error,
        DUE); beyond detection the corrupt word is consumed (SDC).
        """
        affected = upsets > 0
        corrected = affected & (upsets <= params.correctable)
        detected = (
            (upsets > params.correctable)
            & (upsets <= params.detectable)
        )
        due = detected & dirty
        refetch = detected & ~dirty
        silent = upsets > params.detectable
        return corrected, refetch, due, silent

    def observe_read_hit(
        self,
        way: int,
        set_index: int,
        address: int,
        access_index: int,
        dirty: bool,
    ) -> TransientOutcome | None:
        """Classify one read hit (the reference backend's scalar path).

        Wraps the array kernel with length-1 arrays so the float path
        (hash, uniform, CDF inversion) is byte-identical to the
        vectorized backend's.  Returns None for an unaffected read.
        """
        params = self._ways[way]
        if params is None:  # pragma: no cover - gated ways cannot hit
            return None
        upsets = int(
            params.upset_counts(
                np.asarray([set_index], dtype=np.uint64),
                np.asarray([self.word_of(address)], dtype=np.uint64),
                np.asarray(
                    [self.interval_of(access_index)], dtype=np.uint64
                ),
            )[0]
        )
        if upsets == 0:
            return None
        if upsets <= params.correctable:
            return TransientOutcome.CORRECTED
        if upsets <= params.detectable:
            return (
                TransientOutcome.DUE if dirty
                else TransientOutcome.REFETCH
            )
        return TransientOutcome.SILENT

    # ------------------------------------------------------- whole array
    def uncorrectable_events(self, intervals: int) -> int:
        """Uncorrectable (beyond-correction) word-interval events.

        Enumerates every (way, set, word, interval) draw of the array
        over ``intervals`` scrub intervals — the sampled counterpart of
        :meth:`repro.reliability.soft_errors.SoftErrorModel.cache_fit`,
        with *no* trace in the loop.  Used by the population study's
        statistical cross-check.
        """
        if intervals < 0:
            raise ValueError("intervals must be >= 0")
        sets = self.config.sets
        words = self.config.words_per_line
        set_grid, word_grid = np.meshgrid(
            np.arange(sets, dtype=np.uint64),
            np.arange(words, dtype=np.uint64),
            indexing="ij",
        )
        set_flat = set_grid.ravel()
        word_flat = word_grid.ravel()
        total = 0
        for way, params in enumerate(self._ways):
            if params is None:
                continue
            for start in range(0, intervals, _ENUMERATE_BLOCK):
                block = np.arange(
                    start,
                    min(start + _ENUMERATE_BLOCK, intervals),
                    dtype=np.uint64,
                )
                sets_b = np.repeat(set_flat, len(block))
                words_b = np.repeat(word_flat, len(block))
                intervals_b = np.tile(block, len(set_flat))
                upsets = params.upset_counts(sets_b, words_b, intervals_b)
                total += int(
                    np.count_nonzero(upsets > params.correctable)
                )
        return total

    def sampled_cache_fit(self, intervals: int) -> float:
        """Sampled uncorrectable-error rate of the array, in FIT.

        Counts the enumerated events and converts to failures per
        billion hours.  The figure is at *accelerated* physics — tail
        probabilities scale like ``acceleration ** (budget + 1)``, so
        they cannot be linearly de-accelerated — and compares directly
        against ``analytic_cache_fit(..., accelerated=True)``: the two
        differ only by Monte Carlo noise (see docs/transients.md for
        the documented tolerance).
        """
        if intervals <= 0:
            raise ValueError("intervals must be positive")
        events = self.uncorrectable_events(intervals)
        hours = intervals * self.spec.scrub_interval_seconds / 3600.0
        return events / hours * 1e9


def make_sampler(
    config: CacheConfig,
    mode: Mode,
    op: OperatingPoint,
    spec: TransientSpec,
    label: str,
) -> TransientSampler:
    """Build one array's sampler with its derived child seed.

    ``label`` names the physical array ("il1" / "dl1"): each array
    derives its own stream from the spec's root seed, so the two L1s
    draw decorrelated upsets even when they share a configuration.
    """
    return TransientSampler(
        config,
        mode,
        op,
        spec,
        seed=derive_seed(spec.seed, "transients", label),
    )


def analytic_cache_fit(
    config: CacheConfig,
    mode: Mode,
    vdd: float,
    spec: TransientSpec,
    accelerated: bool = False,
) -> float:
    """Closed-form uncorrectable-error rate of one array, in FIT.

    Sums :meth:`~repro.reliability.soft_errors.SoftErrorModel.
    cache_fit` over the mode's active way groups, each with its active
    code's word geometry and correction budget.  By default this is
    the true (unaccelerated) physics — the paper-scale number;
    ``accelerated=True`` folds the spec's acceleration into the upset
    rate, which is what the *sampled* FIT must be validated against
    (tail probabilities scale like ``acceleration ** (budget + 1)``,
    so the two scales are not related by a simple factor).
    """
    model = spec.soft_error_model()
    if accelerated:
        model = SoftErrorModel(
            fit_per_mbit_nominal=(
                model.fit_per_mbit_nominal * spec.acceleration
            ),
            voltage_sensitivity=model.voltage_sensitivity,
            vdd_nominal=model.vdd_nominal,
        )
    total = 0.0
    for group in config.way_groups:
        if not group.is_active(mode):
            continue
        scheme = group.data_protection.get(mode, ProtectionScheme.NONE)
        code = make_code(scheme, config.data_word_bits)
        word_bits = code.n if code else config.data_word_bits
        correctable = code.correctable if code else 0
        total += model.cache_fit(
            vdd,
            words=config.sets * group.ways * config.words_per_line,
            word_bits=word_bits,
            scrub_interval_seconds=spec.scrub_interval_seconds,
            soft_budget=correctable,
        )
    return total
