"""Pareto reductions: dominance, frontier, sensitivity, ranking."""

import pytest

from repro.explore.pareto import (
    Objective,
    dominates,
    pareto_indices,
    rank_rows,
    render_saved_campaign,
    sensitivity,
)

MIN_BOTH = (Objective("cost"), Objective("delay"))


class TestObjective:
    def test_parse_defaults_to_min(self):
        objective = Objective.parse("epi_ule")
        assert objective.metric == "epi_ule"
        assert not objective.maximize

    def test_parse_directions(self):
        assert Objective.parse("yield:max").maximize
        assert not Objective.parse("area:min").maximize

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Objective.parse("epi:upwards")

    def test_str_round_trips(self):
        for text in ("a:min", "b:max"):
            assert str(Objective.parse(text)) == text


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates(
            {"cost": 1, "delay": 1}, {"cost": 2, "delay": 2}, MIN_BOTH
        )

    def test_equal_rows_do_not_dominate(self):
        row = {"cost": 1, "delay": 1}
        assert not dominates(row, dict(row), MIN_BOTH)

    def test_tradeoff_does_not_dominate(self):
        a = {"cost": 1, "delay": 2}
        b = {"cost": 2, "delay": 1}
        assert not dominates(a, b, MIN_BOTH)
        assert not dominates(b, a, MIN_BOTH)

    def test_maximize_flips_direction(self):
        objectives = (Objective("yield", maximize=True),)
        assert dominates({"yield": 0.99}, {"yield": 0.9}, objectives)


class TestFrontier:
    def test_frontier_of_tradeoffs(self):
        rows = [
            {"cost": 1, "delay": 3},
            {"cost": 2, "delay": 2},
            {"cost": 3, "delay": 1},
            {"cost": 3, "delay": 3},  # dominated by the middle row
        ]
        assert pareto_indices(rows, MIN_BOTH) == [0, 1, 2]

    def test_single_row_is_frontier(self):
        assert pareto_indices([{"cost": 5, "delay": 5}], MIN_BOTH) == [0]

    def test_duplicate_rows_both_survive(self):
        rows = [{"cost": 1, "delay": 1}, {"cost": 1, "delay": 1}]
        assert pareto_indices(rows, MIN_BOTH) == [0, 1]


class TestRanking:
    def test_frontier_first_then_primary_metric(self):
        rows = [
            {"cost": 3, "delay": 3},  # dominated
            {"cost": 2, "delay": 2},
            {"cost": 1, "delay": 3},
        ]
        assert rank_rows(rows, MIN_BOTH) == [2, 1, 0]

    def test_maximize_primary_ranks_descending(self):
        objectives = (Objective("yield", maximize=True),)
        rows = [{"yield": 0.8}, {"yield": 0.99}, {"yield": 0.9}]
        assert rank_rows(rows, objectives) == [1, 2, 0]


class TestSensitivity:
    def test_means_per_axis_value(self):
        rows = [{"epi": 1.0}, {"epi": 3.0}, {"epi": 10.0}]
        values = ["a", "a", "b"]
        assert sensitivity(rows, values, "epi") == {"a": 2.0, "b": 10.0}

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            sensitivity([{"epi": 1.0}], ["a", "b"], "epi")


class TestRenderSavedCampaign:
    PAYLOAD = {
        "objectives": ["cost:min", "delay:min"],
        "candidates": [
            {"name": "small", "metrics": {"cost": 1.0, "delay": 3.0}},
            {"name": "fat", "metrics": {"cost": 3.0, "delay": 3.0}},
            {"name": "fast", "metrics": {"cost": 3.0, "delay": 1.0}},
        ],
    }

    def test_uses_recorded_objectives(self):
        text = render_saved_campaign(self.PAYLOAD)
        assert "2 on the frontier" in text
        assert "cost:min, delay:min" in text

    def test_override_objectives_rerank(self):
        text = render_saved_campaign(
            self.PAYLOAD, (Objective("delay"),), top=2
        )
        lines = text.splitlines()
        assert "fast" in lines[3]  # first ranked row
        assert "fat" not in text  # cut by top=2
