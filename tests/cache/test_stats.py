"""Tests for repro.cache.stats."""

from repro.cache.stats import CacheStats


class TestCacheStats:
    def test_defaults(self):
        stats = CacheStats()
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0

    def test_derived_counts(self):
        stats = CacheStats(
            reads=10, writes=5, read_hits=8, write_hits=3,
            read_misses=2, write_misses=2,
        )
        assert stats.accesses == 15
        assert stats.hits == 11
        assert stats.misses == 4
        assert stats.miss_rate == 4 / 15

    def test_merge(self):
        a = CacheStats(reads=5, read_hits=4, read_misses=1, fills=1)
        a.group_fills["hp"] = 1
        b = CacheStats(reads=3, read_hits=3, writebacks=2)
        b.group_fills["hp"] = 0
        b.group_fills["ule"] = 0
        a.merge(b)
        assert a.reads == 8
        assert a.read_hits == 7
        assert a.writebacks == 2
        assert a.group_fills["hp"] == 1

    def test_clone_matches_deepcopy(self):
        import copy

        stats = CacheStats(
            reads=10, writes=5, read_hits=8, write_hits=3,
            read_misses=2, write_misses=2, fills=4, writebacks=1,
            flush_writebacks=1, bypasses=1, transient_corrected=2,
            transient_refetches=1, transient_due=1, transient_silent=1,
        )
        stats.group_read_hits["ule"] = 3
        stats.group_fills["hp"] = 2
        stats.group_transient_corrected["ule"] = 2
        assert stats.clone() == copy.deepcopy(stats)

    def test_clone_is_mutation_isolated(self):
        stats = CacheStats(reads=5, read_hits=5)
        stats.group_read_hits["ule"] = 5
        twin = stats.clone()
        twin.merge(CacheStats(reads=2, read_misses=2))
        twin.group_read_hits["ule"] += 1
        assert stats.reads == 5
        assert stats.group_read_hits["ule"] == 5
        # Group maps stay defaultdicts after cloning: simulator code
        # increments unseen keys without guarding.
        twin.group_fills["new"] += 1
        assert twin.group_fills["new"] == 1

    def test_describe(self):
        stats = CacheStats(reads=4, read_hits=2, read_misses=2, fills=2)
        text = stats.describe()
        assert "4 accesses" in text
        assert "2 fills" in text
