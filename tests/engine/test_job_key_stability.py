"""SRAM job-key stability across the pluggable cell-technology API.

The cells refactor (protocol + registry + dynamic technologies) must
not invalidate the on-disk result cache for SRAM work: job keys hash
the chip's *canonical form*, canonical forms walk dataclass fields
only, and the protocol added methods, not fields.  These pins make
that contract explicit:

* ``ENGINE_CACHE_VERSION`` stays exactly 4 — registering a technology
  is not a cache-schema change, so it must NOT bump the version;
* the canonical text of each SRAM ``CellDesign`` is byte-pinned (by
  digest) — if a field sneaks onto the dataclass, this fails before a
  fleet's cache silently invalidates;
* the dynamic technologies get canonical forms *distinct* from every
  SRAM cell, so their results can never alias an SRAM key.
"""

import hashlib

import pytest

from repro.cells import CELL_6T, CELL_8T, CELL_10T, CellDesign
from repro.cells.edram import EDRAM_1T1C
from repro.cells.gain import GAIN_2T
from repro.engine.jobs import ENGINE_CACHE_VERSION
from repro.util.canonical import canonical_text

#: sha256 of ``canonical_text(CellDesign(<topology>, 1.25))``, pinned
#: at the cells-API refactor.  A change here means every cached SRAM
#: result in every fleet cache is orphaned — bump only deliberately.
PINNED_DIGESTS = {
    "6T": "2eb791abde0f5f811e8d2accd0695a144ebb8358b01e8c4c956c871c890e9257",
    "8T": "0386a9e836bde1d02faf21aff4c7090123303b30ba15416f1ba05562dc2b6144",
    "10T": "7283485e9bb4f7bc7191221c7c8d210453ff51a14246c5a3edf926f57e664b1a",
}

TOPOLOGIES = {"6T": CELL_6T, "8T": CELL_8T, "10T": CELL_10T}


def _digest(design) -> str:
    return hashlib.sha256(
        canonical_text(design).encode("utf-8")
    ).hexdigest()


class TestSramKeyStability:
    def test_cache_version_is_exactly_four(self):
        assert ENGINE_CACHE_VERSION == 4

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_sram_canonical_text_is_byte_pinned(self, name):
        design = CellDesign(TOPOLOGIES[name], 1.25)
        assert _digest(design) == PINNED_DIGESTS[name]

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_canonical_text_carries_no_protocol_members(self, name):
        """Protocol members are methods/properties, never fields."""
        text = canonical_text(CellDesign(TOPOLOGIES[name], 1.25))
        for member in ("technology", "retention", "refresh"):
            assert member not in text


class TestDynamicCellsCannotAlias:
    @pytest.mark.parametrize("technology", [EDRAM_1T1C, GAIN_2T])
    def test_distinct_class_names_separate_the_keys(self, technology):
        design = technology.design(1.25)
        text = canonical_text(design)
        assert '"__class__":"CellDesign"' not in text
        assert _digest(design) not in PINNED_DIGESTS.values()
