"""Tests for the synthetic MediaBench generators."""

import numpy as np
import pytest

from repro.cpu.trace import InstrKind
from repro.workloads.mediabench import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_by_name,
    generate_trace,
)
from repro.workloads.suites import ALL_BENCHMARKS, BIGBENCH, SMALLBENCH
from repro.tech.operating import Mode
from repro.workloads.suites import suite_for_mode


class TestSuites:
    def test_paper_roster(self):
        names = {spec.name for spec in ALL_BENCHMARKS}
        assert names == {
            "adpcm_c", "adpcm_d", "epic_c", "epic_d",
            "g721_c", "g721_d", "gsm_c", "gsm_d", "mpeg2_c", "mpeg2_d",
        }

    def test_split_matches_paper(self):
        assert {s.name for s in SMALLBENCH} == {
            "adpcm_c", "adpcm_d", "epic_c", "epic_d"
        }
        assert len(BIGBENCH) == 6

    def test_mode_assignment(self):
        assert suite_for_mode(Mode.ULE) is SMALLBENCH
        assert suite_for_mode(Mode.HP) is BIGBENCH

    def test_lookup(self):
        assert benchmark_by_name("gsm_c").category == "big"
        with pytest.raises(ValueError):
            benchmark_by_name("quake3")


class TestSpecs:
    def test_smallbench_fits_1kb(self):
        """The paper's defining property: SmallBench working sets fit
        very small caches (~1 KB)."""
        for spec in SMALLBENCH:
            assert spec.data_working_set <= 1024
            assert spec.code_bytes <= 1024

    def test_bigbench_needs_more(self):
        for spec in BIGBENCH:
            assert spec.data_working_set > 4 * 1024

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="bad", category="small",
                load_frac=0.2, store_frac=0.1, branch_frac=0.1,
                code_bytes=512, stream_bytes=256, table_bytes=0,
                block_bytes=0, image_bytes=0, stack_bytes=64,
                mix_stream=0.5, mix_table=0.2, mix_block=0.0,
                mix_stack=0.2,  # sums to 0.9
                dep_next_frac=0.1, redirect_frac=0.1,
            )


class TestGeneration:
    def test_deterministic(self):
        a = generate_trace("adpcm_c", length=5000, seed=1)
        b = generate_trace("adpcm_c", length=5000, seed=1)
        assert np.array_equal(a.pc, b.pc)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.kind, b.kind)

    def test_seed_sensitivity(self):
        a = generate_trace("adpcm_c", length=5000, seed=1)
        b = generate_trace("adpcm_c", length=5000, seed=2)
        assert not np.array_equal(a.addr, b.addr)

    def test_instruction_mix_respected(self):
        spec = benchmark_by_name("mpeg2_c")
        trace = generate_trace(spec, length=40_000, seed=3)
        summary = trace.summary
        assert summary.loads / len(trace) == pytest.approx(
            spec.load_frac, abs=0.02
        )
        assert summary.stores / len(trace) == pytest.approx(
            spec.store_frac, abs=0.02
        )
        assert summary.branches / len(trace) == pytest.approx(
            spec.branch_frac, abs=0.02
        )

    def test_memory_ops_have_addresses(self):
        trace = generate_trace("g721_c", length=10_000, seed=4)
        addresses, _ = trace.memory_stream()
        assert (addresses > 0).all()

    def test_code_footprint_within_spec(self):
        for name in ("adpcm_c", "mpeg2_d"):
            spec = benchmark_by_name(name)
            trace = generate_trace(spec, length=20_000, seed=5)
            assert trace.code_footprint_bytes() <= spec.code_bytes + 64

    def test_working_set_tracks_spec(self):
        small = generate_trace("adpcm_c", length=30_000, seed=6)
        big = generate_trace("mpeg2_c", length=30_000, seed=6)
        assert small.working_set_bytes() < 1024
        assert big.working_set_bytes() > 8 * 1024

    def test_dep_next_only_on_loads(self):
        trace = generate_trace("epic_c", length=10_000, seed=7)
        dep_positions = np.nonzero(trace.dep_next)[0]
        assert (trace.kind[dep_positions] == InstrKind.LOAD).all()

    def test_redirects_only_on_branches(self):
        trace = generate_trace("epic_c", length=10_000, seed=8)
        redirect_positions = np.nonzero(trace.redirect)[0]
        assert (
            trace.kind[redirect_positions] == InstrKind.BRANCH
        ).all()

    def test_bad_length(self):
        with pytest.raises(ValueError):
            generate_trace("adpcm_c", length=0)
