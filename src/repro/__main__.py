"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro run fig4
    python -m repro run fig3 --trace-length 60000 --out fig3.txt
    python -m repro run fig3 --jobs 4 --backend vectorized
    python -m repro design A
    python -m repro all --jobs 4 --out-dir results/
    python -m repro run fig4 --profile

Engine options (``run`` and ``all``):

* ``--jobs N`` — dispatch independent work across N processes;
* ``--backend {auto,vectorized,reference}`` — simulation backend
  (bit-identical; "auto" picks the vectorized fast path where it
  applies);
* ``--cache-dir DIR`` — memoize simulation results on disk, keyed by a
  content hash of the full job description;
* ``--profile`` — print per-phase wall-clock (trace generation,
  simulation, energy accounting) after the run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that simulates."""
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for independent jobs (default: 1)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "vectorized", "reference"),
        default="auto", help="simulation backend (default: auto)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None,
        help="enable the on-disk simulation result cache here",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall-clock after the run (forces --jobs 1)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Cache Architectures for Reliable "
            "Hybrid Voltage Operation Using EDC Codes' (DATE 2013)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment ids")

    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see list)")
    run_parser.add_argument(
        "--trace-length", type=int, default=None,
        help="dynamic instructions per benchmark (EPI experiments)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="root random seed"
    )
    run_parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the report to this file",
    )
    _add_engine_options(run_parser)

    design_parser = commands.add_parser(
        "design", help="run the Fig. 2 methodology for a scenario"
    )
    design_parser.add_argument("scenario", choices=["A", "B"])

    all_parser = commands.add_parser(
        "all", help="run every experiment and write the reports"
    )
    all_parser.add_argument(
        "--trace-length", type=int, default=None,
        help="dynamic instructions per benchmark (EPI experiments)",
    )
    all_parser.add_argument(
        "--out-dir", type=pathlib.Path, default=pathlib.Path("results"),
        help="directory for the rendered reports",
    )
    _add_engine_options(all_parser)
    return parser


def _run_kwargs(args: argparse.Namespace, experiment_id: str) -> dict:
    """Forward only the options the chosen driver accepts."""
    from repro.experiments.registry import experiment_parameters

    accepted = experiment_parameters(experiment_id)
    kwargs = {}
    trace_length = getattr(args, "trace_length", None)
    if "trace_length" in accepted and trace_length is not None:
        kwargs["trace_length"] = trace_length
    seed = getattr(args, "seed", None)
    if "seed" in accepted and seed is not None:
        kwargs["seed"] = seed
    return kwargs


def _make_session(args: argparse.Namespace):
    """A SimulationSession configured from the engine options."""
    from repro.engine.session import SimulationSession

    jobs = args.jobs
    if args.profile and jobs > 1:
        print(
            "[note] --profile times the driving process only; "
            "forcing --jobs 1",
            file=sys.stderr,
        )
        jobs = 1
    return SimulationSession(
        jobs=jobs, backend=args.backend, cache_dir=args.cache_dir
    )


def _dispatch(args: argparse.Namespace) -> int:
    from repro.experiments import list_experiments, run_experiment

    if args.command == "run":
        result = run_experiment(
            args.experiment, **_run_kwargs(args, args.experiment)
        )
        rendered = result.render()
        print(rendered)
        if args.out:
            args.out.write_text(rendered + "\n", encoding="utf-8")
        return 0

    if args.command == "all":
        from repro.engine.session import current_session

        args.out_dir.mkdir(parents=True, exist_ok=True)
        experiment_ids = list_experiments()

        def write_report(experiment_id: str, result) -> None:
            path = args.out_dir / f"{experiment_id}.txt"
            path.write_text(result.render() + "\n", encoding="utf-8")
            print(f"[done] {experiment_id} -> {path}")

        session = current_session()
        if session.jobs > 1 and len(experiment_ids) > 1:
            # Reports are written from the completion callback, so one
            # failing experiment cannot discard the finished ones.
            session.run_experiments(
                experiment_ids,
                {
                    experiment_id: _run_kwargs(args, experiment_id)
                    for experiment_id in experiment_ids
                },
                on_result=write_report,
            )
        else:
            # Serial: persist each report as its experiment completes,
            # so a late failure or interrupt keeps the finished work.
            for experiment_id in experiment_ids:
                result = run_experiment(
                    experiment_id, **_run_kwargs(args, experiment_id)
                )
                write_report(experiment_id, result)
        return 0

    raise AssertionError("unreachable")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from repro.experiments import list_experiments

        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "design":
        from repro.core import Scenario, design_scenario

        design = design_scenario(Scenario(args.scenario))
        print(design.summary())
        return 0

    from repro.engine.session import use_session
    from repro.util.profiling import profiled

    with _make_session(args) as session, use_session(session):
        if args.profile:
            with profiled() as profiler:
                status = _dispatch(args)
            print()
            print(profiler.render())
            return status
        return _dispatch(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro design A | head`
        sys.exit(0)
