"""Tests for array banking (repro.cacti.organization)."""

import pytest

from repro.cacti.array import SramArray
from repro.cacti.organization import (
    PartitionedArray,
    candidate_partitions,
    optimal_partition,
)
from repro.sram.cells import CELL_6T, CellDesign


def _partitioned(rows=256, cols=512, row_splits=1, col_splits=1):
    return PartitionedArray(
        rows=rows,
        cols=cols,
        cell=CellDesign(CELL_6T),
        row_splits=row_splits,
        col_splits=col_splits,
    )


class TestConstruction:
    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            _partitioned(rows=100, row_splits=3)

    def test_bank_count(self):
        assert _partitioned(row_splits=2, col_splits=4).banks == 8

    def test_unbanked_matches_flat_array(self):
        banked = _partitioned()
        flat = SramArray(rows=256, cols=512, cell=CellDesign(CELL_6T))
        # Same bank geometry; only the H-tree term differs.
        assert banked.subarray.rows == flat.rows
        assert banked.subarray.cols == flat.cols


class TestEnergyTradeoffs:
    def test_banking_cuts_dynamic_energy_for_large_arrays(self):
        """Activating one small bank beats swinging kilobit bitlines."""
        flat = _partitioned()
        banked = _partitioned(row_splits=4, col_splits=2)
        assert banked.read_energy(1.0) < flat.read_energy(1.0)

    def test_banking_never_cuts_leakage(self):
        flat = _partitioned()
        banked = _partitioned(row_splits=4, col_splits=2)
        assert banked.leakage_power(1.0) >= 0.99 * flat.leakage_power(1.0)

    def test_area_overhead_grows_with_banks(self):
        flat = _partitioned()
        banked = _partitioned(row_splits=4, col_splits=4)
        assert banked.area > flat.area

    def test_access_time_improves_with_banking(self):
        flat = _partitioned(rows=512, cols=512)
        banked = PartitionedArray(
            rows=512, cols=512, cell=CellDesign(CELL_6T),
            row_splits=8, col_splits=2,
        )
        assert banked.access_time(1.0) < flat.access_time(1.0)


class TestOptimizer:
    def test_candidates_legal(self):
        for row_splits, col_splits in candidate_partitions(256, 512):
            assert 256 % row_splits == 0
            assert 512 % col_splits == 0

    def test_small_paper_array_stays_unbanked(self, design_a):
        """The paper's 32-row way arrays do not benefit from banking —
        the single-subarray modelling choice, verified."""
        best = optimal_partition(
            rows=32, cols=312, cell=design_a.cell_8t, vdd=1.0
        )
        assert (best.row_splits, best.col_splits) == (1, 1)

    def test_large_array_gets_banked(self):
        best = optimal_partition(
            rows=1024, cols=1024, cell=CellDesign(CELL_6T), vdd=1.0
        )
        assert best.banks > 1

    def test_optimum_beats_flat(self):
        flat = _partitioned(rows=1024, cols=1024)
        best = optimal_partition(
            rows=1024, cols=1024, cell=CellDesign(CELL_6T), vdd=1.0
        )
        cost_flat = flat.read_energy(1.0) * flat.access_time(1.0)
        cost_best = best.read_energy(1.0) * best.access_time(1.0)
        assert cost_best <= cost_flat
