"""Tests for the BCH machinery (generic t, used at t=2 by DECTED)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.edc.base import DecodeStatus
from repro.edc.bch import BchCode, _gf2_poly_mod, _gf2_poly_mul

CODE_T2 = BchCode(32, t=2)   # the DECTED inner code


class TestPolyHelpers:
    def test_mul_known(self):
        # (x+1)(x+1) = x^2+1 over GF(2)
        assert _gf2_poly_mul(0b11, 0b11) == 0b101

    def test_mod_exact_division(self):
        product = _gf2_poly_mul(0b1011, 0b110111)
        assert _gf2_poly_mod(product, 0b1011) == 0

    def test_mod_degree_bound(self):
        modulus = 0b1000011
        remainder = _gf2_poly_mod((1 << 20) | 0b1101, modulus)
        assert remainder.bit_length() <= modulus.bit_length() - 1


class TestConstruction:
    def test_paper_geometry(self):
        """BCH(t=2) over GF(2^6): 12 check bits for 32 data bits."""
        assert CODE_T2.check_bits == 12
        assert CODE_T2.n == 44
        assert CODE_T2.field.m == 6

    def test_generator_divides_x_order_minus_1(self):
        order = CODE_T2.natural_length
        x_n_1 = (1 << order) | 1
        assert _gf2_poly_mod(x_n_1, CODE_T2.generator) == 0

    def test_t3_code(self):
        code = BchCode(32, t=3, m=6)
        assert code.check_bits == 18

    def test_too_much_data_rejected(self):
        with pytest.raises(ValueError):
            BchCode(60, t=2, m=6)

    def test_bad_t(self):
        with pytest.raises(ValueError):
            BchCode(32, t=0)


class TestCodec:
    def test_roundtrip(self, rng):
        for _ in range(50):
            data = int(rng.integers(0, 1 << 32))
            result = CODE_T2.decode(CODE_T2.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    def test_every_codeword_is_codeword(self, rng):
        for _ in range(20):
            data = int(rng.integers(0, 1 << 32))
            assert CODE_T2.is_codeword(CODE_T2.encode(data))

    def test_all_single_errors(self, rng):
        data = int(rng.integers(0, 1 << 32))
        codeword = CODE_T2.encode(data)
        for position in range(CODE_T2.n):
            result = CODE_T2.decode(codeword ^ (1 << position))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data

    def test_all_double_errors_exhaustive(self, rng):
        """Exhaustive over all C(44,2) = 946 double errors."""
        data = int(rng.integers(0, 1 << 32))
        codeword = CODE_T2.encode(data)
        for a, b in itertools.combinations(range(CODE_T2.n), 2):
            result = CODE_T2.decode(codeword ^ (1 << a) ^ (1 << b))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data
            assert result.corrected_positions == (a, b)

    def test_triple_errors_never_miscorrect_silently_to_wrong_count(
        self, rng
    ):
        """With d_min = 5, 3 errors are either detected or miscorrected
        to a *different* codeword (never claimed CLEAN)."""
        data = int(rng.integers(0, 1 << 32))
        codeword = CODE_T2.encode(data)
        for _ in range(300):
            picks = rng.choice(CODE_T2.n, size=3, replace=False)
            corrupted = codeword
            for p in picks:
                corrupted ^= 1 << int(p)
            result = CODE_T2.decode(corrupted)
            assert result.status is not DecodeStatus.CLEAN

    def test_t3_corrects_triples(self, rng):
        code = BchCode(24, t=3, m=6)
        data = int(rng.integers(0, 1 << 24))
        codeword = code.encode(data)
        for _ in range(100):
            picks = rng.choice(code.n, size=3, replace=False)
            corrupted = codeword
            for p in picks:
                corrupted ^= 1 << int(p)
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data


class TestSyndromes:
    def test_zero_for_codewords(self, rng):
        data = int(rng.integers(0, 1 << 32))
        assert all(
            s == 0 for s in CODE_T2.syndromes(CODE_T2.encode(data))
        )

    def test_single_error_power_sums(self, rng):
        """S_j of a single error at position p equals alpha^(j p)."""
        data = int(rng.integers(0, 1 << 32))
        position = 17
        received = CODE_T2.encode(data) ^ (1 << position)
        syndromes = CODE_T2.syndromes(received)
        field = CODE_T2.field
        for j, syndrome in enumerate(syndromes, start=1):
            assert syndrome == field.alpha_pow(j * position)


@settings(max_examples=40, deadline=None)
@given(
    data=st.integers(min_value=0, max_value=(1 << 32) - 1),
    errors=st.sets(
        st.integers(min_value=0, max_value=CODE_T2.n - 1),
        min_size=0,
        max_size=2,
    ),
)
def test_within_capacity_always_recovered(data, errors):
    """Hypothesis: any <= 2 errors on any codeword are corrected."""
    corrupted = CODE_T2.encode(data)
    for position in errors:
        corrupted ^= 1 << position
    result = CODE_T2.decode(corrupted)
    assert result.data == data
    expected = (
        DecodeStatus.CLEAN if not errors else DecodeStatus.CORRECTED
    )
    assert result.status is expected
