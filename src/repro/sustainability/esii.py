"""ESII — a pairwise sustainability improvement index.

The Environmental Sustainability Improvement Index compares a candidate
against an *explicit* baseline (no hidden reference): ratios above 1
mean the candidate improves on the baseline.  The index is the
geometric mean of the energy improvement and the carbon improvement —
on a shared grid the two ratios coincide and ESII degenerates to the
plain energy ratio, while cross-grid comparisons (e.g. a renewable
deployment of the proposed design vs a coal-grid baseline) weight the
energy saving by where it is spent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sustainability.carbon import co2_grams


@dataclass(frozen=True)
class SustainabilityIndex:
    """One candidate-vs-baseline comparison.

    Attributes:
        energy_ratio: baseline energy / candidate energy (>1 = the
            candidate uses less energy).
        carbon_ratio: baseline CO2 / candidate CO2 (>1 = the candidate
            emits less).
        esii: geometric mean of the two ratios.
    """

    energy_ratio: float
    carbon_ratio: float
    esii: float


def esii_index(
    baseline_energy_j: float,
    candidate_energy_j: float,
    baseline_intensity: float,
    candidate_intensity: float | None = None,
) -> SustainabilityIndex:
    """Score a candidate against a baseline.

    ``candidate_intensity`` defaults to the baseline's grid — the
    common same-fleet comparison, where ESII reduces to the energy
    ratio.
    """
    if baseline_energy_j <= 0.0 or candidate_energy_j <= 0.0:
        raise ValueError("energies must be positive")
    if candidate_intensity is None:
        candidate_intensity = baseline_intensity
    baseline_co2 = co2_grams(baseline_energy_j, baseline_intensity)
    candidate_co2 = co2_grams(candidate_energy_j, candidate_intensity)
    if candidate_co2 <= 0.0:
        raise ValueError(
            "candidate carbon is zero; ESII is undefined on a "
            "zero-intensity candidate grid"
        )
    energy_ratio = baseline_energy_j / candidate_energy_j
    carbon_ratio = baseline_co2 / candidate_co2
    return SustainabilityIndex(
        energy_ratio=energy_ratio,
        carbon_ratio=carbon_ratio,
        esii=math.sqrt(energy_ratio * carbon_ratio),
    )
