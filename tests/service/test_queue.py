"""Weighted-fair queue: SFQ ordering, weights, bounds, idle reset."""

from __future__ import annotations

import pytest

from repro.service.queue import QueueFull, WeightedFairQueue


def drain(queue: WeightedFairQueue) -> list[tuple[str, object]]:
    """Pop everything, in service order."""
    order = []
    while (item := queue.pop()) is not None:
        order.append(item)
    return order


class TestOrdering:
    def test_single_tenant_is_fifo(self):
        queue = WeightedFairQueue()
        for index in range(5):
            queue.push("a", index)
        assert [payload for _, payload in drain(queue)] == list(range(5))

    def test_equal_weights_interleave_round_robin(self):
        queue = WeightedFairQueue()
        for index in range(3):
            queue.push("a", f"a{index}")
        for index in range(3):
            queue.push("b", f"b{index}")
        assert [payload for _, payload in drain(queue)] == [
            "a0", "b0", "a1", "b1", "a2", "b2",
        ]

    def test_order_invariant_to_submission_interleaving(self):
        """The queue's core determinism contract, in miniature."""
        ab = WeightedFairQueue()
        for index in range(4):
            ab.push("a", ("a", index))
        for index in range(4):
            ab.push("b", ("b", index))
        interleaved = WeightedFairQueue()
        for index in range(4):
            interleaved.push("b", ("b", index))
            interleaved.push("a", ("a", index))
        assert drain(ab) == drain(interleaved)

    def test_weight_biases_service_share(self):
        queue = WeightedFairQueue()
        queue.set_weight("heavy", 2.0)
        for index in range(4):
            queue.push("heavy", f"h{index}")
            queue.push("light", f"l{index}")
        order = [payload for _, payload in drain(queue)]
        # Over the first backlogged window, the weight-2 tenant is
        # served twice per grant to the weight-1 tenant.
        assert order.index("h1") < order.index("l1")
        assert order.index("h3") < order.index("l2")
        assert queue.weight_of("heavy") == 2.0
        assert queue.weight_of("light") == 1.0

    def test_cost_consumes_share(self):
        queue = WeightedFairQueue()
        queue.push("a", "a-big", cost=4.0)
        queue.push("a", "a-small")
        queue.push("b", "b0")
        queue.push("b", "b1")
        order = [payload for _, payload in drain(queue)]
        # a's expensive first item pushes its next finish tag far out,
        # so b catches up before a-small is served.
        assert order.index("b0") < order.index("a-small")
        assert order.index("b1") < order.index("a-small")


class TestBounds:
    def test_push_beyond_capacity_raises(self):
        queue = WeightedFairQueue(capacity=2)
        queue.push("a", 1)
        queue.push("a", 2)
        assert queue.full
        with pytest.raises(QueueFull):
            queue.push("a", 3)
        assert len(queue) == 2

    def test_force_push_bypasses_capacity(self):
        queue = WeightedFairQueue(capacity=1)
        queue.push("a", 1)
        queue.push("a", "retry", force=True)
        assert len(queue) == 2

    def test_pop_frees_capacity(self):
        queue = WeightedFairQueue(capacity=1)
        queue.push("a", 1)
        assert queue.pop() == ("a", 1)
        assert not queue.full
        queue.push("a", 2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WeightedFairQueue(capacity=0)
        with pytest.raises(ValueError):
            WeightedFairQueue(default_weight=0.0)
        queue = WeightedFairQueue()
        with pytest.raises(ValueError):
            queue.set_weight("a", -1.0)
        with pytest.raises(ValueError):
            queue.push("a", 1, cost=0.0)


class TestIdleReset:
    def test_past_burst_does_not_tax_next_burst(self):
        queue = WeightedFairQueue()
        for index in range(10):
            queue.push("a", index)
        drain(queue)
        # After the drain, clocks reset: a fresh two-tenant burst is
        # served exactly as if "a" had never queued anything.
        queue.push("a", "a0")
        queue.push("b", "b0")
        queue.push("a", "a1")
        queue.push("b", "b1")
        assert [payload for _, payload in drain(queue)] == [
            "a0", "b0", "a1", "b1",
        ]

    def test_depth_tracks_per_tenant(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert queue.depth("a") == 2
        assert queue.depth("b") == 1
        assert queue.depth("c") == 0
        queue.pop()
        assert queue.depth("a") == 1
