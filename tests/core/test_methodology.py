"""Tests for the Fig. 2 design methodology."""

import pytest

from repro.core.calibration import PF_TARGET
from repro.core.methodology import (
    DesignResult,
    default_ule_geometry,
    design_scenario,
)
from repro.core.scenarios import Scenario
from repro.sram.failure import CellFailureModel
from repro.sram.sizing import minimal_size_step


class TestGeometry:
    def test_default_is_one_1kb_way(self):
        geometry = default_ule_geometry()
        assert geometry.sets == 32
        assert geometry.words_per_line == 8
        assert geometry.data_words == 256
        assert geometry.tag_words == 32

    def test_organization_budget(self):
        from repro.edc.protection import ProtectionScheme

        geometry = default_ule_geometry()
        org = geometry.organization(ProtectionScheme.SECDED, 1)
        assert org.data_word_bits == 39
        assert org.tag_word_bits == 33
        assert org.hard_fault_budget == 1


class TestDesignScenarioA:
    def test_pf_target_is_paper_anchor(self, design_a):
        assert design_a.pf_target == pytest.approx(1.22e-6, rel=0.005)
        assert design_a.pf_target == PF_TARGET

    def test_cells_meet_pf_targets(self, design_a):
        assert design_a.pf_6t_hp <= design_a.pf_target
        assert design_a.pf_10t_ule <= design_a.pf_target

    def test_sizing_ordering(self, design_a):
        """s6 small, s8 moderate, s10 large — the paper's premise."""
        s6 = design_a.cell_6t.size_factor
        s8 = design_a.cell_8t.size_factor
        s10 = design_a.cell_10t.size_factor
        assert 1.0 <= s6 < 1.5
        assert 1.5 < s8 < 3.0
        assert 3.0 < s10 < 6.0

    def test_yield_constraint_met(self, design_a):
        assert design_a.yield_proposed >= design_a.yield_baseline

    def test_yield_minimality(self, design_a):
        """One size step smaller must violate the yield constraint
        (Fig. 2 finds the *optimal* cell size)."""
        geometry = default_ule_geometry()
        plan = design_a.plan
        smaller = design_a.cell_8t.size_factor - minimal_size_step()
        pf_smaller = CellFailureModel(
            design_a.cell_8t.topology, design_a.cell_8t.node
        ).pf(0.35, smaller)
        org = geometry.organization(
            plan.proposed_ule_way.ule, plan.proposed_ule_hard_budget
        )
        assert org.yield_at(pf_smaller) < design_a.yield_baseline

    def test_8t_far_smaller_than_10t(self, design_a):
        """The headline: the coded 8T cell is much smaller than the
        fault-free 10T cell."""
        ratio = design_a.cell_10t.area / design_a.cell_8t.area
        assert ratio > 2.0

    def test_yields_near_target(self, design_a):
        assert 0.97 < design_a.yield_baseline < 1.0
        assert 0.97 < design_a.yield_proposed < 1.0

    def test_summary_renders(self, design_a):
        text = design_a.summary()
        assert "Pf target" in text
        assert "8T sizing iterations" in text


class TestDesignScenarioB:
    def test_same_cells_different_words(self, design_a, design_b):
        """10T/6T sizing is scenario-independent; the 8T may differ
        slightly because DECTED words are longer."""
        assert design_b.cell_10t.size_factor == (
            design_a.cell_10t.size_factor
        )
        assert design_b.cell_6t.size_factor == design_a.cell_6t.size_factor
        assert abs(
            design_b.cell_8t.size_factor - design_a.cell_8t.size_factor
        ) < 0.5

    def test_yield_constraint_met(self, design_b):
        assert design_b.yield_proposed >= design_b.yield_baseline

    def test_baseline_yield_below_scenario_a(self, design_a, design_b):
        """SECDED check bits add fault sites to the 10T baseline."""
        assert design_b.yield_baseline < design_a.yield_baseline


class TestCustomTargets:
    def test_tighter_pf_grows_cells(self):
        loose = design_scenario(Scenario.A, pf_target=1e-5)
        tight = design_scenario(Scenario.A, pf_target=1e-7)
        assert tight.cell_10t.size_factor > loose.cell_10t.size_factor

    def test_result_type(self, design_a):
        assert isinstance(design_a, DesignResult)
