"""Tests for repro.tech.variation."""

import numpy as np
import pytest

from repro.tech.node import ptm32
from repro.tech.variation import VariationModel


class TestSigmaFor:
    def test_matches_node(self):
        node = ptm32()
        model = VariationModel()
        assert model.sigma_for(node.wmin) == pytest.approx(
            node.sigma_vt(node.wmin)
        )

    def test_global_component_adds_in_quadrature(self):
        node = ptm32()
        local = VariationModel().sigma_for(node.wmin)
        combined = VariationModel(global_sigma=local).sigma_for(node.wmin)
        assert combined == pytest.approx(local * 2**0.5)


class TestSampling:
    def test_shape(self, rng):
        node = ptm32()
        widths = np.array([node.wmin, 2 * node.wmin])
        samples = VariationModel().sample_offsets(widths, rng, 100)
        assert samples.shape == (100, 2)

    def test_sample_std_matches_sigma(self, rng):
        node = ptm32()
        widths = np.array([node.wmin] * 3)
        model = VariationModel()
        samples = model.sample_offsets(widths, rng, 40_000)
        measured = samples.std(axis=0)
        expected = model.sigma_for(node.wmin)
        assert np.allclose(measured, expected, rtol=0.05)

    def test_mean_shift_applied(self, rng):
        node = ptm32()
        widths = np.array([node.wmin])
        shift = np.array([0.123])
        samples = VariationModel().sample_offsets(
            widths, rng, 20_000, mean_shift=shift
        )
        assert samples.mean() == pytest.approx(0.123, abs=0.005)

    def test_bad_widths(self, rng):
        with pytest.raises(ValueError):
            VariationModel().sample_offsets(np.array([-1.0]), rng, 10)


class TestLikelihoodRatio:
    def test_zero_shift_gives_unity(self, rng):
        node = ptm32()
        widths = np.array([node.wmin, node.wmin])
        model = VariationModel()
        offsets = model.sample_offsets(widths, rng, 50)
        log_ratio = model.log_density_ratio(
            offsets, widths, np.zeros(2)
        )
        assert np.allclose(log_ratio, 0.0)

    def test_is_estimator_unbiased_mean(self, rng):
        """E_q[p/q] == 1: the IS weights must average to one."""
        node = ptm32()
        widths = np.array([node.wmin] * 4)
        model = VariationModel()
        shift = np.full(4, 0.5 * model.sigma_for(node.wmin))
        offsets = model.sample_offsets(
            widths, rng, 60_000, mean_shift=shift
        )
        weights = np.exp(model.log_density_ratio(offsets, widths, shift))
        assert weights.mean() == pytest.approx(1.0, rel=0.05)
