"""Pareto-frontier and sensitivity reductions over sweep results.

Pure functions over rows of ``{metric: value}`` mappings — no
simulation, no I/O — so the CLI's ``pareto`` subcommand can re-reduce a
saved campaign without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.util.tables import Table


@dataclass(frozen=True)
class Objective:
    """One optimization direction over a metric."""

    metric: str
    maximize: bool = False

    @classmethod
    def parse(cls, text: str) -> "Objective":
        """Parse ``"metric"``, ``"metric:min"`` or ``"metric:max"``."""
        name, _, direction = text.partition(":")
        direction = direction or "min"
        if direction not in ("min", "max"):
            raise ValueError(
                f"bad objective {text!r}; use metric[:min|:max]"
            )
        return cls(metric=name, maximize=direction == "max")

    def __str__(self) -> str:
        return f"{self.metric}:{'max' if self.maximize else 'min'}"


#: The standard exploration objectives: energy, speed, silicon, yield.
DEFAULT_OBJECTIVES = (
    Objective("epi_ule"),
    Objective("spi_ule"),
    Objective("area_mm2"),
    Objective("yield", maximize=True),
)


def dominates(
    a: Mapping[str, float],
    b: Mapping[str, float],
    objectives: Sequence[Objective],
) -> bool:
    """Whether ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere."""
    strictly_better = False
    for objective in objectives:
        va, vb = a[objective.metric], b[objective.metric]
        if objective.maximize:
            va, vb = -va, -vb
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_indices(
    rows: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> list[int]:
    """Indices of the non-dominated rows, in input order."""
    frontier = []
    for i, row in enumerate(rows):
        if not any(
            dominates(other, row, objectives)
            for j, other in enumerate(rows)
            if j != i
        ):
            frontier.append(i)
    return frontier


def sensitivity(
    rows: Sequence[Mapping[str, float]],
    axis_values: Sequence[object],
    metric: str,
) -> dict[object, float]:
    """Mean of ``metric`` per distinct axis value (insertion order).

    ``axis_values[i]`` is row ``i``'s assignment on the axis under
    study; the result quantifies how much moving along that axis alone
    shifts the metric on average — the per-axis sensitivity table of
    the exploration report.
    """
    if len(rows) != len(axis_values):
        raise ValueError("rows and axis_values must align")
    sums: dict[object, float] = {}
    counts: dict[object, int] = {}
    for row, value in zip(rows, axis_values):
        sums[value] = sums.get(value, 0.0) + row[metric]
        counts[value] = counts.get(value, 0) + 1
    return {value: sums[value] / counts[value] for value in sums}


def rank_rows(
    rows: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    frontier: set[int] | None = None,
) -> list[int]:
    """Row indices ranked: frontier first, then by the first objective.

    Within each tier (non-dominated / dominated) rows order by the
    primary objective's value, direction-adjusted — a stable, total
    order for the ranked report.  Pass a precomputed ``frontier`` to
    avoid repeating the quadratic dominance scan.
    """
    if frontier is None:
        frontier = set(pareto_indices(rows, objectives))
    primary = objectives[0]

    def key(index: int):
        value = rows[index][primary.metric]
        if primary.maximize:
            value = -value
        return (0 if index in frontier else 1, value, index)

    return sorted(range(len(rows)), key=key)


def render_saved_campaign(
    payload: Mapping,
    objectives: Sequence[Objective] | None = None,
    top: int = 20,
) -> str:
    """Re-reduce and render a campaign saved by ``sweep --save-json``.

    ``objectives=None`` re-uses the objectives recorded in the payload
    (falling back to :data:`DEFAULT_OBJECTIVES`); passing a different
    set re-ranks the same measurements along new axes — the whole point
    of persisting the campaign.
    """
    if objectives is None:
        recorded = payload.get("objectives") or []
        objectives = (
            tuple(Objective.parse(text) for text in recorded)
            or DEFAULT_OBJECTIVES
        )
    candidates = list(payload.get("candidates", []))
    rows = [candidate["metrics"] for candidate in candidates]
    frontier = set(pareto_indices(rows, objectives))
    objective_text = ", ".join(str(o) for o in objectives)
    table = Table(
        ["rank", "candidate", "pareto"]
        + [objective.metric for objective in objectives],
        title=(
            f"Pareto re-reduction — {len(rows)} candidates, "
            f"{len(frontier)} on the frontier [{objective_text}]"
        ),
    )
    ranked = rank_rows(rows, objectives, frontier=frontier)
    for rank, index in enumerate(ranked[:top], 1):
        table.add_row(
            [
                rank,
                candidates[index]["name"],
                "*" if index in frontier else "",
            ]
            + [
                rows[index][objective.metric]
                for objective in objectives
            ]
        )
    return table.render()
