"""Experiment registry: ids -> drivers (see DESIGN.md section 4)."""

from __future__ import annotations

import inspect
from collections.abc import Callable

from repro.experiments.ablations import (
    run_cache_size_ablation,
    run_memory_latency_ablation,
    run_vdd_ablation,
    run_way_split_ablation,
)
from repro.experiments.area_table import run_area
from repro.experiments.edc_table import run_edc_table
from repro.experiments.epi_figures import run_fig3, run_fig4
from repro.experiments.exec_time import run_exec_time
from repro.experiments.methodology_table import run_methodology
from repro.experiments.modeswitch_table import run_modeswitch
from repro.experiments.policy_sweep import run_policy_sweep
from repro.experiments.population_study import run_population
from repro.experiments.reliability_check import run_reliability
from repro.experiments.report import ExperimentResult
from repro.experiments.sustain import run_cells_sweep, run_sustain
from repro.experiments.sweeps import (
    run_edc_sweep,
    run_space_sweep,
    run_surrogate_sweep,
)
from repro.experiments.transients_table import run_transients
from repro.experiments.wcet_table import run_wcet

_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "tab-sizing": run_methodology,
    "tab-area": run_area,
    "tab-exectime": run_exec_time,
    "tab-reliability": run_reliability,
    "tab-edc": run_edc_table,
    "tab-wcet": run_wcet,
    "tab-modeswitch": run_modeswitch,
    "ablation-ways": run_way_split_ablation,
    "ablation-memlat": run_memory_latency_ablation,
    "ablation-cachesize": run_cache_size_ablation,
    "ablation-vdd": run_vdd_ablation,
    "population": run_population,
    "transients": run_transients,
    "sweep-space": run_space_sweep,
    "sweep-edc": run_edc_sweep,
    "sweep-surrogate": run_surrogate_sweep,
    "sweep-policy": run_policy_sweep,
    "sweep-cells": run_cells_sweep,
    "sustain": run_sustain,
}


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def experiment_parameters(experiment_id: str) -> frozenset[str]:
    """Keyword parameters the experiment's driver accepts.

    The CLI uses this to forward only applicable options (e.g.
    ``--trace-length``) instead of maintaining a per-experiment
    allowlist that drifts as drivers are added.
    """
    try:
        driver = _REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {list_experiments()}"
        ) from None
    return frozenset(inspect.signature(driver).parameters)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id; kwargs pass through to its driver."""
    try:
        driver = _REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {list_experiments()}"
        ) from None
    return driver(**kwargs)
