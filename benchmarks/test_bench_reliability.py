"""Bench ``tab-reliability``: yield equivalence + Monte Carlo validation.

The proposed 8T+EDC way must match the 10T baseline's yield (paper's
central reliability claim), and simulated dies must agree with Eq. (1)-(2)
with zero silent data corruptions.
"""

from conftest import record_report, run_once

from repro.experiments.reliability_check import run_reliability


def test_reliability_equivalence(benchmark):
    result = run_once(benchmark, run_reliability, dies=400)
    record_report("tab-reliability", result.render())

    for scenario in ("A", "B"):
        entry = result.data[scenario]
        # No silent corruption, ever: the EDC layer either returns the
        # right data or flags the word.
        assert entry["silent_errors"] == 0
        # The methodology's yield constraint holds analytically.
        assert entry["yield_proposed"] >= entry["yield_baseline"]
        # Monte Carlo agrees with Eq. (2) within sampling noise.
        analytic = entry["analytic_data_yield"]
        sigma = (analytic * (1 - analytic) / entry["dies"]) ** 0.5
        assert abs(entry["empirical_yield"] - analytic) < max(
            4 * sigma, 0.02
        )
