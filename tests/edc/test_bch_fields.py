"""BCH machinery across different field degrees and capacities.

The scenarios only need GF(2^6)/t=2, but the substrate is generic; these
tests pin that down (and guard the generator construction against field
regressions).
"""

import numpy as np
import pytest

from repro.edc.base import DecodeStatus
from repro.edc.bch import BchCode
from repro.edc.gf2m import GF2m


@pytest.mark.parametrize("m", [4, 5, 6, 7, 8])
def test_field_construction(m):
    field = GF2m(m)
    assert field.order == (1 << m) - 1
    # Spot-check the group structure.
    a = field.alpha_pow(1)
    assert field.pow(a, field.order) == 1


@pytest.mark.parametrize(
    "data_bits,t,m",
    [
        (11, 1, 4),   # Hamming-like (15,11) BCH
        (16, 2, 5),   # shortened (31,21)
        (32, 2, 6),   # the paper's inner code
        (45, 3, 7),   # deep-shortened triple-corrector
    ],
)
def test_bch_capacity_contract(data_bits, t, m):
    """Any <= t errors are corrected on several random codewords."""
    code = BchCode(data_bits, t=t, m=m)
    rng = np.random.default_rng(m * 100 + t)
    for _ in range(10):
        data = int(rng.integers(0, 1 << data_bits))
        codeword = code.encode(data)
        assert code.decode(codeword).status is DecodeStatus.CLEAN
        for errors in range(1, t + 1):
            picks = rng.choice(code.n, size=errors, replace=False)
            corrupted = codeword
            for position in picks:
                corrupted ^= 1 << int(position)
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data


def test_check_bits_scale_with_t():
    r_values = [
        BchCode(20, t=t, m=6).check_bits for t in (1, 2, 3)
    ]
    assert r_values == sorted(r_values)
    assert r_values[0] == 6       # one minimal polynomial
    assert r_values[1] == 12      # two


def test_shortening_preserves_guarantees(rng):
    """A heavily shortened code keeps its correction capability."""
    code = BchCode(8, t=2, m=6)   # shortened from 63 to 20 bits
    data = int(rng.integers(0, 1 << 8))
    codeword = code.encode(data)
    import itertools

    for a, b in itertools.combinations(range(code.n), 2):
        result = code.decode(codeword ^ (1 << a) ^ (1 << b))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data
