"""Execute the ``>>>`` examples embedded in public-API docstrings.

The docstring audit added runnable examples to the exploration,
runtime and segmentation APIs; this gate keeps them true.  Modules
whose examples are illustrative literal blocks (``::``) rather than
doctests are not listed — doctest simply finds nothing there.
"""

import doctest

import pytest

import repro.explore.space
import repro.runtime.epochs
import repro.runtime.policies
import repro.runtime.simulator

MODULES = [
    repro.explore.space,
    repro.runtime.epochs,
    repro.runtime.policies,
    repro.runtime.simulator,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_docstring_examples_hold(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"{module.__name__} lists no doctests; update this gate"
    )
    assert results.failed == 0
