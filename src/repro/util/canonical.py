"""Invocation-stable canonical serialization of model objects.

Sweep points, job keys and the on-disk result cache all need one thing:
two structurally equal configurations must serialize to the *same* bytes
in every interpreter invocation.  ``repr`` cannot promise that — set
iteration order follows randomized string hashing — so this walker
recurses through dataclasses and containers, sorting unordered ones, and
emits plain JSON-able structures.

``canonical_form`` returns the nested structure (useful for reports and
machine-readable dumps); ``canonical_text`` the compact JSON rendering
(useful as hash input); ``canonical_digest`` its SHA-256.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping


def canonical_form(value: Any) -> Any:
    """A JSON-able canonical structure describing ``value``.

    Dataclasses become dicts tagged with the class name; enums become
    ``"ClassName.MEMBER"`` strings; sets are sorted by their members'
    canonical text; mappings are keyed by canonical text of the key.
    Unknown leaf types fall back to ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        form: dict[str, Any] = {"__class__": type(value).__name__}
        for field in dataclasses.fields(value):
            form[field.name] = canonical_form(getattr(value, field.name))
        return form
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (frozenset, set)):
        return sorted((canonical_form(item) for item in value),
                      key=_sort_key)
    if isinstance(value, Mapping):
        return {
            canonical_text(key): canonical_form(item)
            for key, item in value.items()
        }
    if isinstance(value, (tuple, list)):
        return [canonical_form(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _sort_key(form: Any) -> str:
    return json.dumps(form, sort_keys=True)


def canonical_text(value: Any) -> str:
    """The compact, sorted JSON rendering of :func:`canonical_form`."""
    return json.dumps(
        canonical_form(value), sort_keys=True, separators=(",", ":")
    )


def canonical_digest(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_text`."""
    return hashlib.sha256(canonical_text(value).encode("utf-8")).hexdigest()
