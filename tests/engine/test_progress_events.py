"""Progress events: order-independent payloads, serial == parallel.

:meth:`SimulationSession.run_jobs` reports per-completion
:class:`ProgressEvent` payloads carrying the completed job's key and
counts — nothing positional — so the *set* of payloads from a batch is
deterministic however the pool's completion order scrambles.  These
tests pin that contract (the service's streaming endpoint builds on
it).
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.jobs import SimulationJob, TraceSpec, job_key
from repro.engine.session import ProgressEvent, SimulationSession
from repro.tech.operating import Mode


@pytest.fixture(scope="module")
def batch(chips_a):
    """Six distinct tiny jobs (two traces, three seeds each)."""
    return [
        SimulationJob(
            chip=chips_a.proposed.config,
            trace=TraceSpec(benchmark, 1000, seed),
            mode=Mode.ULE,
        )
        for benchmark in ("adpcm_c", "epic_c")
        for seed in (0, 1, 2)
    ]


def run_collecting(session, jobs):
    events = []
    counts = []
    results = session.run_jobs(
        jobs,
        progress=lambda done, total: counts.append((done, total)),
        on_event=events.append,
    )
    return results, events, counts


def test_serial_events_name_every_executed_job(batch):
    with SimulationSession(jobs=1) as session:
        _, events, counts = run_collecting(session, batch)
    assert {event.key for event in events} == {job_key(job) for job in batch}
    assert [event.done for event in events] == list(range(1, 7))
    assert all(event.total == 6 for event in events)
    # The legacy (done, total) callback stays in lockstep.
    assert counts == [(done, 6) for done in range(1, 7)]


def test_event_payload_sets_match_across_serial_and_parallel(batch):
    """The determinism contract: same batch, same payloads, any order."""
    with SimulationSession(jobs=1) as serial:
        serial_results, serial_events, _ = run_collecting(serial, batch)
    with SimulationSession(jobs=2) as parallel:
        parallel_results, parallel_events, _ = run_collecting(
            parallel, batch
        )
    # Results agree bit-for-bit on the metrics (the full pickles are
    # not compared: crossing the pool's process boundary drops interned
    # -string identity sharing, which legitimately shifts pickle bytes).
    assert [
        (r.epi, r.execution_seconds, pickle.dumps(r.timing))
        for r in serial_results
    ] == [
        (r.epi, r.execution_seconds, pickle.dumps(r.timing))
        for r in parallel_results
    ]
    # Key sets are identical; done values are a permutation of 1..N in
    # both runs — order-independent payloads, order-dependent arrival.
    assert {event.key for event in parallel_events} == {
        event.key for event in serial_events
    }
    assert sorted(event.done for event in parallel_events) == list(
        range(1, 7)
    )
    assert {event.total for event in parallel_events} == {6}


def test_cache_hits_emit_no_events(batch):
    with SimulationSession(jobs=1) as session:
        session.run_jobs(batch)
        _, events, counts = run_collecting(session, batch)
    assert events == []
    assert counts == []


def test_duplicate_jobs_counted_once(batch):
    with SimulationSession(jobs=1) as session:
        _, events, _ = run_collecting(session, batch[:2] + batch[:2])
    assert len(events) == 2
    assert all(event.total == 2 for event in events)


def test_progress_event_is_frozen_value_object():
    event = ProgressEvent(key="abc", done=1, total=2)
    assert event == ProgressEvent(key="abc", done=1, total=2)
    with pytest.raises(AttributeError):
        event.done = 3
