"""Tests for repro.cacti.wires and repro.cacti.components."""

import pytest

from repro.cacti.components import (
    DecoderModel,
    FULL_SWING_BELOW_VDD,
    gate_leakage,
    periphery_leakage_power,
    read_swing,
    sense_energy,
)
from repro.cacti.wires import WireSegment
from repro.tech.node import ptm32


class TestWires:
    def test_cap_linear_in_length(self):
        assert WireSegment(2e-4).capacitance == pytest.approx(
            2 * WireSegment(1e-4).capacitance
        )

    def test_elmore_quadratic_in_length(self):
        assert WireSegment(2e-4).elmore_delay == pytest.approx(
            4 * WireSegment(1e-4).elmore_delay
        )

    def test_switch_energy_swing(self):
        wire = WireSegment(1e-4)
        full = wire.switch_energy(1.0)
        partial = wire.switch_energy(1.0, swing=0.15)
        assert partial == pytest.approx(0.15 * full)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            WireSegment(-1.0)


class TestSwing:
    def test_full_swing_at_nst(self):
        """No sense amps at 350 mV: reads are full rail."""
        assert read_swing(0.35, differential=True) == pytest.approx(0.35)
        assert read_swing(0.35, differential=False) == pytest.approx(0.35)

    def test_small_swing_at_high_vdd(self):
        assert read_swing(1.0, differential=True) < 0.2
        assert read_swing(1.0, differential=False) < 0.35

    def test_single_ended_swings_more(self):
        assert read_swing(1.0, differential=False) > read_swing(
            1.0, differential=True
        )

    def test_threshold_boundary(self):
        below = read_swing(FULL_SWING_BELOW_VDD - 0.01, True)
        assert below == pytest.approx(FULL_SWING_BELOW_VDD - 0.01)


class TestSenseEnergy:
    def test_scales_with_bitline_at_high_vdd(self):
        small = sense_energy(1.0, 2e-15)
        large = sense_energy(1.0, 10e-15)
        assert large == pytest.approx(5 * small)

    def test_floor_applies(self):
        tiny = sense_energy(1.0, 1e-18)
        assert tiny > 0

    def test_receiver_at_nst_independent_of_bitline(self):
        assert sense_energy(0.35, 2e-15) == sense_energy(0.35, 10e-15)


class TestDecoder:
    def test_gate_counts_grow_with_rows(self):
        small = DecoderModel(rows=16)
        large = DecoderModel(rows=64)
        assert large.total_gates > small.total_gates
        assert large.address_bits == 6

    def test_energy_much_smaller_than_typical_access(self):
        decoder = DecoderModel(rows=32)
        assert decoder.access_energy(1.0) < 100e-15

    def test_delay_positive_and_voltage_monotone(self):
        decoder = DecoderModel(rows=32)
        assert 0 < decoder.delay(1.0) < decoder.delay(0.35)

    def test_bad_rows(self):
        with pytest.raises(ValueError):
            DecoderModel(rows=0)


class TestLeakageHelpers:
    def test_gate_leakage_voltage_scaling(self):
        assert gate_leakage(0.35, ptm32()) < gate_leakage(1.0, ptm32()) / 3

    def test_periphery_scales_with_geometry(self):
        narrow = periphery_leakage_power(32, 64, 1.0, ptm32())
        wide = periphery_leakage_power(32, 256, 1.0, ptm32())
        assert wide > 2 * narrow
