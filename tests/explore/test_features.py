"""Candidate featurization: schemas, vectors, analytic free metrics."""

import numpy as np
import pytest

from repro.explore.candidates import build_candidate
from repro.explore.features import (
    FeatureSchema,
    chip_cache_area_mm2,
    free_metrics,
)


def _candidate(**overrides):
    point = {
        "size_kb": 8,
        "line_bytes": 32,
        "ways": 8,
        "ule_ways": 1,
        "ule_cell": "8T",
        "ule_scheme": "secded",
        "hp_scheme": "none",
        "vdd_ule": 0.35,
        "replacement": "lru",
        "suite": "paper",
    }
    point.update(overrides)
    return build_candidate(point)


class TestFreeMetrics:
    def test_expected_keys(self):
        metrics = free_metrics(_candidate())
        assert set(metrics) == {"area_mm2", "yield", "ule_size_factor"}

    def test_values_match_their_sources(self):
        candidate = _candidate()
        metrics = free_metrics(candidate)
        assert metrics["area_mm2"] == pytest.approx(
            chip_cache_area_mm2(candidate.chip)
        )
        assert metrics["yield"] == candidate.ule_design.yield_value
        assert metrics["ule_size_factor"] == (
            candidate.ule_design.cell.size_factor
        )

    def test_memo_returns_fresh_dicts(self):
        candidate = _candidate()
        first = free_metrics(candidate)
        first["area_mm2"] = -1.0
        assert free_metrics(candidate)["area_mm2"] > 0.0

    def test_bigger_cache_bigger_area(self):
        small = free_metrics(_candidate(size_kb=8))
        big = free_metrics(_candidate(size_kb=32))
        assert big["area_mm2"] > small["area_mm2"]


class TestFeatureSchema:
    def test_schema_independent_of_candidate_order(self):
        candidates = [
            _candidate(vdd_ule=0.35),
            _candidate(vdd_ule=0.45, ule_cell="10T"),
        ]
        forward = FeatureSchema.from_candidates(candidates)
        backward = FeatureSchema.from_candidates(candidates[::-1])
        assert forward == backward

    def test_numeric_axes_one_column_each(self):
        schema = FeatureSchema.from_candidates([_candidate()])
        assert "size_kb" in schema.numeric_axes
        assert "vdd_ule" in schema.numeric_axes

    def test_categorical_axes_one_hot(self):
        candidates = [
            _candidate(ule_cell="8T"),
            _candidate(ule_cell="10T"),
        ]
        schema = FeatureSchema.from_candidates(candidates)
        assert ("ule_cell", ("10T", "8T")) in schema.categorical_axes
        matrix = schema.matrix(candidates)
        columns = schema.columns
        col_10t = columns.index("ule_cell=10T")
        col_8t = columns.index("ule_cell=8T")
        assert matrix[0, col_8t] == 1.0
        assert matrix[0, col_10t] == 0.0
        assert matrix[1, col_10t] == 1.0

    def test_power_of_two_axes_log2(self):
        schema = FeatureSchema.from_candidates([_candidate()])
        row = schema.featurize(_candidate(size_kb=16))
        index = schema.columns.index("size_kb")
        assert row[index] == pytest.approx(4.0)

    def test_analytic_columns_appended(self):
        schema = FeatureSchema.from_candidates([_candidate()])
        assert schema.columns[-3:] == (
            "area_mm2", "yield", "ule_size_factor",
        )

    def test_matrix_shape_and_determinism(self):
        candidates = [
            _candidate(vdd_ule=v) for v in (0.35, 0.4, 0.45)
        ]
        schema = FeatureSchema.from_candidates(candidates)
        matrix = schema.matrix(candidates)
        assert matrix.shape == (3, len(schema.columns))
        assert np.array_equal(matrix, schema.matrix(candidates))

    def test_empty_matrix_keeps_width(self):
        schema = FeatureSchema.from_candidates([_candidate()])
        assert schema.matrix([]).shape == (0, len(schema.columns))

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            FeatureSchema.from_candidates([])
