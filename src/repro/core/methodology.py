"""The design methodology of the paper's Figure 2.

Steps, exactly as printed:

1. For the chosen NST Vcc (350 mV) and reduced frequency, size the 10T
   bitcell to match the hard bit failure rate (Pf) of the 6T bitcells at
   HP mode, using the (importance-sampling-based) failure analysis.
2. Compute the cache yield Y10T from the cache size and Pf.
3. For the replacement: start the 8T bitcell at the minimum size of the
   technology; compute its failure probability Pf8T; compute the failure
   probability of the EDC-protected cache via Eq. (1) and the yield via
   Eq. (2); while the yield is below Y10T, grow the transistors by the
   technology's minimal increment and repeat.  The first size that meets
   the target is the optimal cell size.

The yield constraint is evaluated over the region that must work at ULE
mode: the ULE way's data and tag words (plus their check bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells import (
    CELL_6T,
    CELL_8T,
    CELL_10T,
    CellDesign,
    CellTechnology,
    SizedCell,
)
from repro.core import calibration
from repro.core.scenarios import Scenario, ScenarioPlan, plan_for
from repro.edc.protection import ProtectionScheme, check_bits_for
from repro.reliability.yield_model import WordOrganization
from repro.tech.node import TechnologyNode, ptm32
from repro.tech.operating import HP_OPERATING_POINT, ULE_OPERATING_POINT
from repro.util.tables import Table


@dataclass(frozen=True)
class UleWayGeometry:
    """Word structure of the region that must survive at ULE mode."""

    sets: int
    words_per_line: int
    data_word_bits: int
    tag_bits: int

    @property
    def data_words(self) -> int:
        """Data words per ULE way."""
        return self.sets * self.words_per_line

    @property
    def tag_words(self) -> int:
        """Tag words per ULE way."""
        return self.sets

    def organization(
        self, scheme: ProtectionScheme, hard_budget: int
    ) -> WordOrganization:
        """Eq. (2) organization for one protection scheme."""
        return WordOrganization(
            data_words=self.data_words,
            data_word_bits=self.data_word_bits
            + check_bits_for(scheme, self.data_word_bits),
            tag_words=self.tag_words,
            tag_word_bits=self.tag_bits
            + check_bits_for(scheme, self.tag_bits),
            hard_fault_budget=hard_budget,
        )


def default_ule_geometry(
    cache_bytes: int = calibration.CACHE_SIZE_BYTES,
    line_bytes: int = calibration.CACHE_LINE_BYTES,
    ways: int = calibration.CACHE_WAYS,
    ule_ways: int = calibration.ULE_WAYS,
) -> UleWayGeometry:
    """The region that must survive ULE mode: the ULE way(s).

    Defaults reproduce the paper's 8 KB 8-way 7+1 evaluation point; the
    cache-size and way-split ablations pass other geometries.
    """
    sets = cache_bytes // (line_bytes * ways)
    if sets <= 0:
        raise ValueError("cache too small for the way count")
    return UleWayGeometry(
        sets=sets * ule_ways,
        words_per_line=line_bytes * 8 // 32,
        data_word_bits=32,
        tag_bits=26,
    )


@dataclass(frozen=True)
class WayDesign:
    """One sized way: the generalized unit of the Fig. 2 methodology.

    Attributes:
        cell: the sized bitcell design.
        scheme: the protection scheme the sizing assumed at the target
            operating point.
        pf: the cell's bit failure probability at that point.
        yield_value: the way's yield under Eq. (2).
        iterations: sizing-loop iterations (1 for pf-target sizing).
    """

    cell: SizedCell
    scheme: ProtectionScheme
    pf: float
    yield_value: float
    iterations: int


def design_way_for_pf(
    topology: CellTechnology,
    scheme: ProtectionScheme,
    geometry: UleWayGeometry,
    vdd: float,
    pf_target: float | None = None,
    hard_budget: int = 0,
    node: TechnologyNode | None = None,
) -> WayDesign:
    """Size a way's cell to a bit-failure target; report its yield.

    This is the baseline move of the paper's methodology (steps 1-2 of
    Fig. 2, applied to the 10T cell), generalized to any registered
    cell technology, protection scheme and supply so design-space
    exploration can build arbitrary candidates — SRAM, eDRAM or gain
    cell alike, through the :class:`repro.cells.CellTechnology`
    protocol only.
    """
    node = node or ptm32()
    pf_target = pf_target if pf_target is not None else calibration.PF_TARGET
    size = topology.size_for_pf(vdd, pf_target, node)
    cell = topology.design(size, node)
    pf = topology.failure_probability(vdd, size, node)
    organization = geometry.organization(scheme, hard_budget=hard_budget)
    return WayDesign(
        cell=cell,
        scheme=scheme,
        pf=pf,
        yield_value=organization.yield_at(pf),
        iterations=1,
    )


def design_way_for_yield(
    topology: CellTechnology,
    scheme: ProtectionScheme,
    geometry: UleWayGeometry,
    vdd: float,
    yield_floor: float,
    hard_budget: int | None = None,
    node: TechnologyNode | None = None,
) -> WayDesign:
    """Grow a way's cell until its coded yield reaches ``yield_floor``.

    The proposed-side move of Fig. 2 (steps 3-6), generalized: start at
    the minimum size, compute the EDC-protected yield via Eq. (1)-(2),
    and grow by the technology's minimal increment until the floor is
    met.  ``hard_budget`` defaults to the scheme's own hard-fault budget.
    """
    node = node or ptm32()
    if hard_budget is None:
        hard_budget = scheme.hard_fault_budget
    organization = geometry.organization(scheme, hard_budget=hard_budget)
    step = topology.minimal_size_step(node)
    size = 1.0
    iterations = 0
    while True:
        iterations += 1
        pf = topology.failure_probability(vdd, size, node)
        yield_value = organization.yield_at(pf)
        if yield_value >= yield_floor:
            break
        size = round(size + step, 9)
        if size > 64.0:
            raise RuntimeError(
                f"{topology.name}+{scheme} sizing diverged at "
                f"{vdd * 1e3:.0f} mV; the combination cannot reach "
                f"yield {yield_floor:.5f}"
            )
    return WayDesign(
        cell=topology.design(size, node),
        scheme=scheme,
        pf=pf,
        yield_value=yield_value,
        iterations=iterations,
    )


@dataclass(frozen=True)
class DesignResult:
    """Everything the Fig. 2 methodology produces for one scenario."""

    scenario: Scenario
    plan: ScenarioPlan
    pf_target: float
    cell_6t: CellDesign
    cell_10t: CellDesign
    cell_8t: CellDesign
    pf_6t_hp: float
    pf_10t_ule: float
    pf_8t_ule: float
    yield_baseline: float
    yield_proposed: float
    sizing_iterations: int

    def summary(self) -> str:
        """Render the methodology's intermediate numbers as a table."""
        table = Table(
            ["quantity", "value"],
            title=f"Fig. 2 methodology — scenario {self.scenario.value}",
        )
        table.add_row(["Pf target (paper anchor)", f"{self.pf_target:.3g}"])
        table.add_row(["6T size factor @ 1 V", self.cell_6t.size_factor])
        table.add_row(["6T Pf @ 1 V", f"{self.pf_6t_hp:.3g}"])
        table.add_row(["10T size factor @ 350 mV", self.cell_10t.size_factor])
        table.add_row(["10T Pf @ 350 mV", f"{self.pf_10t_ule:.3g}"])
        table.add_row(["8T size factor @ 350 mV", self.cell_8t.size_factor])
        table.add_row(["8T Pf @ 350 mV", f"{self.pf_8t_ule:.3g}"])
        table.add_row(["baseline ULE-way yield", f"{self.yield_baseline:.5f}"])
        table.add_row(["proposed ULE-way yield", f"{self.yield_proposed:.5f}"])
        table.add_row(["8T sizing iterations", self.sizing_iterations])
        table.add_row(
            [
                "cell area 10T / 8T",
                f"{self.cell_10t.area / self.cell_8t.area:.2f}x",
            ]
        )
        return table.render()


def design_scenario(
    scenario: Scenario,
    geometry: UleWayGeometry | None = None,
    pf_target: float | None = None,
    node: TechnologyNode | None = None,
    vdd_hp: float | None = None,
    vdd_ule: float | None = None,
) -> DesignResult:
    """Run the Fig. 2 methodology for one scenario.

    ``vdd_hp`` / ``vdd_ule`` default to the paper's operating points
    (1 V / 350 mV); the Vcc ablation passes other NST supplies — "our
    architecture is not limited to any particular Vcc level" (§III-B).
    """
    node = node or ptm32()
    geometry = geometry or default_ule_geometry()
    pf_target = pf_target if pf_target is not None else calibration.PF_TARGET
    plan = plan_for(scenario)
    vdd_hp = vdd_hp if vdd_hp is not None else HP_OPERATING_POINT.vdd
    vdd_ule = vdd_ule if vdd_ule is not None else ULE_OPERATING_POINT.vdd

    # Step 0 (baseline HP ways): size 6T for the Pf target at HP mode.
    s6 = CELL_6T.size_for_pf(vdd_hp, pf_target, node)
    cell_6t = CELL_6T.design(s6, node)
    pf_6t = CELL_6T.failure_probability(vdd_hp, s6, node)

    # Step 1-2: size 10T at ULE mode to match Pf; baseline yield.  The
    # baseline's coding (scenario B's SECDED) is reserved for soft
    # errors, so its hard-fault budget is zero.
    baseline = design_way_for_pf(
        CELL_10T,
        plan.baseline_ule_way.ule,
        geometry,
        vdd_ule,
        pf_target=pf_target,
        hard_budget=0,
        node=node,
    )

    # Steps 3-6: grow the 8T cell until the coded yield reaches Y10T.
    proposed = design_way_for_yield(
        CELL_8T,
        plan.proposed_ule_way.ule,
        geometry,
        vdd_ule,
        yield_floor=baseline.yield_value,
        hard_budget=plan.proposed_ule_hard_budget,
        node=node,
    )

    return DesignResult(
        scenario=scenario,
        plan=plan,
        pf_target=pf_target,
        cell_6t=cell_6t,
        cell_10t=baseline.cell,
        cell_8t=proposed.cell,
        pf_6t_hp=pf_6t,
        pf_10t_ule=baseline.pf,
        pf_8t_ule=proposed.pf,
        yield_baseline=baseline.yield_value,
        yield_proposed=proposed.yield_value,
        sizing_iterations=proposed.iterations,
    )
