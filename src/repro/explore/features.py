"""Deterministic numeric featurization of exploration candidates.

The surrogate (:mod:`repro.explore.surrogate`) regresses simulated
campaign objectives against *cheap* candidate descriptions.  This module
turns a :class:`~repro.explore.candidates.Candidate` into a fixed-width
float vector built from two ingredient groups:

* **axis features** — the sweep point itself: numeric axes pass through
  as floats (sizes in log2, supplies in volts), categorical axes expand
  to one-hot columns over the values observed in the candidate set, so
  a schema is exactly as wide as the space under study;
* **analytic features** — quantities the methodology already computes
  without any simulation: cache area, ULE-way yield and the sized
  cell's area factor.  They carry most of the physics (a bigger cell
  means more energy per access) and cost nothing, which is what makes
  the surrogate sample-efficient.

Everything is deterministic: the column order is fixed by the schema
(sorted axis names, sorted category values), and the analytic features
are memoized by the candidate's *content digest* — the same canonical
config digests the engine's job keys use — so repeated featurization of
equal hardware is a dictionary hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cacti.model import CacheEnergyModel
from repro.explore.candidates import Candidate

#: Axes whose values are powers of two; featurized in log2 so one step
#: along the axis is one unit of feature space.
_LOG2_AXES = frozenset({"size_kb", "line_bytes", "ways", "ule_ways"})

#: Analytic (simulation-free) candidate metrics, memoized by the
#: candidate's hardware digest + its ULE operating point.
_FREE_METRIC_MEMO: dict[tuple[str, object], dict[str, float]] = {}
_FREE_METRIC_MEMO_LIMIT = 4096


def chip_cache_area_mm2(chip) -> float:
    """Total L1 silicon of a chip (IL1 + DL1), in mm^2."""
    il1 = CacheEnergyModel(chip.il1).area
    dl1 = (
        il1
        if chip.dl1 is chip.il1 or chip.dl1 == chip.il1
        else CacheEnergyModel(chip.dl1).area
    )
    return (il1 + dl1) * 1e6


def free_metrics(candidate: Candidate) -> dict[str, float]:
    """Candidate metrics known *without* simulating anything.

    ``area_mm2``, ``yield`` and ``ule_size_factor`` come straight from
    the sizing methodology and the area model; the campaign reduction
    reports them and the surrogate loop treats them as exact (only
    simulated metrics are ever predicted).  Memoized by the candidate's
    content digest, so equal hardware across rounds and campaigns pays
    the area model once.
    """
    key = (candidate.digest, candidate.ule_point)
    cached = _FREE_METRIC_MEMO.get(key)
    if cached is None:
        cached = {
            "area_mm2": chip_cache_area_mm2(candidate.chip),
            "yield": candidate.ule_design.yield_value,
            "ule_size_factor": candidate.ule_design.cell.size_factor,
        }
        while len(_FREE_METRIC_MEMO) >= _FREE_METRIC_MEMO_LIMIT:
            _FREE_METRIC_MEMO.pop(next(iter(_FREE_METRIC_MEMO)))
        _FREE_METRIC_MEMO[key] = cached
    return dict(cached)


@dataclass(frozen=True)
class FeatureSchema:
    """A fixed, ordered mapping from candidates to feature vectors.

    Attributes:
        numeric_axes: axis names featurized as one float column each.
        categorical_axes: (axis name, ordered category values) pairs,
            each expanding to one one-hot column per value.
        analytic: analytic feature names appended after the axes.
    """

    numeric_axes: tuple[str, ...]
    categorical_axes: tuple[tuple[str, tuple[str, ...]], ...]
    analytic: tuple[str, ...]

    @classmethod
    def from_candidates(
        cls, candidates: Sequence[Candidate]
    ) -> "FeatureSchema":
        """Derive the schema covering a candidate set.

        Axis names sort alphabetically; categorical values sort by
        text.  Booleans count as numeric (0/1).  The schema depends
        only on the candidate *set*, never on its order, so serial and
        parallel campaigns featurize identically.
        """
        if not candidates:
            raise ValueError("a feature schema needs candidates")
        values_by_axis: dict[str, set] = {}
        for candidate in candidates:
            for axis, value in candidate.point:
                values_by_axis.setdefault(axis, set()).add(value)
        numeric: list[str] = []
        categorical: list[tuple[str, tuple[str, ...]]] = []
        for axis in sorted(values_by_axis):
            values = values_by_axis[axis]
            if all(
                isinstance(value, (int, float, bool))
                for value in values
            ):
                numeric.append(axis)
            else:
                categorical.append(
                    (axis, tuple(sorted(str(v) for v in values)))
                )
        return cls(
            numeric_axes=tuple(numeric),
            categorical_axes=tuple(categorical),
            analytic=("area_mm2", "yield", "ule_size_factor"),
        )

    @property
    def columns(self) -> tuple[str, ...]:
        """Ordered human-readable column labels."""
        labels = list(self.numeric_axes)
        for axis, values in self.categorical_axes:
            labels.extend(f"{axis}={value}" for value in values)
        labels.extend(self.analytic)
        return tuple(labels)

    def featurize(self, candidate: Candidate) -> np.ndarray:
        """The candidate's feature vector under this schema."""
        point = candidate.point_dict()
        analytic = free_metrics(candidate)
        row = np.zeros(len(self.columns), dtype=float)
        cursor = 0
        for axis in self.numeric_axes:
            value = float(point.get(axis, 0.0))
            if axis in _LOG2_AXES and value > 0.0:
                value = float(np.log2(value))
            row[cursor] = value
            cursor += 1
        for axis, values in self.categorical_axes:
            text = str(point.get(axis, ""))
            for value in values:
                if text == value:
                    row[cursor] = 1.0
                cursor += 1
        for name in self.analytic:
            value = analytic[name]
            # Yields live in (0, 1] and areas in mm^2; log-compress the
            # strictly positive ones so decades of area do not drown
            # the one-hot columns in the kNN distance.
            row[cursor] = float(np.log(value)) if value > 0.0 else 0.0
            cursor += 1
        return row

    def matrix(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """Feature rows for a candidate sequence, in the given order."""
        if not candidates:
            return np.zeros((0, len(self.columns)), dtype=float)
        return np.stack(
            [self.featurize(candidate) for candidate in candidates]
        )
