"""Scheduling policies: who decides when the chip runs HP vs ULE.

A :class:`SchedulePolicy` maps a sequence of epochs to one operating
mode per epoch.  Policies come in two flavors:

* **feature-driven** (``requires_results = False``) — decide from the
  epochs' simulation-free features alone (:class:`StaticDutyCycle`,
  :class:`UtilizationThreshold`); the scheduler then simulates only the
  chosen (epoch, mode) pairs;
* **result-driven** (``requires_results = True``) — need the per-epoch
  run results of *every* candidate mode before deciding
  (:class:`EnergyBudget`, :class:`Oracle`); the scheduler batches both
  modes for all epochs through the session first (deduplicated, so
  recurring epochs simulate once).

All policies are deterministic: the same epochs and results always
yield the same schedule, which is what makes scheduled runs
byte-identical between serial and parallel sessions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, Mapping, Sequence

from repro.cpu.chip import ChipConfig, RunResult
from repro.runtime.epochs import Epoch
from repro.tech.operating import Mode, OperatingPoint

#: The modes a schedule chooses between.
CANDIDATE_MODES: tuple[Mode, ...] = (Mode.HP, Mode.ULE)


@dataclass(frozen=True)
class ScheduleContext:
    """Chip-side facts a policy may consult while deciding.

    Attributes:
        chip: the chip configuration being scheduled.
        points: operating point used for each mode.
        il1_ule_capacity / dl1_ule_capacity: data bytes reachable at
            ULE mode in each L1 (the gated HP ways excluded).
        transition_energy: worst-case energy estimate (J) per switch
            direction, summed over both L1s.
        transition_seconds: matching wall-clock estimate (s).
    """

    chip: ChipConfig
    points: Mapping[Mode, OperatingPoint]
    il1_ule_capacity: int
    dl1_ule_capacity: int
    transition_energy: Mapping[tuple[Mode, Mode], float] = field(
        default_factory=dict
    )
    transition_seconds: Mapping[tuple[Mode, Mode], float] = field(
        default_factory=dict
    )


class SchedulePolicy(ABC):
    """Base class: one operating mode per epoch.

    Subclasses set :attr:`name` (the CLI/registry identifier), declare
    :attr:`requires_results`, and implement :meth:`choose`.
    """

    #: Identifier used by the CLI and the ``sweep-policy`` experiment.
    name: ClassVar[str] = "abstract"

    #: Whether :meth:`choose` needs per-epoch results for every
    #: candidate mode (True) or decides from features alone (False).
    requires_results: ClassVar[bool] = False

    @abstractmethod
    def choose(
        self,
        epochs: Sequence[Epoch],
        context: ScheduleContext,
        results: Mapping[Mode, Sequence[RunResult]] | None = None,
    ) -> list[Mode]:
        """The operating mode of every epoch, in order.

        Parameters
        ----------
        epochs : sequence of Epoch
            The segmented trace.
        context : ScheduleContext
            Chip capacities, operating points and transition estimates.
        results : mapping, optional
            Per-mode, per-epoch run results; only provided (and only
            required) when :attr:`requires_results` is True.

        Returns
        -------
        list of Mode
            ``len(epochs)`` entries; the scheduler charges a mode
            transition wherever consecutive entries differ.
        """

    def describe(self) -> str:
        """Short human-readable parameterization."""
        return self.name


class StaticDutyCycle(SchedulePolicy):
    """A fixed fraction of epochs at HP, spread evenly.

    The paper's deployment sketch — "99 %–99.99 % of the time at ULE
    mode" — as an open-loop schedule.  Epoch ``i`` runs HP exactly when
    the running duty target crosses an integer at it (largest-remainder
    spreading), so ``hp_duty=0.25`` yields HP on every fourth epoch
    rather than a front-loaded block.

    Parameters
    ----------
    hp_duty : float
        Fraction of *epochs* run at HP mode, in [0, 1].  0 pins the
        schedule to ULE; 1 pins it to HP (and, with a single epoch,
        reproduces a plain HP :meth:`repro.cpu.chip.Chip.run`
        bit-for-bit — pinned by the runtime property tests).

    Examples
    --------
    >>> policy = StaticDutyCycle(0.5)
    >>> policy.describe()
    'static(hp_duty=0.5)'
    """

    name: ClassVar[str] = "static"
    requires_results: ClassVar[bool] = False

    def __init__(self, hp_duty: float):
        if not 0.0 <= hp_duty <= 1.0:
            raise ValueError("hp_duty must be within [0, 1]")
        self.hp_duty = hp_duty

    def choose(self, epochs, context, results=None) -> list[Mode]:
        """HP on every duty-crossing epoch (see class doc)."""
        modes = []
        for index in range(len(epochs)):
            crossed = math.floor(
                (index + 1) * self.hp_duty
            ) - math.floor(index * self.hp_duty)
            modes.append(Mode.HP if crossed >= 1 else Mode.ULE)
        return modes

    def describe(self) -> str:
        """``static(hp_duty=...)``."""
        return f"static(hp_duty={self.hp_duty:g})"


class UtilizationThreshold(SchedulePolicy):
    """HP when an epoch's footprint overflows the ULE-mode cache.

    At ULE mode only the ULE way group is powered, so an epoch whose
    working set (or code footprint) exceeds that capacity thrashes the
    single powered way — exactly the epochs worth a HP burst.  The
    demand proxy is::

        utilization = max(working_set / dl1_ule_capacity,
                          code_footprint / il1_ule_capacity)

    and the epoch runs HP when ``utilization > threshold``.

    Parameters
    ----------
    threshold : float
        Overflow factor above which an epoch is scheduled at HP.  The
        1.0 default means "run HP when the footprint no longer fits
        the ULE-mode cache at all" — it cleanly separates the
        SmallBench monitoring phases (~0.7x the ULE way) from
        BigBench bursts (>5x).

    Examples
    --------
    >>> policy = UtilizationThreshold(threshold=1.0)
    >>> policy.describe()
    'utilization(threshold=1)'
    """

    name: ClassVar[str] = "utilization"
    requires_results: ClassVar[bool] = False

    def __init__(self, threshold: float = 1.0):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def utilization(self, epoch: Epoch, context: ScheduleContext) -> float:
        """The demand proxy of one epoch (see the class docstring)."""
        features = epoch.features
        return max(
            features.working_set_bytes
            / max(context.dl1_ule_capacity, 1),
            features.code_footprint_bytes
            / max(context.il1_ule_capacity, 1),
        )

    def choose(self, epochs, context, results=None) -> list[Mode]:
        """HP where the footprint overflows ULE capacity."""
        return [
            Mode.HP
            if self.utilization(epoch, context) > self.threshold
            else Mode.ULE
            for epoch in epochs
        ]

    def describe(self) -> str:
        """``utilization(threshold=...)``."""
        return f"utilization(threshold={self.threshold:g})"


class EnergyBudget(SchedulePolicy):
    """Battery-aware: spend HP performance while the budget affords it.

    Walks the epochs in order, preferring HP; an epoch runs HP only if
    doing so still leaves enough budget to finish the remaining trace
    at ULE mode (the frugal fallback).  Guarantees the schedule's *run*
    energy never exceeds the budget as long as the all-ULE schedule
    fits it; mode-transition costs are charged exactly by the scheduler
    ledger but are not part of the decision arithmetic (they amortize
    to well below a percent at the paper's phase lengths).

    Parameters
    ----------
    budget_joules : float
        Total energy budget for the trace (J), e.g. the charge a
        harvesting cycle replenishes.

    Examples
    --------
    >>> policy = EnergyBudget(budget_joules=1e-3)
    >>> policy.requires_results
    True
    """

    name: ClassVar[str] = "budget"
    requires_results: ClassVar[bool] = True

    def __init__(self, budget_joules: float):
        if budget_joules <= 0:
            raise ValueError("budget_joules must be positive")
        self.budget_joules = budget_joules

    def choose(self, epochs, context, results=None) -> list[Mode]:
        """Greedy HP while the remaining budget affords it."""
        if results is None:
            raise ValueError(f"{self.name} policy needs per-mode results")
        hp_energy = [r.energy.total for r in results[Mode.HP]]
        ule_energy = [r.energy.total for r in results[Mode.ULE]]
        # ule_tail[i]: energy to finish epochs i.. at ULE mode.
        ule_tail = [0.0] * (len(epochs) + 1)
        for i in range(len(epochs) - 1, -1, -1):
            ule_tail[i] = ule_tail[i + 1] + ule_energy[i]
        modes: list[Mode] = []
        spent = 0.0
        for i in range(len(epochs)):
            if spent + hp_energy[i] + ule_tail[i + 1] <= self.budget_joules:
                modes.append(Mode.HP)
                spent += hp_energy[i]
            else:
                modes.append(Mode.ULE)
                spent += ule_energy[i]
        return modes

    def describe(self) -> str:
        """``budget(... mJ)``."""
        return f"budget({self.budget_joules * 1e3:g} mJ)"


class Oracle(SchedulePolicy):
    """The offline-optimal schedule: a DP over per-epoch run results.

    Knows every epoch's cost in both modes ahead of time and minimizes
    the chosen objective *including* the worst-case transition
    estimates from the context — a classic Viterbi pass over the
    two-state (HP/ULE) trellis.  No causal policy can beat it under
    the same objective, which makes it the upper bound the
    ``sweep-policy`` experiment ranks the implementable policies
    against.

    Parameters
    ----------
    objective : {"energy", "time"}
        Per-epoch cost: total run energy (J) or execution seconds.

    Examples
    --------
    >>> policy = Oracle(objective="energy")
    >>> policy.describe()
    'oracle(energy)'
    """

    name: ClassVar[str] = "oracle"
    requires_results: ClassVar[bool] = True

    _OBJECTIVES = ("energy", "time")

    def __init__(self, objective: str = "energy"):
        if objective not in self._OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; "
                f"known: {list(self._OBJECTIVES)}"
            )
        self.objective = objective

    def _cost(self, result: RunResult) -> float:
        if self.objective == "energy":
            return result.energy.total
        return result.execution_seconds

    def _switch_cost(
        self, context: ScheduleContext, source: Mode, target: Mode
    ) -> float:
        estimates = (
            context.transition_energy
            if self.objective == "energy"
            else context.transition_seconds
        )
        return estimates.get((source, target), 0.0)

    def choose(self, epochs, context, results=None) -> list[Mode]:
        """The Viterbi-optimal mode sequence."""
        if results is None:
            raise ValueError(f"{self.name} policy needs per-mode results")
        if not epochs:
            return []
        best: dict[Mode, float] = {
            mode: self._cost(results[mode][0]) for mode in CANDIDATE_MODES
        }
        # back[i][mode]: predecessor mode of the best path ending in
        # ``mode`` at epoch i.
        back: list[dict[Mode, Mode]] = [{}]
        for i in range(1, len(epochs)):
            step: dict[Mode, float] = {}
            pointers: dict[Mode, Mode] = {}
            for mode in CANDIDATE_MODES:
                arrivals = {
                    prev: best[prev]
                    + (
                        self._switch_cost(context, prev, mode)
                        if prev is not mode
                        else 0.0
                    )
                    for prev in CANDIDATE_MODES
                }
                # Deterministic tie-break: stay in the current mode.
                origin = min(
                    CANDIDATE_MODES,
                    key=lambda prev: (
                        arrivals[prev],
                        prev is not mode,
                    ),
                )
                step[mode] = arrivals[origin] + self._cost(
                    results[mode][i]
                )
                pointers[mode] = origin
            best = step
            back.append(pointers)
        final = min(
            CANDIDATE_MODES,
            key=lambda mode: (best[mode], mode is not Mode.ULE),
        )
        modes = [final]
        for pointers in reversed(back[1:]):
            modes.append(pointers[modes[-1]])
        modes.reverse()
        return modes

    def describe(self) -> str:
        """``oracle(<objective>)``."""
        return f"oracle({self.objective})"


#: Registered policy constructors, keyed by :attr:`SchedulePolicy.name`.
POLICIES: dict[str, type[SchedulePolicy]] = {
    StaticDutyCycle.name: StaticDutyCycle,
    UtilizationThreshold.name: UtilizationThreshold,
    EnergyBudget.name: EnergyBudget,
    Oracle.name: Oracle,
}


def policy_by_name(
    name: str,
    hp_duty: float = 0.1,
    threshold: float = 1.0,
    budget_joules: float | None = None,
    objective: str = "energy",
) -> SchedulePolicy:
    """Construct a policy from its CLI name and the relevant knobs.

    Parameters
    ----------
    name : str
        One of ``"static"``, ``"utilization"``, ``"budget"``,
        ``"oracle"``.
    hp_duty, threshold, budget_joules, objective :
        Forwarded to the matching constructor; the others are ignored.

    Returns
    -------
    SchedulePolicy
        The configured policy.
    """
    lowered = name.lower()
    if lowered == StaticDutyCycle.name:
        return StaticDutyCycle(hp_duty)
    if lowered == UtilizationThreshold.name:
        return UtilizationThreshold(threshold)
    if lowered == EnergyBudget.name:
        if budget_joules is None:
            raise ValueError("the budget policy needs budget_joules")
        return EnergyBudget(budget_joules)
    if lowered == Oracle.name:
        return Oracle(objective)
    raise ValueError(
        f"unknown policy {name!r}; known: {sorted(POLICIES)}"
    )
