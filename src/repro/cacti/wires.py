"""RC wire segments (local interconnect: wordlines, bitlines, output buses)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.node import TechnologyNode, ptm32


@dataclass(frozen=True)
class WireSegment:
    """A straight local-metal wire of a given length.

    Attributes:
        length: wire length (m).
        node: technology node supplying per-metre R and C.
    """

    length: float
    node: TechnologyNode = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.node is None:
            object.__setattr__(self, "node", ptm32())
        if self.length < 0:
            raise ValueError("length must be non-negative")

    @property
    def capacitance(self) -> float:
        """Total wire capacitance (F)."""
        return self.node.cwire_per_m * self.length

    @property
    def resistance(self) -> float:
        """Total wire resistance (ohm)."""
        return self.node.rwire_per_m * self.length

    @property
    def elmore_delay(self) -> float:
        """Distributed RC delay (s), 0.38 * R * C."""
        return 0.38 * self.resistance * self.capacitance

    def switch_energy(self, vdd: float, swing: float | None = None) -> float:
        """Energy to swing the wire by ``swing`` (defaults to full rail)."""
        if swing is None:
            swing = vdd
        return self.capacitance * vdd * swing
