#!/usr/bin/env python3
"""Performance smoke test: backend and batching speedups, gated.

Two experiments, both writing into ``BENCH_engine.json`` at the repo
root so future PRs can track the trajectory:

A third, separately invoked experiment (``--surrogate``) gates the
surrogate-guided exploration loop and writes ``BENCH_surrogate.json``:
the surrogate campaign must recover at least
``MIN_SURROGATE_HV_RATIO`` of the exhaustive campaign's frontier
hypervolume while submitting at most ``MAX_SURROGATE_JOBS_RATIO`` of
its jobs, bit-identically between serial and ``jobs=4`` sessions.

* **fig3 single-evaluation** — one fig3-style evaluation (scenario A at
  HP mode — the heaviest per-access workload: BigBench on all eight
  ways) on the vectorized vs the reference backend, checked to agree
  bit-for-bit (``speedup``).
* **design-space sweep** — ``SWEEP_CANDIDATES`` ULE operating points
  evaluated over the shared ULE traces on one chip config, the shape
  the paper's Vdd/EDC design-space exploration submits.  The
  mega-batched session path (trace-grouped plan reuse + functional-
  simulation memoization) is timed against (a) a per-job vectorized
  loop (``batch_vs_perjob``) and (b) the reference backend,
  extrapolated from one fully-timed candidate — re-running all
  candidates through the per-access reference model would take minutes
  for no extra information (``sweep_speedup``).  Batched results are
  checked bit-identical to the per-job results.

Gates, all exiting non-zero on failure so CI catches regressions:

* absolute floors — ``MIN_SPEEDUP`` on the fig3 speedup,
  ``MIN_SWEEP_SPEEDUP`` on the sweep-vs-reference speedup and
  ``MIN_BATCH_VS_PERJOB`` on the batched-vs-per-job ratio;
* a relative gate (``--check-against BASELINE.json``) — no fresh
  metric may drop more than ``REGRESSION_TOLERANCE`` below the
  checked-in baseline's.  The baseline is read *before* the fresh
  record overwrites it, so CI can check against the committed file in
  place.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --check-against BENCH_engine.json
    PYTHONPATH=src python benchmarks/perf_smoke.py --surrogate \
        --check-against BENCH_surrogate.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import replace

from repro.core.evaluation import cached_chips, evaluate_scenario
from repro.core.scenarios import Scenario
from repro.engine.jobs import SimulationJob, TraceSpec, execute_job
from repro.engine.session import SimulationSession, use_session
from repro.tech.operating import Mode, OperatingPoint

#: Floor on the end-to-end evaluation speedup (observed ~20x).
MIN_SPEEDUP = 5.0

#: Floor on the batched sweep vs the reference backend (observed
#: several hundred x: the reference walks every access per candidate,
#: the batched path simulates each (trace, config) once per sweep).
MIN_SWEEP_SPEEDUP = 100.0

#: Floor on the batched sweep vs a per-job vectorized loop (the
#: pre-batching engine fast path).
MIN_BATCH_VS_PERJOB = 3.0

#: Allowed fractional drop below the checked-in baseline's metrics
#: before the relative gate fails (shared-runner noise tolerance).
REGRESSION_TOLERANCE = 0.30

#: Dynamic instructions per benchmark; big enough to dominate setup.
TRACE_LENGTH = 60_000

#: Operating-point candidates in the sweep experiment.
SWEEP_CANDIDATES = 50

#: Dynamic instructions per benchmark in the sweep experiment.
SWEEP_TRACE_LENGTH = 60_000

#: The ULE-suite traces every sweep candidate shares.
SWEEP_BENCHMARKS = ("adpcm_c", "adpcm_d", "epic_c", "epic_d")

#: Floor on the surrogate frontier's hypervolume as a fraction of the
#: exhaustive frontier's (observed 0.97-1.00 across seeds).
MIN_SURROGATE_HV_RATIO = 0.95

#: Ceiling on the surrogate campaign's submitted jobs as a fraction of
#: the exhaustive campaign's (the budget is a third of the space, so
#: the observed ratio sits at or below 1/3 exactly).
MAX_SURROGATE_JOBS_RATIO = 1.0 / 3.0

#: Candidate budget of the surrogate benchmark's halton sample.
SURROGATE_SAMPLES = 90

#: Dynamic instructions per benchmark in the surrogate benchmark.
SURROGATE_TRACE_LENGTH = 4_000

#: Quiet rounds before the surrogate benchmark's loop may stop early
#: (more patient than the library default: the gate prizes frontier
#: recovery over squeezing out the last few simulations).
SURROGATE_PATIENCE = 3

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_engine.json"
)

SURROGATE_RESULT_PATH = RESULT_PATH.parent / "BENCH_surrogate.json"


def _timed_evaluation(
    backend: str, trace_length: int
) -> tuple[float, object]:
    """Wall-clock one fig3 evaluation under a fresh session."""
    with use_session(SimulationSession(backend=backend)):
        start = time.perf_counter()
        evaluation = evaluate_scenario(
            Scenario.A, Mode.HP, trace_length=trace_length
        )
        return time.perf_counter() - start, evaluation


def _run_results_equal(left, right) -> bool:
    return (
        left.il1_stats == right.il1_stats
        and left.dl1_stats == right.dl1_stats
        and left.timing == right.timing
        and list(left.energy.items()) == list(right.energy.items())
    )


def _sweep_jobs(
    trace_length: int, candidates: int
) -> list[SimulationJob]:
    """The sweep workload: ULE Vdd candidates × shared ULE traces."""
    config = cached_chips(Scenario.A).proposed.config
    step = 0.10 / max(candidates - 1, 1)
    points = [
        OperatingPoint(
            mode=Mode.ULE, vdd=0.35 + index * step, frequency=5e6
        )
        for index in range(candidates)
    ]
    return [
        SimulationJob(
            chip=config,
            trace=TraceSpec(benchmark, trace_length, 2013),
            mode=Mode.ULE,
            operating_point=point,
        )
        for point in points
        for benchmark in SWEEP_BENCHMARKS
    ]


def _timed_sweep(
    trace_length: int, candidates: int, backend: str = "auto"
) -> dict:
    """Measure the mega-batched sweep path against both comparators.

    Returns the sweep metric fields of the benchmark record.  The
    reference-backend time is measured on one candidate's jobs and
    extrapolated linearly — the reference model has no cross-candidate
    sharing, so its sweep cost is exactly per-candidate cost times the
    candidate count.  ``backend`` selects the fast path under test for
    both the batched and the per-job comparator (the numba CI leg
    passes ``numba``).
    """
    jobs = _sweep_jobs(trace_length, candidates)
    per_candidate = len(SWEEP_BENCHMARKS)

    # Warmup run: traces generate into the per-process memo and, under
    # the numba backend, the kernel JIT-compiles — neither belongs in
    # the timed comparison (every comparator gets warm traces).
    SimulationSession(backend=backend).run_jobs(jobs)

    start = time.perf_counter()
    with SimulationSession(backend=backend) as session:
        batched = session.run_jobs(jobs)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    perjob = [execute_job(job, backend=backend) for job in jobs]
    perjob_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for job in jobs[:per_candidate]:
        execute_job(replace(job, backend="reference"))
    reference_candidate_seconds = time.perf_counter() - start
    reference_seconds = reference_candidate_seconds * candidates

    identical = all(
        _run_results_equal(left, right)
        for left, right in zip(batched, perjob)
    )
    return {
        "sweep_candidates": candidates,
        "sweep_trace_length": trace_length,
        "sweep_jobs": len(jobs),
        "sweep_batched_seconds": round(batched_seconds, 4),
        "sweep_perjob_seconds": round(perjob_seconds, 4),
        "sweep_reference_seconds_extrapolated": round(
            reference_seconds, 4
        ),
        "sweep_speedup": round(reference_seconds / batched_seconds, 2),
        "batch_vs_perjob": round(perjob_seconds / batched_seconds, 2),
        "min_sweep_speedup": MIN_SWEEP_SPEEDUP,
        "min_batch_vs_perjob": MIN_BATCH_VS_PERJOB,
        "sweep_identical": identical,
    }


def _surrogate_record(
    seed: int, samples: int, trace_length: int
) -> dict:
    """Measure the surrogate loop head-to-head with the exhaustive run.

    Both campaigns expand the same halton sample of the default space.
    The surrogate runs first in a fresh serial session, the exhaustive
    comparator in its own fresh session (no shared memo — its cost is
    the honest price the surrogate avoids), and a second surrogate run
    under ``jobs=4`` checks the serial-vs-parallel byte-identity
    contract.  Frontier quality is the surrogate frontier's
    hypervolume over the exhaustive frontier's, both scored against
    one reference derived from the exhaustive observations.
    """
    from repro.explore import (
        ExplorationCampaign,
        SurrogateSettings,
        default_space,
    )
    from repro.explore.frontier import hypervolume, reference_point

    campaign = ExplorationCampaign(
        space=default_space(),
        sampler="halton",
        samples=samples,
        trace_length=trace_length,
        seed=seed,
    )
    total = len(campaign.expand()[0])
    settings = SurrogateSettings(
        budget=total // 3, patience=SURROGATE_PATIENCE
    )

    start = time.perf_counter()
    with SimulationSession() as session:
        surrogate = campaign.run_surrogate(
            session=session, settings=settings
        )
    surrogate_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with SimulationSession() as session:
        exhaustive = campaign.run(session=session)
    exhaustive_seconds = time.perf_counter() - start

    with SimulationSession(jobs=4) as session:
        parallel = campaign.run_surrogate(
            session=session, settings=settings
        )
    identical = json.dumps(
        surrogate.to_dict(), sort_keys=True
    ) == json.dumps(parallel.to_dict(), sort_keys=True)

    objectives = exhaustive.objectives
    reference = reference_point(
        [outcome.metrics for outcome in exhaustive.outcomes],
        objectives,
    )
    hv_exhaustive = hypervolume(
        [outcome.metrics for outcome in exhaustive.frontier()],
        objectives,
        reference,
    )
    hv_surrogate = hypervolume(
        [outcome.metrics for outcome in surrogate.frontier()],
        objectives,
        reference,
    )
    hv_ratio = (
        hv_surrogate / hv_exhaustive if hv_exhaustive else 1.0
    )
    return {
        "experiment": (
            "surrogate-guided sweep vs exhaustive campaign "
            "(default space, halton sample)"
        ),
        "seed": seed,
        "surrogate_samples": samples,
        "surrogate_trace_length": trace_length,
        "candidates_total": surrogate.candidates_total,
        "candidates_simulated": len(surrogate.campaign.outcomes),
        "budget": surrogate.budget,
        "rounds": len(surrogate.rounds),
        "converged": surrogate.converged,
        "jobs_submitted": surrogate.jobs_submitted,
        "jobs_executed": surrogate.jobs_executed,
        "exhaustive_jobs": surrogate.exhaustive_jobs,
        "surrogate_jobs_ratio": round(surrogate.jobs_ratio, 4),
        "surrogate_hv_ratio": round(hv_ratio, 4),
        "surrogate_seconds": round(surrogate_seconds, 4),
        "exhaustive_seconds": round(exhaustive_seconds, 4),
        "max_surrogate_jobs_ratio": round(
            MAX_SURROGATE_JOBS_RATIO, 4
        ),
        "min_surrogate_hv_ratio": MIN_SURROGATE_HV_RATIO,
        "surrogate_identical": identical,
    }


def _surrogate_main(
    args: argparse.Namespace, baseline: dict | None
) -> int:
    """The ``--surrogate`` experiment: measure, write, gate."""
    record = _surrogate_record(
        args.seed, args.surrogate_samples, args.surrogate_trace_length
    )
    args.out.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}")

    if not record["surrogate_identical"]:
        print(
            "FAIL: surrogate campaign diverged between serial and "
            "jobs=4 sessions",
            file=sys.stderr,
        )
        return 1
    if record["surrogate_hv_ratio"] < MIN_SURROGATE_HV_RATIO:
        print(
            f"FAIL: surrogate_hv_ratio "
            f"{record['surrogate_hv_ratio']:.3f} below floor "
            f"{MIN_SURROGATE_HV_RATIO}",
            file=sys.stderr,
        )
        return 1
    # Guard against rounding right at the boundary: the budget is
    # total // 3, so anything beyond a hair over 1/3 is a real leak.
    if record["surrogate_jobs_ratio"] > MAX_SURROGATE_JOBS_RATIO + 1e-9:
        print(
            f"FAIL: surrogate_jobs_ratio "
            f"{record['surrogate_jobs_ratio']:.3f} above ceiling "
            f"{MAX_SURROGATE_JOBS_RATIO:.4f}",
            file=sys.stderr,
        )
        return 1

    if baseline is not None:
        for field in ("surrogate_samples", "surrogate_trace_length"):
            if not _comparable(baseline, record, field):
                print(
                    f"FAIL: baseline measured at {field} "
                    f"{baseline[field]}, this run at {record[field]}; "
                    "the regression gate needs comparable runs",
                    file=sys.stderr,
                )
                return 1
        raw = baseline.get("surrogate_hv_ratio")
        if not isinstance(raw, (int, float)) or raw <= 0:
            print(
                f"FAIL: baseline {args.check_against} has no usable "
                f"'surrogate_hv_ratio' value ({raw!r})",
                file=sys.stderr,
            )
            return 1
        floor = float(raw) * (1.0 - REGRESSION_TOLERANCE)
        if record["surrogate_hv_ratio"] < floor:
            print(
                f"FAIL: surrogate_hv_ratio "
                f"{record['surrogate_hv_ratio']:.3f} regressed more "
                f"than {REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{float(raw):.3f} (floor {floor:.3f})",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: surrogate_hv_ratio within "
            f"{REGRESSION_TOLERANCE:.0%} of baseline {float(raw):.3f}"
        )
    print(
        f"OK: surrogate recovered "
        f"{record['surrogate_hv_ratio']:.1%} of the exhaustive "
        f"frontier's hypervolume (floor {MIN_SURROGATE_HV_RATIO:.0%}) "
        f"with {record['surrogate_jobs_ratio']:.1%} of its jobs "
        f"(ceiling {MAX_SURROGATE_JOBS_RATIO:.1%})"
    )
    return 0


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="engine performance smoke test"
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help=(
            "baseline BENCH_engine.json; fail if any fresh metric "
            f"drops more than {REGRESSION_TOLERANCE:.0%} below its"
        ),
    )
    parser.add_argument(
        "--trace-length", type=int, default=TRACE_LENGTH,
        help=f"instructions per benchmark (default: {TRACE_LENGTH})",
    )
    parser.add_argument(
        "--sweep-candidates", type=int, default=SWEEP_CANDIDATES,
        help=(
            "operating-point candidates in the sweep experiment "
            f"(default: {SWEEP_CANDIDATES})"
        ),
    )
    parser.add_argument(
        "--sweep-trace-length", type=int, default=SWEEP_TRACE_LENGTH,
        help=(
            "instructions per benchmark in the sweep experiment "
            f"(default: {SWEEP_TRACE_LENGTH})"
        ),
    )
    parser.add_argument(
        "--sweep-backend", default="auto",
        choices=("auto", "vectorized", "numba"),
        help=(
            "fast-path backend under test in the sweep experiment "
            "(default: auto)"
        ),
    )
    parser.add_argument(
        "--surrogate", action="store_true",
        help=(
            "run the surrogate-exploration benchmark instead of the "
            "engine benchmarks (writes BENCH_surrogate.json)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2013,
        help="root seed of the surrogate benchmark (default: 2013)",
    )
    parser.add_argument(
        "--surrogate-samples", type=int, default=SURROGATE_SAMPLES,
        help=(
            "halton sample budget of the surrogate benchmark "
            f"(default: {SURROGATE_SAMPLES})"
        ),
    )
    parser.add_argument(
        "--surrogate-trace-length", type=int,
        default=SURROGATE_TRACE_LENGTH,
        help=(
            "instructions per benchmark in the surrogate benchmark "
            f"(default: {SURROGATE_TRACE_LENGTH})"
        ),
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=(
            "where to write the fresh record (default: "
            "BENCH_engine.json, or BENCH_surrogate.json with "
            "--surrogate, at the repo root)"
        ),
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (
            SURROGATE_RESULT_PATH if args.surrogate else RESULT_PATH
        )
    return args


def _comparable(baseline: dict, record: dict, field: str) -> bool:
    """Whether the baseline's workload field matches this run's."""
    value = baseline.get(field)
    return value is None or value == record[field]


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)

    baseline = None
    if args.check_against is not None:
        # Read before writing: the baseline path is usually the same
        # checked-in file the fresh record overwrites below.
        try:
            baseline = json.loads(
                args.check_against.read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"FAIL: cannot read baseline {args.check_against}: "
                f"{error}",
                file=sys.stderr,
            )
            return 1

    if args.surrogate:
        return _surrogate_main(args, baseline)

    cached_chips(Scenario.A)  # design + chip construction out of the timing

    # Vectorized first: it pays trace generation cold while the
    # reference run inherits the memoized traces — conservative for the
    # reported speedup.
    vectorized_seconds, vectorized = _timed_evaluation(
        "vectorized", args.trace_length
    )
    reference_seconds, reference = _timed_evaluation(
        "reference", args.trace_length
    )

    if reference.render() != vectorized.render():
        print("FAIL: backends rendered different tables", file=sys.stderr)
        return 1

    sweep = _timed_sweep(
        args.sweep_trace_length,
        args.sweep_candidates,
        backend=args.sweep_backend,
    )

    speedup = reference_seconds / vectorized_seconds
    record = {
        "experiment": "fig3 evaluation (scenario A, HP, BigBench)",
        "trace_length": args.trace_length,
        "benchmarks": len(reference.rows),
        "reference_seconds": round(reference_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "identical_render": True,
        "sweep_experiment": (
            "ULE Vdd design-space sweep (scenario A, shared traces)"
        ),
        **sweep,
    }
    args.out.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}")

    if not sweep["sweep_identical"]:
        print(
            "FAIL: batched sweep diverged from per-job results",
            file=sys.stderr,
        )
        return 1

    floors = (
        ("speedup", record["speedup"], MIN_SPEEDUP),
        ("sweep_speedup", sweep["sweep_speedup"], MIN_SWEEP_SPEEDUP),
        (
            "batch_vs_perjob",
            sweep["batch_vs_perjob"],
            MIN_BATCH_VS_PERJOB,
        ),
    )
    for name, fresh, floor in floors:
        if fresh < floor:
            print(
                f"FAIL: {name} {fresh:.1f}x below floor {floor}x",
                file=sys.stderr,
            )
            return 1

    if baseline is not None:
        for field in (
            "trace_length",
            "sweep_candidates",
            "sweep_trace_length",
        ):
            if not _comparable(baseline, record, field):
                # Speedups scale with the workload (setup amortization,
                # sharing degree); gating across workloads is noise.
                print(
                    f"FAIL: baseline measured at {field} "
                    f"{baseline[field]}, this run at {record[field]}; "
                    "the regression gate needs comparable runs",
                    file=sys.stderr,
                )
                return 1
        for name, fresh, _floor in floors:
            raw = baseline.get(name)
            if not isinstance(raw, (int, float)) or raw <= 0:
                # A gate that cannot fire is worse than no gate: a
                # baseline without a positive metric must fail loudly,
                # not set the floor to zero.
                print(
                    f"FAIL: baseline {args.check_against} has no "
                    f"usable {name!r} value ({raw!r})",
                    file=sys.stderr,
                )
                return 1
            reference_metric = float(raw)
            floor = reference_metric * (1.0 - REGRESSION_TOLERANCE)
            if fresh < floor:
                print(
                    f"FAIL: {name} {fresh:.1f}x regressed more than "
                    f"{REGRESSION_TOLERANCE:.0%} below the baseline "
                    f"{reference_metric:.1f}x (floor {floor:.1f}x)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"OK: {name} within {REGRESSION_TOLERANCE:.0%} of "
                f"baseline {reference_metric:.1f}x"
            )
    print(f"OK: vectorized backend {speedup:.1f}x faster (floor "
          f"{MIN_SPEEDUP}x)")
    print(
        f"OK: batched sweep {sweep['sweep_speedup']:.1f}x over the "
        f"reference (floor {MIN_SWEEP_SPEEDUP}x), "
        f"{sweep['batch_vs_perjob']:.1f}x over per-job (floor "
        f"{MIN_BATCH_VS_PERJOB}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
