"""Hybrid cache configuration — the vocabulary of the paper's Section III.

A cache is a set of *way groups*.  Each group has a bitcell design, a
per-mode protection scheme for data and tag words, the set of modes in
which its ways are powered, and a flag telling whether the EDC decode sits
on the access critical path (the proposed 8T ways must correct *hard*
faults inline at ULE mode; soft-error-only SECDED can correct lazily off
the critical path — see DESIGN.md).

Example — the paper's scenario A proposed cache (8 KB, 8-way, 7+1):

* group "hp": 7 ways of 6T cells, no coding, powered at HP only;
* group "ule": 1 way of 8T cells, SECDED at ULE / nothing at HP,
  powered in both modes, EDC inline at ULE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.cells import SizedCell
from repro.edc.protection import ProtectionScheme, check_bits_for
from repro.tech.operating import Mode
from repro.util.canonical import canonical_digest, canonical_form

#: Paper constants (Section III-C / IV-A): word granularities.
DATA_WORD_BITS = 32
TAG_BITS = 26

#: Replacement policies a configuration may name (see
#: :mod:`repro.cache.replacement`).  Only LRU has a vectorized fast path;
#: the others fall back to the reference backend automatically.
REPLACEMENT_POLICIES = ("lru", "fifo", "plru", "random")


def _freeze(
    mapping: Mapping[Mode, ProtectionScheme]
) -> Mapping[Mode, ProtectionScheme]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class WayGroupConfig:
    """One homogeneous group of cache ways.

    Attributes:
        name: group label ("hp", "ule", ...).
        ways: number of ways in the group.
        cell: the sized bitcell design of the group's arrays.
        data_protection: active protection per mode for data words.
        tag_protection: active protection per mode for tag words.
        active_modes: modes in which the group's ways are powered
            (inactive groups are gated-Vdd off).
        edc_inline_modes: modes in which the EDC decode adds a pipeline
            cycle to the access latency (hard-fault inline correction).
    """

    name: str
    ways: int
    cell: SizedCell
    data_protection: Mapping[Mode, ProtectionScheme]
    tag_protection: Mapping[Mode, ProtectionScheme]
    active_modes: frozenset[Mode]
    edc_inline_modes: frozenset[Mode] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ValueError("a way group needs at least one way")
        object.__setattr__(
            self, "data_protection", _freeze(self.data_protection)
        )
        object.__setattr__(
            self, "tag_protection", _freeze(self.tag_protection)
        )
        object.__setattr__(self, "active_modes", frozenset(self.active_modes))
        object.__setattr__(
            self, "edc_inline_modes", frozenset(self.edc_inline_modes)
        )
        for mode in self.active_modes:
            if mode not in self.data_protection:
                raise ValueError(
                    f"group {self.name!r}: no data protection for {mode}"
                )
            if mode not in self.tag_protection:
                raise ValueError(
                    f"group {self.name!r}: no tag protection for {mode}"
                )

    # Mapping proxies cannot pickle; configs must cross process
    # boundaries for the engine's parallel dispatch, so state round-trips
    # through plain dicts and re-freezes on load.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["data_protection"] = dict(self.data_protection)
        state["tag_protection"] = dict(self.tag_protection)
        return state

    def __setstate__(self, state: dict) -> None:
        state = dict(state)
        state["data_protection"] = _freeze(state["data_protection"])
        state["tag_protection"] = _freeze(state["tag_protection"])
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def is_active(self, mode: Mode) -> bool:
        """Whether the group's ways are powered in ``mode``."""
        return mode in self.active_modes

    def edc_inline(self, mode: Mode) -> bool:
        """Whether EDC latency is on the critical path in ``mode``."""
        return mode in self.edc_inline_modes

    # ------------------------------------------------------ stored layout
    @property
    def stored_data_check_bits(self) -> int:
        """Check bits physically provisioned per data word.

        The array must hold the *strongest* code used in any mode (the
        scenario-B proposed way stores 13 DECTED bits and uses only 7 of
        them in SECDED mode at HP).
        """
        return max(
            (
                check_bits_for(scheme, DATA_WORD_BITS)
                for scheme in self.data_protection.values()
            ),
            default=0,
        )

    @property
    def stored_tag_check_bits(self) -> int:
        """Check bits physically provisioned per tag word."""
        return max(
            (
                check_bits_for(scheme, TAG_BITS)
                for scheme in self.tag_protection.values()
            ),
            default=0,
        )

    def active_data_check_bits(self, mode: Mode) -> int:
        """Check bits read/written per data word in ``mode``.

        The stored codeword format is that of the *strongest* scheme the
        way ever uses (a line written at HP must stay decodable at ULE),
        so whenever any coding is active the full stored redundancy moves
        through the bitlines; a weaker active scheme only simplifies the
        decoder, not the storage traffic.  With coding off (scenario A at
        HP) the check columns are gated entirely.
        """
        scheme = self.data_protection.get(mode, ProtectionScheme.NONE)
        if scheme is ProtectionScheme.NONE:
            return 0
        return self.stored_data_check_bits

    def active_tag_check_bits(self, mode: Mode) -> int:
        """Check bits read/written per tag word in ``mode``."""
        scheme = self.tag_protection.get(mode, ProtectionScheme.NONE)
        if scheme is ProtectionScheme.NONE:
            return 0
        return self.stored_tag_check_bits

    @property
    def stored_data_scheme(self) -> ProtectionScheme:
        """The strongest data scheme — the stored codeword format."""
        return max(
            self.data_protection.values(),
            key=lambda s: check_bits_for(s, DATA_WORD_BITS),
            default=ProtectionScheme.NONE,
        )

    @property
    def stored_tag_scheme(self) -> ProtectionScheme:
        """The strongest tag scheme — the stored codeword format."""
        return max(
            self.tag_protection.values(),
            key=lambda s: check_bits_for(s, TAG_BITS),
            default=ProtectionScheme.NONE,
        )

    def canonical(self) -> dict:
        """Invocation-stable, JSON-able content description."""
        return canonical_form(self)


@dataclass(frozen=True)
class CacheConfig:
    """A hybrid set-associative cache.

    Attributes:
        name: configuration label (e.g. "A-proposed").
        size_bytes: total data capacity.
        line_bytes: cache line size.
        way_groups: the way groups, HP group(s) first by convention.
        replacement: replacement policy name (see
            :data:`REPLACEMENT_POLICIES`); non-LRU policies simulate on
            the reference backend.
    """

    name: str
    size_bytes: int
    line_bytes: int
    way_groups: tuple[WayGroupConfig, ...]
    data_word_bits: int = DATA_WORD_BITS
    tag_bits: int = TAG_BITS
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise ValueError("size must be a multiple of the line size")
        if not self.way_groups:
            raise ValueError("need at least one way group")
        if self.line_bytes * 8 % self.data_word_bits:
            raise ValueError("line must hold an integer number of words")
        if self.lines % self.ways:
            raise ValueError("lines must divide evenly into ways")
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {self.replacement!r}; "
                f"known: {list(REPLACEMENT_POLICIES)}"
            )

    # ------------------------------------------------------------ geometry
    @property
    def ways(self) -> int:
        """Total associativity."""
        return sum(group.ways for group in self.way_groups)

    @property
    def lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.lines // self.ways

    @property
    def words_per_line(self) -> int:
        """Data words per cache line."""
        return self.line_bytes * 8 // self.data_word_bits

    @property
    def offset_bits(self) -> int:
        """Line-offset address bits."""
        return (self.line_bytes - 1).bit_length()

    @property
    def index_bits(self) -> int:
        """Set-index address bits."""
        return (self.sets - 1).bit_length() if self.sets > 1 else 0

    # ----------------------------------------------------------- way maps
    def group_of_way(self, way: int) -> WayGroupConfig:
        """The way group that owns global way index ``way``."""
        if way < 0:
            raise ValueError("way must be non-negative")
        base = 0
        for group in self.way_groups:
            if way < base + group.ways:
                return group
            base += group.ways
        raise ValueError(f"way {way} out of range (ways={self.ways})")

    def ways_of_group(self, name: str) -> list[int]:
        """Global way indices belonging to the named group."""
        base = 0
        for group in self.way_groups:
            if group.name == name:
                return list(range(base, base + group.ways))
            base += group.ways
        raise ValueError(f"no way group named {name!r}")

    def lines_of_group(self, name: str) -> int:
        """Line capacity of the named way group (sets x its ways).

        The runtime scheduler uses this to cap its cache-residency
        estimates: a way group can never hold more resident (or dirty)
        lines than its capacity.
        """
        return self.sets * len(self.ways_of_group(name))

    def active_capacity_bytes(self, mode: Mode) -> int:
        """Data bytes reachable in ``mode`` (powered ways only).

        At ULE mode only the ULE-capable group is powered, so a 7+1
        8 KB cache exposes a single 1 KB way — the capacity the
        utilization-threshold scheduling policy compares working sets
        against.
        """
        return self.active_ways(mode) * self.sets * self.line_bytes

    def active_way_mask(self, mode: Mode) -> list[bool]:
        """Per-way powered flags in ``mode``."""
        mask: list[bool] = []
        for group in self.way_groups:
            mask.extend([group.is_active(mode)] * group.ways)
        return mask

    def active_ways(self, mode: Mode) -> int:
        """Number of powered ways in ``mode``."""
        return sum(self.active_way_mask(mode))

    def edc_inline(self, mode: Mode) -> bool:
        """Whether any active group pays inline EDC latency in ``mode``.

        The L1 hit latency is set by the slowest active way, so a single
        inline-EDC group stretches the whole cache's hit latency.
        """
        return any(
            group.edc_inline(mode)
            for group in self.way_groups
            if group.is_active(mode)
        )

    def index_of(self, address: int) -> int:
        """Set index of a byte address."""
        return (address >> self.offset_bits) % self.sets if self.sets else 0

    def tag_of(self, address: int) -> int:
        """Tag value of a byte address (masked to ``tag_bits``)."""
        return (address >> (self.offset_bits + self.index_bits)) & (
            (1 << self.tag_bits) - 1
        )

    def canonical(self) -> dict:
        """Invocation-stable, JSON-able content description.

        Sweep points use this (via :func:`config_digest`) to key result
        caches: two configurations built through different code paths
        but describing the same hardware canonicalize identically.
        """
        return canonical_form(self)

    def digest(self) -> str:
        """SHA-256 content hash of :meth:`canonical`."""
        return config_digest(self)

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        groups = ", ".join(
            f"{g.ways}x{g.cell.describe()}" for g in self.way_groups
        )
        policy = (
            "" if self.replacement == "lru" else f", {self.replacement}"
        )
        return (
            f"{self.name}: {self.size_bytes // 1024} KB {self.ways}-way, "
            f"{self.line_bytes} B lines, {self.sets} sets{policy} [{groups}]"
        )


def validate_disabled_lines(
    disabled_lines, sets: int, ways: int
) -> None:
    """Reject fault-map ``(set, way)`` pairs outside the geometry.

    Both simulation backends call this with identical arguments, so
    they can never drift apart in which fault maps they accept — the
    bit-identical-backends contract starts at validation.
    """
    for set_index, way in disabled_lines:
        if not 0 <= set_index < sets:
            raise ValueError(
                f"disabled line set {set_index} out of range "
                f"(sets={sets})"
            )
        if not 0 <= way < ways:
            raise ValueError(
                f"disabled line way {way} out of range (ways={ways})"
            )


def config_digest(config: CacheConfig | WayGroupConfig) -> str:
    """Stable content hash of a cache or way-group configuration.

    The digest covers every *field* of the configuration — the numeric
    parameters of the geometry, bitcells, protection schemes and
    replacement policy, and also the ``name`` label — but not object
    identity, so it is safe as a cross-invocation cache key.  Callers
    needing label-independent hardware identity should blank the names
    first (see ``repro.explore.candidates.Candidate.digest``).
    """
    return canonical_digest(config)
