#!/usr/bin/env python3
"""Performance smoke test: vectorized vs reference backend on fig3.

Times one fig3-style evaluation (scenario A at HP mode — the heaviest
per-access workload: BigBench on all eight ways) on both simulation
backends, checks they agree bit-for-bit, and writes ``BENCH_engine.json``
at the repo root so future PRs can track the speedup trajectory.

Two gates, both exiting non-zero on failure so CI catches fast-path
regressions:

* an absolute floor — the vectorized engine must be at least
  ``MIN_SPEEDUP`` times faster;
* a relative gate (``--check-against BASELINE.json``) — the fresh
  speedup must not drop more than ``REGRESSION_TOLERANCE`` below the
  checked-in baseline's.  The baseline is read *before* the fresh
  result overwrites it, so CI can check against the committed file in
  place.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --check-against BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.core.evaluation import cached_chips, evaluate_scenario
from repro.core.scenarios import Scenario
from repro.engine.session import SimulationSession, use_session
from repro.tech.operating import Mode

#: Floor on the end-to-end evaluation speedup (observed ~20x).
MIN_SPEEDUP = 5.0

#: Allowed fractional drop below the checked-in baseline's speedup
#: before the relative gate fails (shared-runner noise tolerance).
REGRESSION_TOLERANCE = 0.30

#: Dynamic instructions per benchmark; big enough to dominate setup.
TRACE_LENGTH = 60_000

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_engine.json"
)


def _timed_evaluation(
    backend: str, trace_length: int
) -> tuple[float, object]:
    """Wall-clock one fig3 evaluation under a fresh session."""
    with use_session(SimulationSession(backend=backend)):
        start = time.perf_counter()
        evaluation = evaluate_scenario(
            Scenario.A, Mode.HP, trace_length=trace_length
        )
        return time.perf_counter() - start, evaluation


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="engine performance smoke test"
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help=(
            "baseline BENCH_engine.json; fail if the fresh speedup "
            f"drops more than {REGRESSION_TOLERANCE:.0%} below its"
        ),
    )
    parser.add_argument(
        "--trace-length", type=int, default=TRACE_LENGTH,
        help=f"instructions per benchmark (default: {TRACE_LENGTH})",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=RESULT_PATH,
        help="where to write the fresh record (default: repo root)",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)

    baseline = None
    if args.check_against is not None:
        # Read before writing: the baseline path is usually the same
        # checked-in file the fresh record overwrites below.
        try:
            baseline = json.loads(
                args.check_against.read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"FAIL: cannot read baseline {args.check_against}: "
                f"{error}",
                file=sys.stderr,
            )
            return 1

    cached_chips(Scenario.A)  # design + chip construction out of the timing

    # Vectorized first: it pays trace generation cold while the
    # reference run inherits the memoized traces — conservative for the
    # reported speedup.
    vectorized_seconds, vectorized = _timed_evaluation(
        "vectorized", args.trace_length
    )
    reference_seconds, reference = _timed_evaluation(
        "reference", args.trace_length
    )

    if reference.render() != vectorized.render():
        print("FAIL: backends rendered different tables", file=sys.stderr)
        return 1

    speedup = reference_seconds / vectorized_seconds
    record = {
        "experiment": "fig3 evaluation (scenario A, HP, BigBench)",
        "trace_length": args.trace_length,
        "benchmarks": len(reference.rows),
        "reference_seconds": round(reference_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "identical_render": True,
    }
    args.out.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}")

    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {speedup:.1f}x below floor {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    if baseline is not None:
        baseline_length = baseline.get("trace_length")
        if (
            baseline_length is not None
            and baseline_length != args.trace_length
        ):
            # Speedup scales with trace length (setup amortization);
            # comparing across lengths would gate on noise.
            print(
                f"FAIL: baseline measured at trace_length "
                f"{baseline_length}, this run at {args.trace_length}; "
                "the regression gate needs comparable runs",
                file=sys.stderr,
            )
            return 1
        raw_speedup = baseline.get("speedup")
        if not isinstance(raw_speedup, (int, float)) or raw_speedup <= 0:
            # A gate that cannot fire is worse than no gate: a
            # baseline without a positive speedup must fail loudly,
            # not set the floor to zero.
            print(
                f"FAIL: baseline {args.check_against} has no usable "
                f"'speedup' value ({raw_speedup!r})",
                file=sys.stderr,
            )
            return 1
        reference_speedup = float(raw_speedup)
        floor = reference_speedup * (1.0 - REGRESSION_TOLERANCE)
        if speedup < floor:
            print(
                f"FAIL: speedup {speedup:.1f}x regressed more than "
                f"{REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{reference_speedup:.1f}x (floor {floor:.1f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: within {REGRESSION_TOLERANCE:.0%} of baseline "
            f"{reference_speedup:.1f}x"
        )
    print(f"OK: vectorized backend {speedup:.1f}x faster (floor "
          f"{MIN_SPEEDUP}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
