"""Asyncio HTTP front end of the simulation service (stdlib only).

A deliberately small HTTP/1.1 server over :func:`asyncio.start_server`
— no web framework, no new dependencies — exposing the scheduler as a
JSON API:

==========================  =============================================
``GET  /v1/healthz``        liveness probe
``GET  /v1/stats``          scheduler + shared-store counters
``POST /v1/submit``         submit a batch of :class:`~repro.service.
                            requests.JobRequest` payloads for a tenant;
                            returns one typed ticket per job
``GET  /v1/jobs/<key>``     poll one job; ``?result=1`` attaches the
                            completed result (base64 of the *stored*
                            pickle bytes) plus summary metrics
``GET  /v1/stream?keys=…``  newline-delimited JSON progress events until
                            every requested key is terminal
==========================  =============================================

Backpressure is typed end to end: a submit whose every job was shed
returns **429** with ``{"error": "backpressure", "retry_after": …}``
(and a ``Retry-After`` header); partially shed batches return 200 and
per-ticket reasons, so clients retry only what was rejected.

Progress events are *order-independent* payloads — each line carries
the job key, its state and the terminal/total counts, never a position
— so two clients streaming the same batch can assert the same event
set whatever order completions land in.  A client that disconnects
mid-stream costs the server one cancelled coroutine; the scheduler and
every other connection are unaffected (pinned by the fault tests).

Every connection serves one request and closes (``Connection: close``);
the service's unit of work is a batch, not a chatty session, and
one-shot connections keep the parser trivially robust.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.service.requests import JobRequest, RequestError, resolve
from repro.service.scheduler import (
    DONE,
    FAILED,
    SHED,
    ResultNotReady,
    ServiceScheduler,
)

#: States that end a key's participation in a progress stream.
_TERMINAL = (DONE, FAILED, "unknown")

#: Reasons phrase per status code (only the ones we emit).
_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Request line + each header line are capped (a raw socket poking at
#: the port must not balloon memory), as is a submit body.
_MAX_LINE = 16 * 1024
_MAX_BODY = 8 * 1024 * 1024


class _HttpError(Exception):
    """Internal: abort request handling with a typed JSON error."""

    def __init__(self, status: int, error: str, detail: str = ""):
        super().__init__(detail or error)
        self.status = status
        self.payload = {"error": error}
        if detail:
            self.payload["detail"] = detail


def _json_bytes(payload: Any) -> bytes:
    """Compact, key-sorted JSON encoding (deterministic on the wire)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _result_payload(scheduler: ServiceScheduler, key: str) -> dict:
    """The result attachment of a completed job.

    ``result_b64`` is the base64 of the pickle bytes as *stored* — the
    byte-identity contract with library-mode execution is checked
    against exactly this payload — and ``metrics`` a JSON summary for
    clients that do not want to unpickle.
    """
    result = scheduler.result(key)
    payload = scheduler.result_bytes(key)
    return {
        "result_b64": base64.b64encode(payload).decode("ascii"),
        "metrics": {
            "epi": result.epi,
            "execution_seconds": result.execution_seconds,
            "instructions": result.timing.instructions,
            "cycles": result.timing.cycles,
            "energy_joules": result.energy.total,
        },
    }


class ServiceAPI:
    """The HTTP server wrapping one :class:`ServiceScheduler`.

    Parameters
    ----------
    scheduler : ServiceScheduler
        The (started) scheduler handling submissions.
    host, port : str, int
        Bind address; port 0 picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    poll_interval : float
        How often progress streams re-snapshot job states.
    """

    def __init__(
        self,
        scheduler: ServiceScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.05,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self._server: asyncio.base_events.Server | None = None

    # --------------------------------------------------------- lifecycle
    async def start(self) -> "ServiceAPI":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (binds first when needed)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------- connection
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one request on one connection, then close it."""
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, body = request
            await self._route(method, target, body, writer)
        except _HttpError as error:
            await self._respond(writer, error.status, error.payload)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away: its problem, not the service's
        except Exception as error:  # pragma: no cover - defensive
            try:
                await self._respond(
                    writer,
                    500,
                    {"error": "internal", "detail": repr(error)},
                )
            except OSError:
                pass
        finally:
            # Suppress CancelledError too: shutdown cancels in-flight
            # handlers, and this close is best-effort either way.
            try:
                writer.close()
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        """Parse one HTTP/1.1 request: (method, target, body)."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=30.0
            )
        except asyncio.TimeoutError:
            return None
        if not line.strip():
            return None
        if len(line) > _MAX_LINE:
            raise _HttpError(400, "bad_request", "request line too long")
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            raise _HttpError(400, "bad_request", "malformed request line")
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > _MAX_LINE:
                raise _HttpError(400, "bad_request", "header too long")
            name, _sep, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(
                        400, "bad_request", "bad content-length"
                    )
        if content_length > _MAX_BODY:
            raise _HttpError(400, "bad_request", "body too large")
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, target, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> None:
        """Write one complete JSON response."""
        body = _json_bytes(payload)
        lines = [
            f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------ routes
    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Dispatch one parsed request to its endpoint."""
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        if path == "/v1/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
            return
        if path == "/v1/stats" and method == "GET":
            await self._respond(writer, 200, self._stats_payload())
            return
        if path == "/v1/submit":
            if method != "POST":
                raise _HttpError(405, "method_not_allowed", "POST only")
            await self._submit(body, writer)
            return
        if path.startswith("/v1/jobs/") and method == "GET":
            key = path[len("/v1/jobs/"):]
            query = parse_qs(url.query)
            with_result = query.get("result", ["0"])[0] not in ("0", "")
            await self._job(key, with_result, writer)
            return
        if path == "/v1/stream" and method == "GET":
            query = parse_qs(url.query)
            keys = [
                key
                for clause in query.get("keys", [])
                for key in clause.split(",")
                if key
            ]
            if not keys:
                raise _HttpError(400, "bad_request", "no keys requested")
            await self._stream(keys, writer)
            return
        raise _HttpError(404, "not_found", f"{method} {path}")

    def _stats_payload(self) -> dict:
        """Scheduler + store counters for ``/v1/stats``."""
        payload: dict = {
            "scheduler": self.scheduler.stats.to_dict(),
            "queue_depth": self.scheduler.queue_depth(),
        }
        store = self.scheduler.store
        if store is not None:
            summary = store.summary()
            payload["store"] = {
                "counters": dict(store.stats),
                "entries": summary.entries,
                "payload_bytes": summary.payload_bytes,
                "shards": summary.shards,
                "scratch_files": summary.scratch_files,
            }
        return payload

    async def _submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """``POST /v1/submit``: resolve, admit, answer with tickets."""
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, "bad_request", f"bad JSON: {error}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "bad_request", "body must be an object")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise _HttpError(400, "bad_request", "missing tenant")
        raw_requests = payload.get("requests")
        if not isinstance(raw_requests, list) or not raw_requests:
            raise _HttpError(400, "bad_request", "missing requests")
        try:
            jobs = [
                resolve(JobRequest.from_dict(raw)) for raw in raw_requests
            ]
        except RequestError as error:
            raise _HttpError(400, "bad_request", str(error))
        loop = asyncio.get_running_loop()
        tickets = await loop.run_in_executor(
            None, self.scheduler.submit, tenant, jobs
        )
        ticket_payloads = [ticket.to_dict() for ticket in tickets]
        shed = [t for t in tickets if t.state == SHED]
        if shed and len(shed) == len(tickets):
            retry_after = max(t.retry_after or 0.0 for t in shed)
            await self._respond(
                writer,
                429,
                {
                    "error": "backpressure",
                    "reason": shed[0].reason,
                    "retry_after": retry_after,
                    "tickets": ticket_payloads,
                },
                headers={"Retry-After": f"{retry_after:.3f}"},
            )
            return
        await self._respond(writer, 200, {"tickets": ticket_payloads})

    async def _job(
        self, key: str, with_result: bool, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/jobs/<key>``: poll state, optionally ship result."""
        try:
            payload = self.scheduler.state_of(key)
        except KeyError:
            raise _HttpError(404, "not_found", f"unknown job {key!r}")
        if with_result:
            try:
                payload.update(_result_payload(self.scheduler, key))
            except ResultNotReady:
                # Never a partial result: the state already says why.
                pass
        await self._respond(writer, 200, payload)

    async def _stream(
        self, keys: list[str], writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/stream``: push order-independent progress events."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()
        ordered = sorted(set(keys))
        last: dict[str, str] = {}
        while True:
            snap = self.scheduler.snapshot(ordered)
            states = {
                key: snap.get(key, {"key": key, "state": "unknown"})
                for key in ordered
            }
            done = sum(
                1
                for payload in states.values()
                if payload["state"] in _TERMINAL
            )
            for key in ordered:
                payload = states[key]
                if last.get(key) == payload["state"]:
                    continue
                last[key] = payload["state"]
                event = dict(payload)
                event.update({"done": done, "total": len(ordered)})
                writer.write(_json_bytes(event))
            await writer.drain()
            if done == len(ordered):
                writer.write(
                    _json_bytes(
                        {
                            "event": "complete",
                            "done": done,
                            "total": len(ordered),
                        }
                    )
                )
                await writer.drain()
                return
            await asyncio.sleep(self.poll_interval)


# ---------------------------------------------------------- sync hosting
class ServiceHandle:
    """A running service (event loop on a background thread).

    Returned by :func:`serve_in_thread`; exposes the bound address and
    a :meth:`close` that tears the server down.  The scheduler's
    lifecycle stays with the caller.
    """

    def __init__(
        self,
        api: ServiceAPI,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.api = api
        self.loop = loop
        self.thread = thread

    @property
    def host(self) -> str:
        """Bound host."""
        return self.api.host

    @property
    def port(self) -> int:
        """Bound (possibly ephemeral) port."""
        return self.api.port

    def close(self) -> None:
        """Stop the server and join its thread (idempotent).

        Cancels any in-flight request coroutines (e.g. progress streams
        abandoned by disconnected clients) before stopping the loop, so
        nothing is left to die noisily at garbage collection.
        """
        if not self.thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(), self.loop
        )
        try:
            future.result(timeout=5.0)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=5.0)

    async def _shutdown(self) -> None:
        """Close the server, then cancel and reap in-flight handlers."""
        await self.api.aclose()
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_thread(
    scheduler: ServiceScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    poll_interval: float = 0.05,
) -> ServiceHandle:
    """Start a :class:`ServiceAPI` on a dedicated event-loop thread.

    The blocking-world entry point used by tests, the smoke harness
    and the CLI client helpers: returns once the socket is bound, with
    the ephemeral port resolved on the handle.
    """
    api = ServiceAPI(
        scheduler, host=host, port=port, poll_interval=poll_interval
    )
    loop = asyncio.new_event_loop()
    bound = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        bound.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-service-api", daemon=True
    )
    thread.start()
    if not bound.wait(timeout=10.0):  # pragma: no cover - defensive
        raise RuntimeError("service API failed to bind within 10 s")
    return ServiceHandle(api, loop, thread)
