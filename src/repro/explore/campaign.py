"""Exploration campaigns: expand a space, simulate, reduce, rank.

An :class:`ExplorationCampaign` turns a :class:`~repro.explore.space.
DesignSpace` into candidate chips (:mod:`repro.explore.candidates`),
submits the full cross product of (candidate x benchmark x mode) through
the simulation engine's session **in one batch** — so shared work
deduplicates, the disk cache keys every point, and ``jobs > 1`` fans the
independent runs across processes — and reduces the results into:

* per-candidate metrics (EPI and seconds-per-instruction at both modes,
  cache area, ULE-way yield);
* the Pareto frontier over the campaign objectives;
* per-axis sensitivity tables;
* a ranked, render-ready report.

The reduction is pure arithmetic over deterministic simulation results,
so a campaign renders byte-identically whatever the session's process
count — the property the CLI's serial-vs-parallel contract tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core import calibration
from repro.cpu.chip import RunResult, suite_mode_metrics
from repro.engine.jobs import SimulationJob
from repro.engine.session import SimulationSession, current_session
from repro.explore.candidates import (
    Candidate,
    CandidateError,
    build_candidate,
    default_space,
)
from repro.explore.features import FeatureSchema, free_metrics
from repro.explore.frontier import ConvergenceTracker, knee_index
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    pareto_indices,
    rank_rows,
    sensitivity,
)
from repro.explore.space import DesignSpace, Point
from repro.explore.surrogate import (
    DEFAULT_MEMBERS,
    DEFAULT_NEIGHBOURS,
    MetricSurrogate,
)
from repro.cells import technology_tokens
from repro.faults.maps import DieFaultMap
from repro.faults.sampling import functional_fraction, sample_population
from repro.sustainability import carbon_per_gib_year, chip_capacity_bytes
from repro.tech.operating import HP_OPERATING_POINT, Mode
from repro.transients.metrics import transient_run_metrics
from repro.transients.spec import TransientSpec
from repro.util.rng import derive_seed
from repro.util.tables import Table
from repro.workloads.source import as_sources
from repro.workloads.suites import suite_by_name

#: The across-die percentile population-aware sweeps rank by.
POPULATION_PERCENTILE = 95.0

#: Default objectives when candidates are evaluated across a die
#: population (``dies > 0``): tail behaviour replaces the nominal die.
POPULATION_OBJECTIVES = (
    Objective("epi_ule_p95"),
    Objective("spi_ule_p95"),
    Objective("area_mm2"),
    Objective("yield", maximize=True),
)

#: Objective appended (to either default set) when soft-error
#: injection is active: minimize the observed ULE DUE rate, making
#: detection-vs-correction reliability a first-class trade-off axis.
TRANSIENT_OBJECTIVE = Objective("due_fit_ule")

#: Objective appended when a campaign carries a grid carbon intensity:
#: minimize the annual operational CO2 per GiB of L1 capacity at
#: sustained ULE operation, making sustainability a ranked axis.
CARBON_OBJECTIVE = Objective("co2_per_gib_ule")

#: Metrics computed analytically per candidate — exact for *every*
#: candidate without a single simulated job, so the surrogate never
#: predicts them (see :func:`repro.explore.features.free_metrics`).
FREE_METRIC_NAMES = ("area_mm2", "yield", "ule_size_factor")


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate with its reduced metrics."""

    candidate: Candidate
    metrics: dict[str, float]

    def point_dict(self) -> Point:
        """The candidate's axis assignment as a dict."""
        return self.candidate.point_dict()


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign produced."""

    outcomes: tuple[CandidateOutcome, ...]
    infeasible: tuple[tuple[str, str], ...]
    duplicates: int
    objectives: tuple[Objective, ...]
    trace_length: int
    seed: int
    sampler: str
    dies: int = 0
    #: Candidates whose metrics were adopted from a saved campaign
    #: (``run(reuse=...)``) instead of being simulated.
    reused: int = 0
    #: The grid carbon intensity (g CO2/kWh) the campaign priced its
    #: candidates at, or None when carbon was not assessed.
    carbon_intensity: float | None = None
    #: Sorted union of the canonical cell-technology tokens of every
    #: evaluated candidate (e.g. ``("edram-1t1c", "sram-6t")``) —
    #: saved campaigns embed it so ``--resume`` can hard-error on a
    #: technology mismatch.
    cell_technologies: tuple[str, ...] = ()

    # ------------------------------------------------------------ frontier
    def _reduction(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(frontier indices, ranked indices), computed once.

        The dominance scan is O(n^2 x objectives); outcomes are frozen,
        so the first caller pays and render/save paths share the result.
        """
        cached = self.__dict__.get("_reduction_cache")
        if cached is None:
            rows = [outcome.metrics for outcome in self.outcomes]
            frontier = tuple(pareto_indices(rows, self.objectives))
            ranked = tuple(
                rank_rows(rows, self.objectives, frontier=set(frontier))
            )
            cached = (frontier, ranked)
            object.__setattr__(self, "_reduction_cache", cached)
        return cached

    def frontier(self) -> tuple[CandidateOutcome, ...]:
        """The non-dominated candidates under the objectives."""
        return tuple(self.outcomes[i] for i in self._reduction()[0])

    def ranked(self) -> tuple[CandidateOutcome, ...]:
        """All candidates: frontier first, then by primary objective."""
        return tuple(self.outcomes[i] for i in self._reduction()[1])

    # --------------------------------------------------------- sensitivity
    def axis_sensitivity(
        self, axis: str, metric: str
    ) -> dict[object, float]:
        """Mean of ``metric`` per value of ``axis`` over the campaign."""
        rows = [outcome.metrics for outcome in self.outcomes]
        values = [
            outcome.point_dict().get(axis) for outcome in self.outcomes
        ]
        return sensitivity(rows, values, metric)

    def swept_axes(self) -> list[str]:
        """Axes that actually vary across the feasible candidates."""
        seen: dict[str, set] = {}
        for outcome in self.outcomes:
            for axis, value in outcome.candidate.point:
                seen.setdefault(axis, set()).add(value)
        return sorted(
            axis for axis, values in seen.items() if len(values) > 1
        )

    # -------------------------------------------------------------- report
    def render_report(self, top: int = 20) -> str:
        """Ranked candidates + frontier + per-axis sensitivities."""
        sections = [self._render_ranked(top), self._render_sensitivity()]
        if self.infeasible:
            sections.append(self._render_infeasible())
        return "\n\n".join(section for section in sections if section)

    def _render_ranked(self, top: int) -> str:
        frontier_names = {
            outcome.candidate.name for outcome in self.frontier()
        }
        objective_text = ", ".join(str(o) for o in self.objectives)
        populated = bool(self.outcomes) and (
            "epi_ule_p95" in self.outcomes[0].metrics
        )
        headers = [
            "rank",
            "candidate",
            "pareto",
            "EPI ULE (pJ)",
            "EPI HP (pJ)",
            "t/instr ULE (us)",
            "area (mm^2)",
            "yield",
            "ule cell",
        ]
        if populated:
            headers[3:3] = ["EPI ULE p95 (pJ)", "func frac"]
        table = Table(
            headers,
            title=(
                f"Exploration ranking — {len(self.outcomes)} candidates, "
                f"{len(frontier_names)} on the frontier "
                f"[{objective_text}]"
            ),
        )
        for rank, outcome in enumerate(self.ranked()[:top], start=1):
            metrics = outcome.metrics
            row = [
                rank,
                outcome.candidate.name,
                "*" if outcome.candidate.name in frontier_names
                else "",
                metrics["epi_ule"] * 1e12,
                metrics["epi_hp"] * 1e12,
                metrics["spi_ule"] * 1e6,
                metrics["area_mm2"],
                metrics["yield"],
                outcome.candidate.ule_design.cell.describe(),
            ]
            if populated:
                row[3:3] = [
                    metrics["epi_ule_p95"] * 1e12,
                    metrics["functional_fraction"],
                ]
            table.add_row(row)
        if len(self.outcomes) > top:
            table.add_separator()
            table.add_row(
                ["...", f"({len(self.outcomes) - top} more)"]
                + [""] * (len(headers) - 2)
            )
        return table.render()

    def _render_sensitivity(self) -> str:
        axes = self.swept_axes()
        if not axes:
            return ""
        table = Table(
            [
                "axis",
                "value",
                "mean EPI ULE (pJ)",
                "mean t/instr ULE (us)",
                "mean area (mm^2)",
                "mean yield",
            ],
            title="Per-axis sensitivity (means over the campaign)",
        )
        for axis in axes:
            epi = self.axis_sensitivity(axis, "epi_ule")
            spi = self.axis_sensitivity(axis, "spi_ule")
            area = self.axis_sensitivity(axis, "area_mm2")
            yields = self.axis_sensitivity(axis, "yield")
            for value in sorted(epi, key=_axis_value_order):
                table.add_row(
                    [
                        axis,
                        str(value),
                        epi[value] * 1e12,
                        spi[value] * 1e6,
                        area[value],
                        yields[value],
                    ]
                )
            table.add_separator()
        return table.render()

    def _render_infeasible(self) -> str:
        table = Table(
            ["point", "reason"],
            title=f"Infeasible points ({len(self.infeasible)})",
        )
        for point_text, reason in self.infeasible:
            table.add_row([point_text, reason])
        return table.render()

    # ------------------------------------------------------------- machine
    def to_dict(self) -> dict:
        """Machine-readable form (JSON-able; reloadable by the CLI)."""
        from repro.engine.jobs import _code_fingerprint

        frontier_names = [
            outcome.candidate.name for outcome in self.frontier()
        ]
        return {
            "meta": {
                # Which package sources produced these metrics: the
                # CLI's --resume compares it against the live package
                # and warns that mismatched rows will re-simulate.
                "engine_fingerprint": _code_fingerprint(),
                "trace_length": self.trace_length,
                "seed": self.seed,
                "sampler": self.sampler,
                "candidates": len(self.outcomes),
                "duplicates": self.duplicates,
                "dies": self.dies,
                "reused": self.reused,
                "carbon_intensity": self.carbon_intensity,
                "cell_technologies": list(self.cell_technologies),
            },
            "objectives": [str(o) for o in self.objectives],
            "candidates": [
                {
                    "name": outcome.candidate.name,
                    "point": {
                        key: value
                        for key, value in outcome.candidate.point
                    },
                    "metrics": outcome.metrics,
                }
                for outcome in self.outcomes
            ],
            "frontier": frontier_names,
            "infeasible": [list(entry) for entry in self.infeasible],
        }


@dataclass(frozen=True)
class SurrogateSettings:
    """Knobs of the surrogate-guided active-learning loop.

    Parameters
    ----------
    budget : int or None
        Maximum candidates to *simulate* (None = a third of the
        expanded space, rounded up — the headline "10x fewer jobs"
        envelope leaves the default well inside it).
    seed_candidates : int or None
        Size of the initial space-filling batch (None = a quarter of
        the budget, at least 8, never more than the budget).
    round_size : int or None
        Candidates simulated per acquisition round (None = an eighth
        of the budget, at least 4).
    rel_tol : float
        Relative hypervolume gain under which a round counts as quiet
        (:class:`~repro.explore.frontier.ConvergenceTracker`).
    patience : int
        Consecutive quiet rounds before the loop stops early.
    members : int
        Bootstrap members per surrogate regressor family.
    neighbours : int
        Neighbourhood size of the surrogate's kNN members.
    explore_fraction : float
        Fraction of each round reserved for pure uncertainty
        exploration (the rest exploits the predicted frontier).
    """

    budget: int | None = None
    seed_candidates: int | None = None
    round_size: int | None = None
    rel_tol: float = 1e-3
    patience: int = 2
    members: int = DEFAULT_MEMBERS
    neighbours: int = DEFAULT_NEIGHBOURS
    explore_fraction: float = 0.25

    def resolve(self, total: int) -> tuple[int, int, int]:
        """(budget, seed batch, round size) for ``total`` candidates."""
        if total < 1:
            return 0, 0, 1
        budget = (
            -(-total // 3) if self.budget is None else self.budget
        )
        budget = max(1, min(total, budget))
        seed = (
            max(8, -(-budget // 4))
            if self.seed_candidates is None
            else self.seed_candidates
        )
        seed = max(1, min(seed, budget))
        round_size = (
            max(4, -(-budget // 8))
            if self.round_size is None
            else self.round_size
        )
        return budget, seed, max(1, round_size)


@dataclass(frozen=True)
class SurrogateRound:
    """One acquisition round of a surrogate campaign."""

    #: Round number (0 = the space-filling seed batch).
    index: int
    #: Candidates simulated this round.
    selected: int
    #: Cumulative candidates with metrics after the round (simulated
    #: plus any reused from a resumed campaign).
    total_evaluated: int
    #: Jobs submitted for the round's candidates — a deterministic
    #: function of the selection, reported in the rendered table.
    submitted_jobs: int
    #: Jobs the session actually executed this round (after memo,
    #: disk-cache and dedup hits).  Honest accounting for the
    #: machine-readable dict only: it depends on how warm the ambient
    #: session's caches are, so the rendered report never shows it.
    executed_jobs: int
    #: Hypervolume of the observed rows after the round, scored
    #: against the tracker's evolving shared reference.
    hypervolume: float
    #: Relative hypervolume gain over the previous round (None for the
    #: first round, which has nothing to compare against).
    gain: float | None


@dataclass(frozen=True)
class SurrogateCampaignResult:
    """A surrogate campaign: the reduced result plus its economics."""

    #: The campaign reduction over the simulated subset — same type,
    #: same rendering, same save format as an exhaustive run.
    campaign: CampaignResult
    #: Per-round trace of the active-learning loop.
    rounds: tuple[SurrogateRound, ...]
    #: Feasible candidates in the expanded space.
    candidates_total: int
    #: The resolved simulation budget (candidates).
    budget: int
    #: Jobs the loop submitted to the session.
    jobs_submitted: int
    #: Jobs the session actually executed (after caching/dedup).
    #: Depends on ambient cache warmth, so it stays out of the
    #: rendered report (which must be reproducible across sessions).
    jobs_executed: int
    #: Jobs an exhaustive campaign over the space would have submitted.
    exhaustive_jobs: int
    #: Whether the loop stopped on frontier convergence (False =
    #: budget or space exhausted first).
    converged: bool

    @property
    def evaluated(self) -> int:
        """Candidates with metrics (simulated plus reused)."""
        return len(self.campaign.outcomes)

    @property
    def jobs_ratio(self) -> float:
        """Submitted jobs as a fraction of the exhaustive campaign."""
        return self.jobs_submitted / max(self.exhaustive_jobs, 1)

    def frontier(self) -> tuple[CandidateOutcome, ...]:
        """The non-dominated evaluated candidates."""
        return self.campaign.frontier()

    def render_report(self, top: int = 20) -> str:
        """The campaign report plus the surrogate economics section."""
        return "\n\n".join(
            [self.campaign.render_report(top), self._render_rounds()]
        )

    def _render_rounds(self) -> str:
        stop = "converged" if self.converged else "budget exhausted"
        table = Table(
            [
                "round",
                "simulated",
                "evaluated",
                "jobs",
                "hypervolume",
                "HV gain",
            ],
            title=(
                f"Surrogate exploration — {self.evaluated}/"
                f"{self.candidates_total} candidates evaluated "
                f"(budget {self.budget}, {stop})"
            ),
        )
        for entry in self.rounds:
            table.add_row(
                [
                    entry.index,
                    entry.selected,
                    entry.total_evaluated,
                    entry.submitted_jobs,
                    entry.hypervolume,
                    "" if entry.gain is None else f"{entry.gain:.2%}",
                ]
            )
        lines = [table.render()]
        lines.append(
            f"jobs: {self.jobs_submitted} submitted of "
            f"{self.exhaustive_jobs} exhaustive "
            f"({self.jobs_ratio:.1%})"
        )
        frontier = self.frontier()
        if frontier:
            knee = frontier[
                knee_index(
                    [outcome.metrics for outcome in frontier],
                    self.campaign.objectives,
                )
            ]
            lines.append(
                f"knee (best compromise): {knee.candidate.name}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The campaign dict plus a ``surrogate`` section.

        Top-level keys stay campaign-shaped, so ``repro pareto`` and
        ``sweep --resume`` consume surrogate-saved JSON unchanged.
        """
        payload = self.campaign.to_dict()
        payload["surrogate"] = {
            "candidates_total": self.candidates_total,
            "budget": self.budget,
            "evaluated": self.evaluated,
            "jobs_submitted": self.jobs_submitted,
            "jobs_executed": self.jobs_executed,
            "exhaustive_jobs": self.exhaustive_jobs,
            "jobs_ratio": self.jobs_ratio,
            "converged": self.converged,
            "rounds": [
                {
                    "index": entry.index,
                    "selected": entry.selected,
                    "total_evaluated": entry.total_evaluated,
                    "submitted_jobs": entry.submitted_jobs,
                    "executed_jobs": entry.executed_jobs,
                    "hypervolume": entry.hypervolume,
                    "gain": entry.gain,
                }
                for entry in self.rounds
            ],
        }
        return payload


@dataclass
class ExplorationCampaign:
    """A configured sweep, ready to expand and run.

    Parameters
    ----------
    space : DesignSpace
        The design space to explore (default: the stock space around
        the paper's design point).
    sampler : {"grid", "random", "halton"}
        How points are drawn from the space.
    samples : int or None
        Point budget (None = the full constrained grid).
    trace_length : int
        Dynamic instructions per benchmark.
    seed : int
        Root seed for trace generation.  It hashes into the engine's
        job keys, so two campaigns with equal seeds share memoized and
        on-disk results.
    objectives : tuple of Objective
        Pareto objectives for the reduction.  With ``dies > 0`` the
        stock objectives upgrade to :data:`POPULATION_OBJECTIVES`
        (p95-across-die instead of nominal-die ULE metrics); an
        explicitly passed tuple is honoured as-is.
    dies : int
        Die population per candidate (0 = nominal die only).  Each
        candidate's population is sampled at its own ULE supply and its
        ULE-suite runs fan out per distinct fault map; candidates gain
        ``epi_ule_p95`` / ``spi_ule_p95`` / ``functional_fraction``
        metrics.
    transients : TransientSpec, optional
        Soft-error injection for every run (:class:`repro.transients.
        spec.TransientSpec`).  Candidates gain ``due_fit_ule`` /
        ``sdc_fit_ule`` / ``refetch_rate_ule`` metrics from their
        nominal ULE runs, and the default objectives grow a
        minimize-``due_fit_ule`` axis (:data:`TRANSIENT_OBJECTIVE`).
    carbon_intensity : float, optional
        Grid carbon intensity in g CO2/kWh (resolve profile names with
        :func:`repro.sustainability.grid_intensity`).  When set, every
        candidate gains a ``co2_per_gib_ule`` metric — annual CO2 per
        GiB of L1 capacity at sustained ULE-mode average power — and
        the default objectives grow a minimize-carbon axis
        (:data:`CARBON_OBJECTIVE`).  None (the default) leaves
        campaigns byte-identical to pre-sustainability ones.

    Examples
    --------
    Sweep the ULE supply at the paper's geometry and inspect the
    frontier::

        from repro.explore import ExplorationCampaign, default_space

        space = default_space().with_overrides(
            {"vdd_ule": (0.35, 0.4, 0.45)})
        campaign = ExplorationCampaign(
            space=space, sampler="halton", samples=50,
            trace_length=20_000)
        result = campaign.run()          # ambient engine session
        for outcome in result.frontier():
            print(outcome.candidate.name, outcome.metrics["epi_ule"])

    Pass an explicit session to parallelize and cache::

        from repro.engine import SimulationSession

        with SimulationSession(jobs=4, cache_dir=".simcache") as s:
            result = campaign.run(session=s)

    The reduction is pure arithmetic over deterministic run results:
    ``result.render_report()`` is byte-identical whatever the
    session's process count.
    """

    space: DesignSpace = field(default_factory=default_space)
    sampler: str = "grid"
    samples: int | None = None
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH
    seed: int = calibration.DEFAULT_SEED
    objectives: tuple[Objective, ...] = DEFAULT_OBJECTIVES
    dies: int = 0
    transients: TransientSpec | None = None
    carbon_intensity: float | None = None

    def _transient_spec(self) -> TransientSpec | None:
        """The effective injection spec (null specs act like None)."""
        return TransientSpec.effective(self.transients)

    def _suite_sources(self, suite_name: str, mode: Mode):
        """The trace sources of one suite under this campaign's
        length/seed (memoized: mix sources materialize their
        interleaved trace once per campaign, not once per candidate).
        """
        memo = self.__dict__.setdefault("_suite_source_memo", {})
        key = (suite_name, mode)
        if key not in memo:
            memo[key] = as_sources(
                suite_by_name(suite_name, mode),
                length=self.trace_length,
                seed=self.seed,
            )
        return memo[key]

    # ---------------------------------------------------------- expansion
    def expand(self) -> tuple[list[Candidate], list[tuple[str, str]], int]:
        """Sample the space and build unique, feasible candidates.

        Returns (candidates, infeasible point/reason pairs, duplicate
        count).  Identity is the *label-stripped* hardware digest plus
        everything else that shapes the evaluation — the ULE operating
        point and the workload suite — so distinct points that realize
        identical hardware under identical runs collapse before
        simulation, while hardware-equal points at different supplies
        (whose energies differ) both survive.
        """
        candidates: list[Candidate] = []
        infeasible: list[tuple[str, str]] = []
        duplicates = 0
        seen: set[tuple[object, ...]] = set()
        for point in self.space.sample(
            sampler=self.sampler, samples=self.samples, seed=self.seed
        ):
            try:
                candidate = build_candidate(point)
            except CandidateError as error:
                infeasible.append((_point_text(point), str(error)))
                continue
            key = (
                candidate.digest,
                candidate.ule_point,
                point.get("suite", "paper"),
            )
            if key in seen:
                duplicates += 1
                continue
            seen.add(key)
            candidates.append(candidate)
        return candidates, infeasible, duplicates

    # ------------------------------------------------------------- running
    def run(
        self,
        session: SimulationSession | None = None,
        progress: Callable[[int, int], None] | None = None,
        reuse: Mapping[str, Mapping[str, float]] | None = None,
    ) -> CampaignResult:
        """Simulate every candidate and reduce the campaign.

        All jobs of all candidates go through ``session.run_jobs`` as
        one batch; ``progress(done, total)`` reports executed jobs from
        the driving process.

        ``reuse`` maps candidate names to previously reduced metrics
        (the ``candidates`` entries of a saved campaign).  A candidate
        whose saved row carries every metric this campaign needs skips
        simulation and adopts the row verbatim; everything else — new
        points, rows saved under different objectives — simulates as
        usual.  Outcomes merge back in expansion order, so a resumed
        campaign renders byte-identically to a fresh one.
        """
        session = session or current_session()
        candidates, infeasible, duplicates = self.expand()

        reused: dict[int, CandidateOutcome] = {}
        fresh: list[tuple[int, Candidate]] = []
        if reuse:
            required = self._required_metrics()
            for index, candidate in enumerate(candidates):
                saved = reuse.get(candidate.name)
                if saved is not None and required <= set(saved):
                    reused[index] = CandidateOutcome(
                        candidate=candidate,
                        metrics={
                            key: float(value)
                            for key, value in saved.items()
                        },
                    )
                else:
                    fresh.append((index, candidate))
        else:
            fresh = list(enumerate(candidates))

        evaluated = self._evaluate_candidates(
            [candidate for _, candidate in fresh], session, progress
        )
        merged: dict[int, CandidateOutcome] = dict(reused)
        for (index, _), outcome in zip(fresh, evaluated):
            merged[index] = outcome
        return CampaignResult(
            outcomes=tuple(
                merged[index] for index in sorted(merged)
            ),
            infeasible=tuple(infeasible),
            duplicates=duplicates,
            objectives=self._effective_objectives(),
            trace_length=self.trace_length,
            seed=self.seed,
            sampler=self.sampler,
            dies=self.dies,
            reused=len(reused),
            carbon_intensity=self.carbon_intensity,
            cell_technologies=self._technology_union(candidates),
        )

    def _required_metrics(self) -> set[str]:
        """Metric keys a saved row must carry to stand in for a run."""
        required = {"epi_ule", "epi_hp", "spi_ule", "spi_hp",
                    "area_mm2", "yield", "ule_size_factor"}
        required |= {o.metric for o in self._effective_objectives()}
        if self.dies:
            required |= {
                "epi_ule_p95", "spi_ule_p95", "functional_fraction"
            }
        return required

    def _evaluate_candidates(
        self,
        candidates: Sequence[Candidate],
        session: SimulationSession,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[CandidateOutcome]:
        """Simulate a candidate subset: one ``run_jobs`` batch, reduce.

        The shared workhorse of :meth:`run` (all candidates at once)
        and :meth:`run_surrogate` (one acquisition round at a time) —
        both paths execute and reduce identically, which is what makes
        a surrogate campaign's per-candidate metrics byte-equal to the
        exhaustive campaign's.
        """
        jobs: list[SimulationJob] = []
        spans: list[
            tuple[Candidate, int, int, int, tuple[DieFaultMap, ...]]
        ] = []
        for candidate in candidates:
            start = len(jobs)
            jobs.extend(self._jobs_for(candidate))
            die_start = len(jobs)
            die_maps: tuple[DieFaultMap, ...] = ()
            if self.dies:
                die_maps = self._die_maps_for(candidate)
                for die_map in die_maps:
                    jobs.extend(self._die_jobs_for(candidate, die_map))
            spans.append(
                (candidate, start, die_start, len(jobs), die_maps)
            )

        results = session.run_jobs(jobs, progress=progress)

        outcomes = []
        for candidate, start, die_start, stop, die_maps in spans:
            metrics = self._reduce(candidate, results[start:die_start])
            if die_maps:
                metrics.update(
                    self._reduce_population(
                        die_maps, results[die_start:stop]
                    )
                )
            outcomes.append(
                CandidateOutcome(candidate=candidate, metrics=metrics)
            )
        return outcomes

    def jobs_per_candidate(self, candidate: Candidate) -> int:
        """How many jobs :meth:`run` would submit for one candidate.

        Counted arithmetically — suite sizes plus ``dies`` fan-out —
        without sampling fault maps, so the surrogate report can state
        the exhaustive-campaign job count it avoided paying.
        """
        suite_name = str(candidate.point_dict().get("suite", "paper"))
        ule = len(self._suite_sources(suite_name, Mode.ULE))
        hp = len(self._suite_sources(suite_name, Mode.HP))
        return ule + hp + self.dies * ule

    def _effective_objectives(self) -> tuple[Objective, ...]:
        """Population sweeps rank the tail, injection adds DUE —
        unless an explicit objective tuple was passed."""
        if tuple(self.objectives) != DEFAULT_OBJECTIVES:
            return tuple(self.objectives)
        base = POPULATION_OBJECTIVES if self.dies else DEFAULT_OBJECTIVES
        if self._transient_spec() is not None:
            base = base + (TRANSIENT_OBJECTIVE,)
        if self.carbon_intensity is not None:
            base = base + (CARBON_OBJECTIVE,)
        return base

    def _die_maps_for(
        self, candidate: Candidate
    ) -> tuple[DieFaultMap, ...]:
        """The candidate's die population at its own ULE supply."""
        return sample_population(
            candidate.chip.il1,
            candidate.chip.dl1,
            dies=self.dies,
            seed=self.seed,
            mode_vdds={Mode.ULE: candidate.ule_point.vdd},
        )

    def _die_jobs_for(
        self, candidate: Candidate, die_map: DieFaultMap
    ) -> list[SimulationJob]:
        """One die's ULE-suite jobs (fault-free dies share keys with
        the candidate's nominal runs)."""
        suite_name = str(candidate.point_dict().get("suite", "paper"))
        fault_map = (
            None if die_map.is_fault_free else die_map.normalized()
        )
        return [
            SimulationJob(
                chip=candidate.chip,
                trace=source.job_trace(),
                mode=Mode.ULE,
                operating_point=candidate.ule_point,
                fault_map=fault_map,
                transients=self._transient_spec(),
            )
            for source in self._suite_sources(suite_name, Mode.ULE)
        ]

    def _reduce_population(
        self,
        die_maps: tuple[DieFaultMap, ...],
        results: Sequence[RunResult],
    ) -> dict[str, float]:
        """Across-die tail metrics from the per-die ULE runs."""
        per_die, remainder = divmod(len(results), len(die_maps))
        if remainder or per_die == 0:
            # Every die submits the same suite; anything else means
            # the spans are misaligned — fail loudly rather than
            # percentile over the wrong runs.
            raise RuntimeError(
                f"population results ({len(results)}) do not split "
                f"evenly over {len(die_maps)} dies"
            )
        epi = []
        spi = []
        for die in range(len(die_maps)):
            runs = results[die * per_die:(die + 1) * per_die]
            die_metrics = suite_mode_metrics(
                runs, modes=((Mode.ULE, "ule"),)
            )
            epi.append(die_metrics["epi_ule"])
            spi.append(die_metrics["spi_ule"])
        return {
            "epi_ule_p95": float(
                np.percentile(np.asarray(epi), POPULATION_PERCENTILE)
            ),
            "spi_ule_p95": float(
                np.percentile(np.asarray(spi), POPULATION_PERCENTILE)
            ),
            "functional_fraction": functional_fraction(
                die_maps, Mode.ULE
            ),
        }

    def _jobs_for(self, candidate: Candidate) -> list[SimulationJob]:
        """The (benchmark x mode) jobs of one candidate."""
        suite_name = str(candidate.point_dict().get("suite", "paper"))
        jobs = []
        for mode, point in (
            (Mode.ULE, candidate.ule_point),
            (Mode.HP, HP_OPERATING_POINT),
        ):
            for source in self._suite_sources(suite_name, mode):
                jobs.append(
                    SimulationJob(
                        chip=candidate.chip,
                        trace=source.job_trace(),
                        mode=mode,
                        operating_point=point,
                        transients=self._transient_spec(),
                    )
                )
        return jobs

    def _reduce(
        self, candidate: Candidate, results: Sequence[RunResult]
    ) -> dict[str, float]:
        """Per-candidate metrics from its runs (order: ULE suite, HP)."""
        metrics = suite_mode_metrics(results)
        metrics.update(free_metrics(candidate))
        if self._transient_spec() is not None:
            ule_runs = [r for r in results if r.mode is Mode.ULE]
            metrics.update(transient_run_metrics(ule_runs, "ule"))
        if self.carbon_intensity is not None:
            metrics["co2_per_gib_ule"] = self._carbon_metric(
                candidate, metrics
            )
        return metrics

    def _carbon_metric(
        self, candidate: Candidate, metrics: Mapping[str, float]
    ) -> float:
        """Annual g CO2 per GiB of L1 at sustained ULE operation.

        Average ULE power is ``epi_ule / spi_ule`` (J per instruction
        over seconds per instruction); a candidate with no ULE runs
        scores 0.0.
        """
        spi = metrics.get("spi_ule", 0.0)
        if spi <= 0.0:
            return 0.0
        power = metrics["epi_ule"] / spi
        return carbon_per_gib_year(
            power,
            chip_capacity_bytes(candidate.chip),
            float(self.carbon_intensity),
        )

    def _technology_union(
        self, candidates: Sequence[Candidate]
    ) -> tuple[str, ...]:
        """Sorted union of the candidates' canonical cell tokens."""
        tokens: set[str] = set()
        for candidate in candidates:
            tokens.update(technology_tokens(candidate.chip))
        return tuple(sorted(tokens))

    def expected_technologies(self) -> tuple[str, ...]:
        """The cell-technology tokens this campaign would evaluate.

        Expands the space (the per-cell sizing is memoized, so a
        following :meth:`run` pays nothing extra) — the CLI's
        ``--resume`` check compares this against a saved campaign's
        embedded tokens before adopting any metrics.
        """
        candidates, _, _ = self.expand()
        return self._technology_union(candidates)

    # ----------------------------------------------------- surrogate loop
    def run_surrogate(
        self,
        session: SimulationSession | None = None,
        settings: SurrogateSettings | None = None,
        progress: Callable[[int, int], None] | None = None,
        reuse: Mapping[str, Mapping[str, float]] | None = None,
    ) -> SurrogateCampaignResult:
        """Explore the space with a surrogate-guided simulation budget.

        Instead of simulating every candidate, the loop

        1. simulates a seeded space-filling batch;
        2. fits :class:`~repro.explore.surrogate.MetricSurrogate`
           ensembles on the evaluated candidates (only the *simulated*
           objective metrics — analytic ones are exact for free);
        3. predicts the rest of the space with uncertainty and spends
           the next round on the predicted Pareto frontier plus the
           most uncertain candidates;
        4. stops when the observed frontier's hypervolume converges
           (:class:`~repro.explore.frontier.ConvergenceTracker`) or
           the budget runs out.

        Every selected candidate runs through the same
        :meth:`_evaluate_candidates` path as :meth:`run`, so its
        metrics are byte-equal to the exhaustive campaign's — the
        surrogate only decides *which* candidates pay for simulation.
        The whole loop is deterministic: seeded selection, sorted
        iteration orders and the surrogate's bit-reproducibility make
        equal-seed runs identical whatever the session's process count.

        ``reuse`` pre-loads saved outcomes (as in :meth:`run`); they
        count as evaluated without spending budget.
        """
        session = session or current_session()
        settings = settings or SurrogateSettings()
        candidates, infeasible, duplicates = self.expand()
        objectives = self._effective_objectives()
        exhaustive_jobs = sum(
            self.jobs_per_candidate(candidate)
            for candidate in candidates
        )

        evaluated: dict[int, CandidateOutcome] = {}
        if reuse:
            required = self._required_metrics()
            for index, candidate in enumerate(candidates):
                saved = reuse.get(candidate.name)
                if saved is not None and required <= set(saved):
                    evaluated[index] = CandidateOutcome(
                        candidate=candidate,
                        metrics={
                            key: float(value)
                            for key, value in saved.items()
                        },
                    )
        reused = len(evaluated)

        budget, seed_size, round_size = settings.resolve(
            len(candidates)
        )
        sim_metrics = sorted(
            {o.metric for o in objectives} - set(FREE_METRIC_NAMES)
        )
        tracker = ConvergenceTracker(
            objectives,
            rel_tol=settings.rel_tol,
            patience=settings.patience,
        )
        schema = (
            FeatureSchema.from_candidates(candidates)
            if candidates
            else None
        )
        features = (
            schema.matrix(candidates) if schema is not None else None
        )

        rounds: list[SurrogateRound] = []
        simulated = 0
        jobs_submitted = 0
        jobs_executed = 0

        def run_round(chosen: list[int]) -> tuple[int, int]:
            """Simulate ``chosen``; (submitted, executed) jobs."""
            nonlocal simulated, jobs_submitted, jobs_executed
            before = session.stats.snapshot()
            outcomes = self._evaluate_candidates(
                [candidates[i] for i in chosen], session, progress
            )
            for index, outcome in zip(chosen, outcomes):
                evaluated[index] = outcome
            simulated += len(chosen)
            submitted = sum(
                self.jobs_per_candidate(candidates[i]) for i in chosen
            )
            jobs_submitted += submitted
            executed = session.stats.since(before).executed
            jobs_executed += executed
            return submitted, executed

        def record(
            selected: int, submitted: int, executed: int
        ) -> None:
            rows = [
                evaluated[index].metrics
                for index in sorted(evaluated)
            ]
            gain = tracker.update(rows)
            rounds.append(
                SurrogateRound(
                    index=len(rounds),
                    selected=selected,
                    total_evaluated=len(evaluated),
                    submitted_jobs=submitted,
                    executed_jobs=executed,
                    hypervolume=tracker.history[-1],
                    gain=float(gain) if np.isfinite(gain) else None,
                )
            )

        unevaluated = [
            index
            for index in range(len(candidates))
            if index not in evaluated
        ]
        seed_size = min(seed_size, budget, len(unevaluated))
        if seed_size:
            rng = np.random.default_rng(
                derive_seed(self.seed, "explore", "surrogate", "seed")
            )
            chosen = sorted(
                int(i)
                for i in rng.choice(
                    np.asarray(unevaluated),
                    size=seed_size,
                    replace=False,
                )
            )
            submitted, executed = run_round(chosen)
            record(len(chosen), submitted, executed)

        while (
            simulated < budget
            and len(evaluated) < len(candidates)
            and not tracker.converged
        ):
            unevaluated = [
                index
                for index in range(len(candidates))
                if index not in evaluated
            ]
            order = sorted(evaluated)
            surrogate = MetricSurrogate(
                seed=self.seed,
                members=settings.members,
                neighbours=settings.neighbours,
            ).fit(
                features[order],
                {
                    metric: [
                        evaluated[index].metrics[metric]
                        for index in order
                    ]
                    for metric in sim_metrics
                },
            )
            predictions = surrogate.predict(features[unevaluated])

            # Per-metric uncertainty scale: the observed spread, so no
            # single metric's units dominate the acquisition score.
            scales = {
                metric: max(
                    float(
                        np.std(
                            [
                                evaluated[index].metrics[metric]
                                for index in order
                            ]
                        )
                    ),
                    1e-12,
                )
                for metric in sim_metrics
            }
            rows: list[dict[str, float]] = []
            uncertainty = dict.fromkeys(unevaluated, 0.0)
            position = {
                index: at for at, index in enumerate(unevaluated)
            }
            for index in range(len(candidates)):
                outcome = evaluated.get(index)
                if outcome is not None:
                    rows.append(outcome.metrics)
                    continue
                row = free_metrics(candidates[index])
                at = position[index]
                for metric in sim_metrics:
                    mean, std = predictions[metric]
                    row[metric] = float(mean[at])
                    uncertainty[index] += (
                        float(std[at]) / scales[metric]
                    )
                rows.append(row)
            predicted_front = set(pareto_indices(rows, objectives))

            size = min(
                round_size, budget - simulated, len(unevaluated)
            )
            explore_n = min(
                size, int(round(size * settings.explore_fraction))
            )
            explore_order = sorted(
                unevaluated, key=lambda i: (-uncertainty[i], i)
            )
            exploit_order = sorted(
                unevaluated,
                key=lambda i: (
                    0 if i in predicted_front else 1,
                    -uncertainty[i],
                    i,
                ),
            )
            chosen = explore_order[:explore_n]
            chosen_set = set(chosen)
            for index in exploit_order:
                if len(chosen) >= size:
                    break
                if index not in chosen_set:
                    chosen.append(index)
                    chosen_set.add(index)
            chosen.sort()
            submitted, executed = run_round(chosen)
            record(len(chosen), submitted, executed)

        campaign = CampaignResult(
            outcomes=tuple(
                evaluated[index] for index in sorted(evaluated)
            ),
            infeasible=tuple(infeasible),
            duplicates=duplicates,
            objectives=objectives,
            trace_length=self.trace_length,
            seed=self.seed,
            sampler=self.sampler,
            dies=self.dies,
            reused=reused,
            carbon_intensity=self.carbon_intensity,
            cell_technologies=self._technology_union(candidates),
        )
        return SurrogateCampaignResult(
            campaign=campaign,
            rounds=tuple(rounds),
            candidates_total=len(candidates),
            budget=budget,
            jobs_submitted=jobs_submitted,
            jobs_executed=jobs_executed,
            exhaustive_jobs=exhaustive_jobs,
            converged=tracker.converged,
        )


def _axis_value_order(value: object) -> tuple:
    """Sort numeric axis values numerically, everything else as text."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def _point_text(point: Mapping[str, object]) -> str:
    return ", ".join(
        f"{key}={point[key]}" for key in sorted(point)
    )
