"""Mode-transition costs: is switching HP <-> ULE really negligible?

The paper (Section III-B, citing Powell's gated-Vdd) asserts that gating
or ungating the HP ways and the EDC block on a Vcc change has negligible
overhead.  This module prices the whole transition so the claim can be
checked quantitatively:

* **HP -> ULE**: the 7 HP ways are flushed (dirty lines written back),
  then gated.  In scenario A the ULE way's resident lines additionally
  need an *encode pass* (they were written with coding off, and SECDED
  becomes active) — a read + encode + write of every valid ULE-way line.
  In scenario B the stored format is already DECTED; nothing to do.
* **ULE -> HP**: the HP ways get ungated (they return empty; their
  gate capacitance must be recharged) and, in scenario A, the check-bit
  columns are simply ignored again.

The relevant comparison is against the energy of the phase the switch
enables; with the paper's duty cycles (phases of >= milliseconds) the
transition amortizes to well below a percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.cacti.model import CacheEnergyModel
from repro.tech.operating import (
    HP_OPERATING_POINT,
    Mode,
    OperatingPoint,
)

#: Energy to recharge the virtual-rail of one gated way, as a fraction of
#: one full read access of that way (Powell et al. report small constants).
GATE_RECHARGE_ACCESS_FRACTION = 2.0


def reencode_on_ule_entry(config: CacheConfig) -> bool:
    """Whether entering ULE mode changes the ULE way's stored format.

    True exactly when the ULE-capable group runs *uncoded* at HP mode
    but coded at ULE mode (scenario A: its resident lines were written
    with the check columns gated, so SECDED activation needs an encode
    pass).  When any coding is active at HP the full stored redundancy
    is already maintained (scenario B stores DECTED codewords at both
    modes), so nothing needs re-encoding.
    """
    for group in config.way_groups:
        if Mode.ULE not in group.active_modes:
            continue
        return (
            group.active_data_check_bits(Mode.HP) == 0
            and group.active_data_check_bits(Mode.ULE) > 0
        )
    raise ValueError("no ULE-capable way group")


@dataclass(frozen=True)
class TransitionCost:
    """Energy and time of one mode switch for one cache."""

    direction: str
    flush_writebacks: int
    flush_energy: float
    reencode_energy: float
    gating_energy: float
    cycles: float

    @property
    def total_energy(self) -> float:
        """Total transition energy (J)."""
        return self.flush_energy + self.reencode_energy + self.gating_energy


class ModeTransitionModel:
    """Prices HP<->ULE transitions for a cache configuration."""

    def __init__(self, model: CacheEnergyModel):
        self.model = model
        self.config = model.config

    def _ule_group_name(self) -> str:
        for group in self.config.way_groups:
            if Mode.ULE in group.active_modes:
                return group.name
        raise ValueError("no ULE-capable way group")

    def hp_to_ule(
        self,
        dirty_hp_lines: int,
        valid_ule_lines: int,
        reencode_needed: bool,
    ) -> TransitionCost:
        """Cost of entering ULE mode.

        Args:
            dirty_hp_lines: dirty lines resident in the HP ways (from the
                functional simulator; each is written back).
            valid_ule_lines: valid lines in the ULE way (re-encoded when
                the stored format changes, i.e. scenario A).
            reencode_needed: whether entering ULE changes the stored
                format (scenario A: coding was off at HP).
        """
        if dirty_hp_lines < 0 or valid_ule_lines < 0:
            raise ValueError("line counts must be non-negative")
        op_hp: OperatingPoint = HP_OPERATING_POINT
        ule_group = self._ule_group_name()
        hp_groups = [
            name
            for name, arrays in self.model.groups.items()
            if name != ule_group
        ]
        # Flush: each dirty line is read out of its HP way at HP voltage.
        flush_energy = 0.0
        if hp_groups and dirty_hp_lines:
            per_line = self.model.writeback_energy(hp_groups[0], op_hp)
            flush_energy = dirty_hp_lines * per_line.total

        # Re-encode pass over the ULE way (still at HP voltage, before
        # the rail drops): read line + write line under the ULE format.
        reencode_energy = 0.0
        if reencode_needed and valid_ule_lines:
            op_ule_format = OperatingPoint(
                mode=Mode.ULE,
                vdd=op_hp.vdd,
                frequency=op_hp.frequency,
            )
            read_out = self.model.writeback_energy(ule_group, op_ule_format)
            write_back = self.model.fill_energy(ule_group, op_ule_format)
            reencode_energy = valid_ule_lines * (
                read_out.total + write_back.total
            )

        # Gating: draining the virtual rails costs ~nothing; account a
        # small constant per gated way.
        gating_energy = self._gating_energy(hp_groups, op_hp)

        cycles = float(
            dirty_hp_lines
            + (2 * valid_ule_lines if reencode_needed else 0)
            + 10
        )
        return TransitionCost(
            direction="HP->ULE",
            flush_writebacks=dirty_hp_lines,
            flush_energy=flush_energy,
            reencode_energy=reencode_energy,
            gating_energy=gating_energy,
            cycles=cycles,
        )

    def switch_cost(
        self,
        source: Mode,
        target: Mode,
        dirty_hp_lines: int = 0,
        valid_ule_lines: int = 0,
    ) -> TransitionCost:
        """Cost of switching ``source`` -> ``target`` (direction-aware).

        Parameters
        ----------
        source, target : Mode
            The modes on either side of the switch (must differ).
        dirty_hp_lines : int
            Dirty lines resident in the HP ways (HP->ULE flushes them).
        valid_ule_lines : int
            Valid lines in the ULE way; re-encoded on HP->ULE entry
            when the stored format changes (see
            :func:`reencode_on_ule_entry`).

        Returns
        -------
        TransitionCost
            The priced transition.  This is the single entry point the
            runtime scheduler uses; it dispatches to :meth:`hp_to_ule`
            or :meth:`ule_to_hp` and infers the re-encode requirement
            from the cache configuration.
        """
        if source is target:
            raise ValueError("switch_cost needs two distinct modes")
        if target is Mode.ULE:
            return self.hp_to_ule(
                dirty_hp_lines=dirty_hp_lines,
                valid_ule_lines=valid_ule_lines,
                reencode_needed=reencode_on_ule_entry(self.config),
            )
        return self.ule_to_hp()

    def ule_to_hp(self) -> TransitionCost:
        """Cost of returning to HP mode (ungating the HP ways)."""
        ule_group = self._ule_group_name()
        hp_groups = [
            name for name in self.model.groups if name != ule_group
        ]
        gating_energy = self._gating_energy(hp_groups, HP_OPERATING_POINT)
        return TransitionCost(
            direction="ULE->HP",
            flush_writebacks=0,
            flush_energy=0.0,
            reencode_energy=0.0,
            gating_energy=gating_energy,
            cycles=10.0,
        )

    def _gating_energy(
        self, group_names: list[str], op: OperatingPoint
    ) -> float:
        energy = 0.0
        for name in group_names:
            arrays = self.model.groups[name]
            per_way = (
                arrays.tag_probe_energy(op) + arrays.data_read_energy(op)
            ).total
            energy += (
                arrays.group.ways
                * GATE_RECHARGE_ACCESS_FRACTION
                * per_way
            )
        return energy

    def amortized_fraction(
        self,
        cost: TransitionCost,
        phase_energy: float,
    ) -> float:
        """Transition energy as a fraction of the phase it enables."""
        if phase_energy <= 0:
            raise ValueError("phase energy must be positive")
        return cost.total_energy / phase_energy
