"""Die-population studies: distributions, yield curves, histograms.

The analytic yield model answers "what fraction of dies work"; a
population study answers the follow-up questions the paper's Section 3
fault-aware design raises: *how do the surviving dies behave?*  It
samples N per-die fault maps from the variation models
(:mod:`repro.faults.sampling`), batches every (die, benchmark, mode)
run through one :meth:`repro.engine.session.SimulationSession.run_jobs`
call — identical dies deduplicate by fault-map content, so the common
fault-free die simulates once however large the population — and
reduces the results into:

* EPI and execution-time percentiles across the population, per mode;
* a sampled yield curve versus the ULE supply;
* a disabled-line histogram (how degraded the worst dies are).

The reduction is pure arithmetic over deterministic run results, so a
population report renders byte-identically whatever the session's
process count — the same contract the exploration campaigns pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core import calibration
from repro.core.evaluation import cached_chips, cached_design
from repro.core.scenarios import Scenario
from repro.cpu.chip import ChipConfig, RunResult, suite_mode_metrics
from repro.engine.jobs import SimulationJob
from repro.engine.session import SimulationSession, current_session
from repro.faults.maps import CACHE_LABELS, DieFaultMap
from repro.faults.sampling import (
    functional_fraction,
    sample_population,
)
from repro.tech.operating import Mode, OperatingPoint, operating_point_for
from repro.transients.metrics import transient_run_metrics
from repro.transients.spec import TransientSpec
from repro.util.tables import Table
from repro.workloads.source import as_sources
from repro.workloads.suites import suite_by_name

#: Default population percentiles (the paper-style tail views).
DEFAULT_PERCENTILES = (50.0, 90.0, 95.0, 99.0)

#: Default ULE supplies for the sampled yield curve (the sizing point
#: 0.35 V sits in the middle).
DEFAULT_VDD_GRID = (0.30, 0.325, 0.35, 0.375, 0.40)

#: The per-die metrics a study reduces.
_METRICS = ("epi_ule", "spi_ule", "epi_hp", "spi_hp")

#: Additional per-die metrics when soft-error injection is active.
_TRANSIENT_METRICS = ("due_fit_ule", "sdc_fit_ule", "refetch_rate_ule")


@dataclass(frozen=True)
class DieOutcome:
    """One die of the population with its reduced metrics."""

    die: int
    fault_map: DieFaultMap
    metrics: dict[str, float]

    @property
    def disabled_lines(self) -> int:
        """Disabled lines of the die (all caches, all modes)."""
        return self.fault_map.disabled_line_count


@dataclass(frozen=True)
class PopulationResult:
    """Everything one population study produced."""

    chip_name: str
    dies: int
    unique_maps: int
    seed: int
    trace_length: int
    percentiles: tuple[float, ...]
    outcomes: tuple[DieOutcome, ...]
    yield_curve: tuple[tuple[float, float], ...]
    sampled_yield: float
    analytic_yield: float | None = None
    #: Extra per-die metric names present when injection was active.
    transient_metrics: tuple[str, ...] = ()
    #: Closed-form uncorrectable FIT of both L1s at the study's ULE
    #: point and *accelerated* physics (None without injection).
    analytic_due_fit: float | None = None
    #: The sampler-enumerated counterpart of :attr:`analytic_due_fit`
    #: — same accelerated physics, Monte Carlo instead of closed form.
    sampled_due_fit: float | None = None

    # ----------------------------------------------------------- reduction
    def _metric_names(self) -> tuple[str, ...]:
        """All per-die metric names this study reduced."""
        return _METRICS + self.transient_metrics

    def metric_values(self, metric: str) -> tuple[float, ...]:
        """The per-die values of one metric, in die order."""
        return tuple(o.metrics[metric] for o in self.outcomes)

    def metric_percentiles(self, metric: str) -> dict[float, float]:
        """Population percentiles of one metric."""
        values = np.asarray(self.metric_values(metric), dtype=float)
        return {
            q: float(np.percentile(values, q))
            for q in self.percentiles
        }

    def fault_histogram(self) -> dict[int, int]:
        """Disabled-line count -> number of dies."""
        histogram: dict[int, int] = {}
        for outcome in self.outcomes:
            count = outcome.disabled_lines
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    # -------------------------------------------------------------- report
    def render(self) -> str:
        """The full population report (tables, deterministic)."""
        return "\n\n".join(
            (
                self._render_summary(),
                self._render_percentiles(),
                self._render_histogram(),
                self._render_yield_curve(),
            )
        )

    def _render_summary(self) -> str:
        table = Table(
            ["quantity", "value"],
            title=(
                f"Die population — {self.chip_name}, {self.dies} dies "
                f"(seed {self.seed})"
            ),
        )
        table.add_row(["unique fault maps", self.unique_maps])
        table.add_row(
            ["fully functional dies (sampled yield)",
             f"{self.sampled_yield:.4f}"]
        )
        if self.analytic_yield is not None:
            table.add_row(
                ["analytic yield (Eq. 2)", f"{self.analytic_yield:.4f}"]
            )
        worst = max(o.disabled_lines for o in self.outcomes)
        table.add_row(["worst die disabled lines", worst])
        if self.analytic_due_fit is not None:
            table.add_row(
                ["analytic DUE FIT @ ULE (accelerated)",
                 f"{self.analytic_due_fit:.4g}"]
            )
        if self.sampled_due_fit is not None:
            table.add_row(
                ["sampled DUE FIT @ ULE (accelerated)",
                 f"{self.sampled_due_fit:.4g}"]
            )
        return table.render()

    def _render_percentiles(self) -> str:
        table = Table(
            ["metric"] + [f"p{q:g}" for q in self.percentiles],
            title="Population distributions (per-die suite means)",
        )
        scale = {
            "epi_ule": ("EPI ULE (pJ)", 1e12),
            "spi_ule": ("t/instr ULE (us)", 1e6),
            "epi_hp": ("EPI HP (pJ)", 1e12),
            "spi_hp": ("t/instr HP (us)", 1e6),
            "due_fit_ule": ("DUE FIT ULE (accel)", 1.0),
            "sdc_fit_ule": ("SDC FIT ULE (accel)", 1.0),
            "refetch_rate_ule": ("refetches/instr ULE", 1.0),
        }
        for metric in self._metric_names():
            label, factor = scale[metric]
            row = self.metric_percentiles(metric)
            table.add_row(
                [label] + [row[q] * factor for q in self.percentiles]
            )
        return table.render()

    def _render_histogram(self) -> str:
        table = Table(
            ["disabled lines", "dies", "share"],
            title="Disabled-line histogram (all caches, all modes)",
        )
        for count, dies in self.fault_histogram().items():
            table.add_row(
                [count, dies, f"{dies / self.dies:.3f}"]
            )
        return table.render()

    def _render_yield_curve(self) -> str:
        table = Table(
            ["Vdd ULE (mV)", "functional fraction"],
            title=(
                "Sampled yield vs ULE supply "
                f"({self.dies} dies per point)"
            ),
        )
        for vdd, fraction in self.yield_curve:
            table.add_row([f"{vdd * 1e3:.0f}", f"{fraction:.4f}"])
        return table.render()

    # ------------------------------------------------------------- machine
    def to_dict(self) -> dict:
        """Machine-readable form (JSON-able)."""
        return {
            "meta": {
                "chip": self.chip_name,
                "dies": self.dies,
                "unique_fault_maps": self.unique_maps,
                "seed": self.seed,
                "trace_length": self.trace_length,
            },
            "percentiles": {
                metric: {
                    f"p{q:g}": value
                    for q, value in self.metric_percentiles(
                        metric
                    ).items()
                }
                for metric in self._metric_names()
            },
            "sampled_yield": self.sampled_yield,
            "analytic_yield": self.analytic_yield,
            "analytic_due_fit": self.analytic_due_fit,
            "sampled_due_fit": self.sampled_due_fit,
            "fault_histogram": {
                str(count): dies
                for count, dies in self.fault_histogram().items()
            },
            "yield_curve": [list(point) for point in self.yield_curve],
            "dies": [
                {
                    "die": outcome.die,
                    "disabled_lines": outcome.disabled_lines,
                    "metrics": outcome.metrics,
                }
                for outcome in self.outcomes
            ],
        }


@dataclass
class PopulationStudy:
    """A configured die-population study, ready to sample and run.

    Parameters
    ----------
    chip : ChipConfig
        The chip whose die population to study (see
        :func:`scenario_population_study` for the paper chips).
    dies : int
        Population size.  Identical fault maps deduplicate in the
        engine, so cost grows with *distinct* maps, not dies.
    trace_length : int
        Dynamic instructions per benchmark.
    seed : int
        Root seed; fault sampling and trace generation derive child
        streams, so a study is bit-reproducible end to end.
    percentiles : tuple of float
        Population percentiles to report.
    vdd_grid : tuple of float
        ULE supplies for the sampled yield curve (map sampling only —
        no simulation).
    mode_points : mapping, optional
        Operating-point override per mode (defaults to the paper's).
    analytic_yield : float, optional
        Eq. (2) anchor printed next to the sampled yield.
    transients : TransientSpec, optional
        Soft-error injection for every run.  Per-die DUE/SDC FIT and
        refetch-rate percentiles join the reduction, and the study
        cross-checks the sampled uncorrectable rate against the
        analytic :meth:`~repro.reliability.soft_errors.
        SoftErrorModel.cache_fit` (both at accelerated physics; see
        docs/transients.md for the statistical tolerance).
    fit_check_intervals : int
        Scrub intervals the cross-check enumerates per array — more
        intervals, tighter Monte Carlo error.

    Examples
    --------
    Distribution of scenario-A proposed dies::

        from repro.faults import scenario_population_study

        study = scenario_population_study("A", dies=200)
        result = study.run()       # ambient engine session
        print(result.metric_percentiles("epi_ule")[95.0])
    """

    chip: ChipConfig
    dies: int = 100
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH
    seed: int = calibration.DEFAULT_SEED
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    vdd_grid: tuple[float, ...] = DEFAULT_VDD_GRID
    mode_points: Mapping[Mode, OperatingPoint] | None = None
    analytic_yield: float | None = None
    transients: TransientSpec | None = None
    fit_check_intervals: int = 400
    #: Workload suite per die: ``"paper"`` keeps the SmallBench/ULE +
    #: BigBench/HP assignment; any :func:`~repro.workloads.suites.
    #: suite_by_name` name (including ``mix1..mix7``) works.
    suite: str = "paper"

    def __post_init__(self) -> None:
        if self.dies < 1:
            raise ValueError("dies must be at least 1")
        suite_by_name(self.suite, Mode.ULE)  # validate early
        if not self.percentiles:
            raise ValueError("need at least one percentile")
        for q in self.percentiles:
            if not 0.0 <= q <= 100.0:
                raise ValueError("percentiles must be in [0, 100]")
        if self.fit_check_intervals < 1:
            raise ValueError("fit_check_intervals must be at least 1")

    def _transient_spec(self) -> TransientSpec | None:
        """The effective injection spec (null specs act like None)."""
        return TransientSpec.effective(self.transients)

    # ------------------------------------------------------------ sampling
    def _points(self) -> dict[Mode, OperatingPoint]:
        points = dict(self.mode_points or {})
        for mode in (Mode.HP, Mode.ULE):
            points.setdefault(mode, operating_point_for(mode))
        return points

    def sample_maps(self) -> tuple[DieFaultMap, ...]:
        """The seeded die population (index-stable)."""
        points = self._points()
        return sample_population(
            self.chip.il1,
            self.chip.dl1,
            dies=self.dies,
            seed=self.seed,
            mode_vdds={
                mode: point.vdd for mode, point in points.items()
            },
        )

    def _yield_curve(self) -> tuple[tuple[float, float], ...]:
        """Sampled functional fraction per ULE supply (no simulation)."""
        curve = []
        for vdd in self.vdd_grid:
            maps = sample_population(
                self.chip.il1,
                self.chip.dl1,
                dies=self.dies,
                seed=self.seed,
                mode_vdds={Mode.ULE: vdd},
            )
            curve.append((vdd, functional_fraction(maps, Mode.ULE)))
        return tuple(curve)

    # ------------------------------------------------------------- running
    def run(
        self,
        session: SimulationSession | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> PopulationResult:
        """Sample the population, simulate it, reduce the distributions.

        All (die, benchmark, mode) jobs go through ``session.run_jobs``
        as one batch; ``progress(done, total)`` reports executed jobs
        (after dedup — a mostly-clean population executes few).
        """
        session = session or current_session()
        maps = self.sample_maps()
        points = self._points()

        jobs: list[SimulationJob] = []
        spans: list[tuple[int, DieFaultMap, int, int]] = []
        for die, die_map in enumerate(maps):
            start = len(jobs)
            jobs.extend(self._jobs_for(die_map, points))
            spans.append((die, die_map, start, len(jobs)))

        results = session.run_jobs(jobs, progress=progress)

        outcomes = tuple(
            DieOutcome(
                die=die,
                fault_map=die_map,
                metrics=self._reduce(results[start:stop]),
            )
            for die, die_map, start, stop in spans
        )
        spec = self._transient_spec()
        analytic_fit = sampled_fit = None
        if spec is not None:
            analytic_fit, sampled_fit = self._fit_cross_check(
                spec, points[Mode.ULE]
            )
        return PopulationResult(
            chip_name=self.chip.name,
            dies=self.dies,
            unique_maps=len(
                {die_map.content_digest() for die_map in maps}
            ),
            seed=self.seed,
            trace_length=self.trace_length,
            percentiles=tuple(self.percentiles),
            outcomes=outcomes,
            yield_curve=self._yield_curve(),
            sampled_yield=functional_fraction(maps, Mode.ULE),
            analytic_yield=self.analytic_yield,
            transient_metrics=(
                _TRANSIENT_METRICS if spec is not None else ()
            ),
            analytic_due_fit=analytic_fit,
            sampled_due_fit=sampled_fit,
        )

    def _fit_cross_check(
        self, spec: TransientSpec, point: OperatingPoint
    ) -> tuple[float, float]:
        """(analytic, sampled) uncorrectable FIT of both L1s at ULE.

        Both figures are at the spec's accelerated physics; the
        sampled one enumerates every (way, set, word, interval) draw
        over :attr:`fit_check_intervals` scrub intervals, so it
        converges on the analytic value with Monte Carlo error only —
        the acceptance contract ``tests/faults/test_population.py``
        pins with a documented tolerance.
        """
        from repro.transients.sampling import (
            analytic_cache_fit,
            make_sampler,
        )

        analytic = sampled = 0.0
        for label, config in zip(
            CACHE_LABELS, (self.chip.il1, self.chip.dl1)
        ):
            analytic += analytic_cache_fit(
                config, Mode.ULE, point.vdd, spec, accelerated=True
            )
            sampler = make_sampler(
                config, Mode.ULE, point, spec, label
            )
            sampled += sampler.sampled_cache_fit(
                self.fit_check_intervals
            )
        return analytic, sampled

    def _jobs_for(
        self,
        die_map: DieFaultMap,
        points: Mapping[Mode, OperatingPoint],
    ) -> list[SimulationJob]:
        """The (benchmark x mode) jobs of one die.

        A fault-free die ships ``fault_map=None`` so its jobs share
        keys — and cached results — with ordinary non-population runs.
        """
        fault_map = (
            None if die_map.is_fault_free else die_map.normalized()
        )
        transients = self._transient_spec()
        jobs = []
        for mode in (Mode.ULE, Mode.HP):
            for source in self._suite_sources(mode):
                jobs.append(
                    SimulationJob(
                        chip=self.chip,
                        trace=source.job_trace(),
                        mode=mode,
                        operating_point=points[mode],
                        fault_map=fault_map,
                        transients=transients,
                    )
                )
        return jobs

    def _suite_sources(self, mode: Mode):
        """This study's trace sources for one mode (memoized so mix
        suites interleave once per study, not once per die)."""
        memo = self.__dict__.setdefault("_suite_source_memo", {})
        if mode not in memo:
            memo[mode] = as_sources(
                suite_by_name(self.suite, mode),
                length=self.trace_length,
                seed=self.seed,
            )
        return memo[mode]

    def _reduce(
        self, results: Sequence[RunResult]
    ) -> dict[str, float]:
        """Per-die metrics from its runs (suite means per mode)."""
        metrics = suite_mode_metrics(results)
        if self._transient_spec() is not None:
            ule_runs = [r for r in results if r.mode is Mode.ULE]
            metrics.update(transient_run_metrics(ule_runs, "ule"))
        return metrics


def scenario_population_study(
    scenario: Scenario | str,
    chip: str = "proposed",
    dies: int = 100,
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH,
    seed: int = calibration.DEFAULT_SEED,
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    transients: TransientSpec | None = None,
    suite: str = "paper",
) -> PopulationStudy:
    """A study of one paper chip with its analytic-yield anchor."""
    scenario = Scenario(scenario) if isinstance(scenario, str) else scenario
    chips = cached_chips(scenario)
    design = cached_design(scenario)
    try:
        chosen = getattr(chips, chip)
    except AttributeError:
        raise ValueError(
            f"unknown chip {chip!r}; known: ['baseline', 'proposed']"
        ) from None
    analytic = (
        design.yield_proposed
        if chip == "proposed"
        else design.yield_baseline
    )
    return PopulationStudy(
        chip=chosen.config,
        dies=dies,
        trace_length=trace_length,
        seed=seed,
        percentiles=percentiles,
        analytic_yield=analytic,
        transients=transients,
        suite=suite,
    )
