"""The full chip: in-order core + IL1 + DL1 + core arrays + energy ledger.

:class:`Chip.run` is the reproduction's MPSim: it streams a trace through
the functional caches via the simulation engine
(:func:`repro.engine.backends.simulate_cache`), derives the cycle count
from the timing model, and prices every event with the CACTI-like energy
models — producing the energy-per-instruction (EPI) breakdowns of the
paper's Figures 3 and 4.

Memory energy is deliberately excluded, as in the paper ("we did not
include memory energy in our results"); memory *latency* is included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.cacti.model import CacheEnergyModel
from repro.cpu.arrays import CoreArrays
from repro.cpu.power import EnergyLedger
from repro.cpu.timing import TimingParams, TimingResult, compute_timing
from repro.cpu.trace import Trace
from repro.engine.backends import simulate_cache
from repro.tech.operating import Mode, OperatingPoint, operating_point_for
from repro.util.profiling import phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.maps import DieFaultMap
    from repro.transients.spec import TransientSpec


@dataclass(frozen=True)
class ChipConfig:
    """A complete chip configuration.

    Attributes:
        name: configuration label (e.g. "A-baseline").
        il1 / dl1: the L1 cache configurations.
        core_arrays: register file / TLB models (10T, shared design).
        core_logic_cap: effective switched capacitance of the core logic
            per instruction (F) — the Wattch-style lumped core model.
        core_leak_gates: equivalent minimum-gate count for core logic
            leakage.
        timing: pipeline timing constants.
    """

    name: str
    il1: CacheConfig
    dl1: CacheConfig
    core_arrays: CoreArrays
    core_logic_cap: float
    core_leak_gates: int
    timing: TimingParams = field(default_factory=TimingParams)


@dataclass(frozen=True)
class RunResult:
    """Everything measured in one benchmark run on one chip."""

    chip_name: str
    trace_name: str
    mode: Mode
    operating_point: OperatingPoint
    timing: TimingResult
    energy: EnergyLedger
    il1_stats: CacheStats
    dl1_stats: CacheStats

    @property
    def epi(self) -> float:
        """Energy per instruction (J)."""
        return self.energy.total / max(self.timing.instructions, 1)

    @property
    def execution_seconds(self) -> float:
        """Wall-clock run time at the operating point the run used.

        Uses the stored :attr:`operating_point` — an overridden point
        (e.g. the Vcc ablation's) changes the implied wall clock, not
        just the energy.
        """
        return self.operating_point.cycle_time * self.timing.cycles


def suite_mode_metrics(
    results,
    modes: tuple[tuple[Mode, str], ...] = (
        (Mode.ULE, "ule"),
        (Mode.HP, "hp"),
    ),
) -> dict[str, float]:
    """Suite-mean EPI and seconds-per-instruction per mode.

    The shared reduction of the exploration campaigns and population
    studies: results are grouped by their run mode and averaged into
    ``epi_<label>`` / ``spi_<label>`` entries.  Modes with no runs
    reduce to 0.0.
    """
    by_mode: dict[Mode, list[RunResult]] = {
        mode: [] for mode, _ in modes
    }
    for result in results:
        if result.mode in by_mode:
            by_mode[result.mode].append(result)
    metrics: dict[str, float] = {}
    for mode, label in modes:
        runs = by_mode[mode]
        metrics[f"epi_{label}"] = _mean(r.epi for r in runs)
        metrics[f"spi_{label}"] = _mean(
            r.execution_seconds / max(r.timing.instructions, 1)
            for r in runs
        )
    return metrics


def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


class Chip:
    """Executable model of one chip configuration."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.il1_model = CacheEnergyModel(config.il1)
        self.dl1_model = CacheEnergyModel(config.dl1)

    # ------------------------------------------------------------- running
    def run(
        self,
        trace: Trace,
        mode: Mode,
        operating_point: OperatingPoint | None = None,
        backend: str = "auto",
        fault_map: "DieFaultMap | None" = None,
        transients: "TransientSpec | None" = None,
        simulate=None,
    ) -> RunResult:
        """Execute a trace in ``mode`` and account time and energy.

        ``backend`` selects the functional simulation engine ("auto",
        "vectorized", "numba" or "reference"); all backends are
        bit-identical.
        ``fault_map`` applies one die's disabled-line map
        (:class:`repro.faults.maps.DieFaultMap`) to both L1 arrays; a
        fault-free map is byte-identical to passing None.
        ``transients`` enables soft-error injection
        (:class:`repro.transients.spec.TransientSpec`): read hits are
        classified through each array's sampler, refetch and
        correction stalls enter the cycle count, and refetch + scrub
        energy enter the ledger.  A *null* spec is byte-identical to
        passing None.
        ``simulate`` swaps the functional simulation entry point — a
        callable with :func:`repro.engine.backends.simulate_cache`'s
        signature.  The batching layer passes a wrapper that reuses
        per-trace plans and memoizes identical functional simulations
        across the jobs of a batch; everything downstream (timing,
        energy, the result record) is shared code, which is what keeps
        the batched path bit-identical to this per-job one.
        """
        op = operating_point or operating_point_for(mode)
        if op.mode is not mode:
            raise ValueError("operating point does not match mode")
        from repro.transients.spec import TransientSpec

        spec = TransientSpec.effective(transients)
        il1_sampler = dl1_sampler = None
        if spec is not None:
            from repro.transients.sampling import make_sampler

            il1_sampler = make_sampler(
                self.config.il1, mode, op, spec, "il1"
            )
            dl1_sampler = make_sampler(
                self.config.dl1, mode, op, spec, "dl1"
            )

        # Functional simulation: instruction fetches then data accesses.
        # Each cache names its replacement policy; non-LRU policies make
        # backend="auto" fall back to the reference model per cache.
        il1_disabled = (
            fault_map.disabled_for("il1", mode) if fault_map else ()
        )
        dl1_disabled = (
            fault_map.disabled_for("dl1", mode) if fault_map else ()
        )
        sim = simulate if simulate is not None else simulate_cache
        il1_stats = sim(
            self.config.il1, mode, trace.pc,
            policy=self.config.il1.replacement, backend=backend,
            disabled_lines=il1_disabled,
            transients=il1_sampler,
        )
        addresses, is_write = trace.memory_stream()
        dl1_stats = sim(
            self.config.dl1, mode, addresses, is_write,
            policy=self.config.dl1.replacement, backend=backend,
            disabled_lines=dl1_disabled,
            transients=dl1_sampler,
        )

        with phase("run.reduce"):
            recovery = 0.0
            if spec is not None:
                from repro.transients.recovery import recovery_cycles

                recovery = recovery_cycles(
                    self.config.il1, mode, il1_stats, spec,
                    self.config.timing.memory_latency_cycles,
                ) + recovery_cycles(
                    self.config.dl1, mode, dl1_stats, spec,
                    self.config.timing.memory_latency_cycles,
                )
            timing = compute_timing(
                trace.summary,
                il1_misses=il1_stats.misses,
                dl1_misses=dl1_stats.misses,
                il1_hit_latency=self.il1_model.hit_latency_cycles(op),
                dl1_hit_latency=self.dl1_model.hit_latency_cycles(op),
                params=self.config.timing,
                recovery_cycles=recovery,
            )
            energy = self._account_energy(
                trace, op, timing, il1_stats, dl1_stats, transients=spec
            )
            return RunResult(
                chip_name=self.config.name,
                trace_name=trace.name,
                mode=mode,
                operating_point=op,
                timing=timing,
                energy=energy,
                il1_stats=il1_stats,
                dl1_stats=dl1_stats,
            )

    # -------------------------------------------------------------- energy
    def _account_energy(
        self,
        trace: Trace,
        op: OperatingPoint,
        timing: TimingResult,
        il1_stats: CacheStats,
        dl1_stats: CacheStats,
        transients: "TransientSpec | None" = None,
    ) -> EnergyLedger:
        with phase("energy.account"):
            ledger = EnergyLedger()
            self._account_cache(
                ledger, "il1", self.il1_model, il1_stats, op
            )
            self._account_cache(
                ledger, "dl1", self.dl1_model, dl1_stats, op
            )

            seconds = timing.cycles * op.cycle_time
            if transients is not None:
                from repro.transients.recovery import (
                    account_transient_energy,
                )

                for label, model, stats in (
                    ("il1", self.il1_model, il1_stats),
                    ("dl1", self.dl1_model, dl1_stats),
                ):
                    account_transient_energy(
                        ledger, label, model, stats, op,
                        transients, seconds,
                    )
            for label, model in (
                ("il1", self.il1_model),
                ("dl1", self.dl1_model),
            ):
                leak = model.leakage_power(op)
                ledger.add(f"{label}.leakage", leak.array * seconds)
                ledger.add(f"{label}.edc.leakage", leak.edc * seconds)
                # Dynamic cell technologies pay retention refresh for as
                # long as the run holds state.  The component is created
                # only when nonzero, so all-SRAM ledgers stay
                # byte-identical to the pre-refresh model.
                refresh = model.refresh_power(op)
                if refresh > 0.0:
                    ledger.add(f"{label}.refresh", refresh * seconds)

            # Core: lumped logic plus the 10T arrays.
            summary = trace.summary
            logic = (
                summary.instructions
                * self.config.core_logic_cap
                * op.vdd
                * op.vdd
            )
            ledger.add("core.logic", logic)
            arrays = self.config.core_arrays
            ledger.add(
                "core.arrays.dynamic",
                arrays.dynamic_energy(
                    op,
                    instructions=summary.instructions,
                    memory_ops=summary.memory_ops,
                ),
            )
            ledger.add(
                "core.arrays.leakage", arrays.leakage_power(op) * seconds
            )
            ledger.add(
                "core.leakage",
                self._core_logic_leakage(op) * seconds,
            )
            return ledger

    def _core_logic_leakage(self, op: OperatingPoint) -> float:
        from repro.cacti.components import gate_leakage

        return self.config.core_leak_gates * gate_leakage(
            op.vdd, self.config.core_arrays.cell.node
        )

    def _account_cache(
        self,
        ledger: EnergyLedger,
        label: str,
        model: CacheEnergyModel,
        stats: CacheStats,
        op: OperatingPoint,
    ) -> None:
        probe_read = model.probe_read_energy(op)
        probe_write = model.probe_write_energy(op)
        ledger.add(f"{label}.dynamic", stats.reads * probe_read.array)
        ledger.add(f"{label}.edc", stats.reads * probe_read.edc)
        ledger.add(f"{label}.dynamic", stats.writes * probe_write.array)
        ledger.add(f"{label}.edc", stats.writes * probe_write.edc)

        for group_name in model.groups:
            read_hits = stats.group_read_hits.get(group_name, 0)
            write_hits = stats.group_write_hits.get(group_name, 0)
            fills = stats.group_fills.get(group_name, 0)
            writebacks = stats.group_writebacks.get(group_name, 0)
            events = (
                (read_hits, model.read_hit_extra_energy(group_name, op)),
                (write_hits, model.write_hit_energy(group_name, op)),
                (fills, model.fill_energy(group_name, op)),
                (writebacks, model.writeback_energy(group_name, op)),
            )
            for count, access in events:
                if count:
                    ledger.add(f"{label}.dynamic", count * access.array)
                    ledger.add(f"{label}.edc", count * access.edc)
