#!/usr/bin/env python3
"""Sensor-node day-in-the-life: hybrid ULE/HP operation with mode switches.

The paper's target device (Section I) monitors its environment at ULE
mode "99 % - 99.99 % of the time" and reacts to rare events with short HP
bursts.  This example runs exactly that phase pattern through the runtime
mode-scheduling subsystem (:mod:`repro.runtime`): a phased
monitoring+burst trace, a utilization-threshold policy that bursts to HP
when an epoch's working set overflows the ULE-mode cache, and a schedule
ledger that charges every HP-way flush and rail transition.  It reports
the battery-relevant outcome: average power and the projected lifetime on
a coin cell.

Usage::

    python examples/sensor_node_lifetime.py
"""

from repro.core import Scenario, build_chips, design_scenario
from repro.runtime import UtilizationThreshold, simulate_schedule
from repro.tech.operating import Mode
from repro.util.units import si
from repro.workloads import sensor_node_trace

#: A CR2032 coin cell: ~225 mAh at 3 V.
COIN_CELL_JOULES = 0.225 * 3600 * 3.0


def run_lifetime(
    monitor_length: int = 40_000,
    burst_length: int = 10_000,
    bursts: int = 4,
    seed: int = 2013,
    verbose: bool = True,
) -> dict[str, float]:
    """Schedule both scenario-A chips over the sensor-node trace.

    Returns a mapping with each chip's projected CR2032 lifetime in
    days plus the proposed/baseline extension factor — the quantities
    the examples smoke test pins against the library.
    """
    design = design_scenario(Scenario.A)
    chips = build_chips(design)
    trace = sensor_node_trace(
        monitor_length=monitor_length,
        burst_length=burst_length,
        bursts=bursts,
        seed=seed,
    )
    policy = UtilizationThreshold()  # HP when the ULE way overflows
    epoch_length = burst_length  # monitor phases span whole epochs

    if verbose:
        print(
            f"workload: {trace.name} ({len(trace)} instructions); "
            f"policy: {policy.describe()}\n"
        )
    results: dict[str, float] = {}
    for label, chip in (
        ("baseline (6T+10T)", chips.baseline),
        ("proposed (6T+8T+SECDED)", chips.proposed),
    ):
        schedule = simulate_schedule(
            chip, trace, policy, epoch_length=epoch_length
        )
        lifetime_days = (
            COIN_CELL_JOULES / schedule.average_power / 86_400
        )
        results[label] = lifetime_days
        if verbose:
            print(f"{label}")
            print(
                "  mode share         : "
                f"{100 * schedule.mode_share(Mode.ULE):.1f} % ULE / "
                f"{100 * schedule.mode_share(Mode.HP):.1f} % HP"
            )
            print(
                f"  mode switches      : {schedule.switches} "
                f"({si(schedule.transition_energy, 'J')} transition "
                "energy, "
                f"{sum(e.flush_writebacks for e in schedule.entries)} "
                "flushed dirty lines)"
            )
            print(
                "  average power      : "
                f"{si(schedule.average_power, 'W')}"
            )
            print(f"  CR2032 lifetime    : {lifetime_days:.0f} days")
            print()

    gain = (
        results["proposed (6T+8T+SECDED)"] / results["baseline (6T+10T)"]
    )
    results["extension"] = gain
    if verbose:
        print(f"battery-lifetime extension: {gain:.2f}x")
    return results


def main() -> None:
    run_lifetime()


if __name__ == "__main__":
    main()
