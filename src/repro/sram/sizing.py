"""Yield-driven bitcell sizing — step 1 of the paper's Fig. 2 methodology.

Two searches are provided:

* :func:`size_for_pf` — the smallest size factor at which a topology meets a
  target failure probability at a given supply (used to size the 6T cells at
  HP mode and the 10T cells at ULE mode: "size 10T bitcell to match the same
  hard bit failure rate (Pf) as 6T bitcells at HP mode");
* the incremental loop of Fig. 2 (start at minimum size, grow by the
  "minimal amount possible for the targeted technology" until the coded
  yield target is met) lives in :mod:`repro.core.methodology`, which calls
  :func:`minimal_size_step` for the increment.
"""

from __future__ import annotations

import math

from repro.sram.cells import CellTopology
from repro.sram.failure import CellFailureModel
from repro.tech.node import TechnologyNode, ptm32

#: Width quantization of the target technology: widths move in steps of 5 %
#: of wmin, the "minimal amount possible" of Fig. 2 step 5a.
_SIZE_STEP = 0.05

#: Safety bound for the searches; no realistic design exceeds this.
_MAX_SIZE = 64.0


def minimal_size_step(node: TechnologyNode | None = None) -> float:
    """The smallest width increment of the technology (as a size factor)."""
    del node  # single-node library; kept for interface symmetry
    return _SIZE_STEP


def quantize_size(size_factor: float) -> float:
    """Round a size factor up to the technology's width grid."""
    steps = math.ceil(round(size_factor / _SIZE_STEP, 9))
    return max(1.0, steps * _SIZE_STEP)


def size_for_pf(
    topology: CellTopology,
    vdd: float,
    pf_target: float,
    node: TechnologyNode | None = None,
) -> float:
    """Smallest quantized size factor with ``Pf <= pf_target`` at ``vdd``.

    Raises:
        ValueError: if the topology cannot function at ``vdd`` at all
            (write-ability floor) or if no size within the search bound
            reaches the target — both correspond to real design failures
            (e.g. trying to size a 6T cell for 350 mV).
    """
    if not 0.0 < pf_target < 1.0:
        raise ValueError("pf_target must be in (0, 1)")
    model = CellFailureModel(topology, node or ptm32())
    if not model.is_operable(vdd):
        raise ValueError(
            f"{topology.name} is not functional at {vdd:.3f} V "
            f"(floor {topology.vmin_functional:.2f} V)"
        )
    if model.pf(vdd, 1.0) <= pf_target:
        return 1.0

    # The margin model is monotone in size (beta ~ sqrt(size)), so solve
    # analytically and then snap up to the width grid, verifying.
    beta_min = model.beta(vdd, 1.0)
    if beta_min <= 0:
        raise ValueError(
            f"{topology.name} has no positive nominal margin at "
            f"{vdd:.3f} V; up-sizing cannot fix it"
        )
    from repro.sram.failure import beta_for_pf

    needed = beta_for_pf(pf_target)
    exact = (needed / beta_min) ** 2
    size = quantize_size(exact)
    while model.pf(vdd, size) > pf_target:
        size = round(size + _SIZE_STEP, 9)
        if size > _MAX_SIZE:
            raise ValueError(
                f"cannot reach Pf={pf_target:g} for {topology.name} "
                f"at {vdd:.3f} V within size {_MAX_SIZE}"
            )
    return size
