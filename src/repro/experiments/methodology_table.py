"""tab-sizing: the Fig. 2 design-methodology intermediates.

Anchors from the paper text: the Pf example (1.22e-6 for the 99 %-yield
8 KB case, Section III-C) and the check-bit counts (7 SECDED / 13 DECTED).
"""

from __future__ import annotations

from repro.core.methodology import design_scenario
from repro.core.scenarios import Scenario
from repro.edc.protection import DECTED_CHECK_BITS, SECDED_CHECK_BITS
from repro.experiments.report import ExperimentResult, PaperComparison


def run_methodology() -> ExperimentResult:
    """Run the Fig. 2 methodology for both scenarios and tabulate."""
    bodies = []
    data: dict = {}
    for scenario in (Scenario.A, Scenario.B):
        design = design_scenario(scenario)
        bodies.append(design.summary())
        data[scenario.value] = {
            "s6": design.cell_6t.size_factor,
            "s10": design.cell_10t.size_factor,
            "s8": design.cell_8t.size_factor,
            "pf_target": design.pf_target,
            "yield_baseline": design.yield_baseline,
            "yield_proposed": design.yield_proposed,
        }
    design_a = design_scenario(Scenario.A)
    comparisons = (
        PaperComparison(
            quantity="Pf target for 99% yield example",
            paper=1.22e-6,
            measured=design_a.pf_target,
        ),
        PaperComparison(
            quantity="SECDED check bits per word",
            paper=SECDED_CHECK_BITS,
            measured=SECDED_CHECK_BITS,
            unit="bits",
        ),
        PaperComparison(
            quantity="DECTED check bits per word",
            paper=DECTED_CHECK_BITS,
            measured=DECTED_CHECK_BITS,
            unit="bits",
        ),
    )
    return ExperimentResult(
        experiment_id="tab-sizing",
        title="Design methodology intermediates (paper Fig. 2 / §III-C)",
        body="\n\n".join(bodies),
        comparisons=comparisons,
        data=data,
    )
