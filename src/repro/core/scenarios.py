"""The paper's two evaluation scenarios (Section III-B).

Scenario A — the baseline cache has **no coding**:

    baseline : 6T + 10T            (10T sized for fault-free 350 mV)
    proposed : 6T + 8T + SECDED    (SECDED active at ULE mode only)

Scenario B — the baseline is **SECDED-protected everywhere** (soft
errors):

    baseline : 6T+SECDED + 10T+SECDED
    proposed : 6T+SECDED + 8T+DECTED   (DECTED at ULE; SECDED at HP)

In both scenarios only the proposed 8T way corrects *hard* faults inline,
so only it pays the +1 EDC cycle (at ULE mode).  The baselines' SECDED
handles rare soft errors and corrects lazily off the critical path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.edc.protection import ProtectionScheme
from repro.tech.operating import Mode


class Scenario(enum.Enum):
    """The two baseline-reliability scenarios of the paper."""

    A = "A"
    B = "B"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"scenario {self.value}"


@dataclass(frozen=True)
class ProtectionPlan:
    """Per-mode protection of one way class in one configuration."""

    hp: ProtectionScheme
    ule: ProtectionScheme

    def as_mapping(self) -> dict[Mode, ProtectionScheme]:
        """The plan as a mode -> scheme mapping."""
        return {Mode.HP: self.hp, Mode.ULE: self.ule}


@dataclass(frozen=True)
class ScenarioPlan:
    """The protection layout of baseline and proposed caches.

    ``*_hp_ways`` applies to the 6T HP ways (only powered at HP mode);
    ``*_ule_way`` to the ULE way (10T baseline, 8T proposed).
    """

    scenario: Scenario
    baseline_hp_ways: ProtectionPlan
    baseline_ule_way: ProtectionPlan
    proposed_hp_ways: ProtectionPlan
    proposed_ule_way: ProtectionPlan

    @property
    def proposed_ule_hard_budget(self) -> int:
        """Hard faults per word the proposed ULE way absorbs (Eq. 1)."""
        return self.proposed_ule_way.ule.hard_fault_budget


_PLANS = {
    Scenario.A: ScenarioPlan(
        scenario=Scenario.A,
        baseline_hp_ways=ProtectionPlan(
            hp=ProtectionScheme.NONE, ule=ProtectionScheme.NONE
        ),
        baseline_ule_way=ProtectionPlan(
            hp=ProtectionScheme.NONE, ule=ProtectionScheme.NONE
        ),
        proposed_hp_ways=ProtectionPlan(
            hp=ProtectionScheme.NONE, ule=ProtectionScheme.NONE
        ),
        proposed_ule_way=ProtectionPlan(
            hp=ProtectionScheme.NONE, ule=ProtectionScheme.SECDED
        ),
    ),
    Scenario.B: ScenarioPlan(
        scenario=Scenario.B,
        baseline_hp_ways=ProtectionPlan(
            hp=ProtectionScheme.SECDED, ule=ProtectionScheme.SECDED
        ),
        baseline_ule_way=ProtectionPlan(
            hp=ProtectionScheme.SECDED, ule=ProtectionScheme.SECDED
        ),
        proposed_hp_ways=ProtectionPlan(
            hp=ProtectionScheme.SECDED, ule=ProtectionScheme.SECDED
        ),
        proposed_ule_way=ProtectionPlan(
            hp=ProtectionScheme.SECDED, ule=ProtectionScheme.DECTED
        ),
    ),
}


def plan_for(scenario: Scenario) -> ScenarioPlan:
    """The protection plan of a scenario."""
    return _PLANS[scenario]
