"""The EPI evaluation pipeline behind the paper's Figures 3 and 4.

For one scenario and one operating mode, every benchmark of the mode's
suite is run on the baseline chip and on the proposed chip; results are
reported as EPI ratios and per-category breakdowns normalized to the
baseline — exactly the presentation of the paper's figures.

All runs are submitted as one batch through the simulation engine's
session (:mod:`repro.engine.session`), which deduplicates shared work,
memoizes results and — when the session is configured with ``jobs > 1``
— dispatches the independent (chip, benchmark) jobs across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core import calibration
from repro.core.architect import ScenarioChips, build_chips
from repro.core.methodology import DesignResult, design_scenario
from repro.core.scenarios import Scenario
from repro.cpu.chip import RunResult
from repro.cpu.trace import Trace
from repro.engine.jobs import SimulationJob, TraceSpec
from repro.engine.session import SimulationSession, current_session
from repro.tech.operating import Mode
from repro.util.tables import Table
from repro.workloads.mediabench import (
    BenchmarkSpec,
    benchmark_by_name,
    generate_trace,
)
from repro.workloads.suites import suite_for_mode


@dataclass(frozen=True)
class BenchmarkComparison:
    """Baseline vs proposed on one benchmark."""

    benchmark: str
    baseline: RunResult
    proposed: RunResult

    @property
    def epi_ratio(self) -> float:
        """Proposed EPI / baseline EPI (lower is better)."""
        return self.proposed.epi / self.baseline.epi

    @property
    def epi_saving(self) -> float:
        """Fractional EPI saving of the proposal."""
        return 1.0 - self.epi_ratio

    @property
    def exec_time_ratio(self) -> float:
        """Proposed cycles / baseline cycles."""
        return self.proposed.timing.cycles / self.baseline.timing.cycles

    def normalized_breakdown(self) -> dict[str, float]:
        """Proposed energy categories, normalized to the baseline total."""
        base_total = self.baseline.energy.total
        return {
            name: value / base_total
            for name, value in self.proposed.energy.categories().items()
        }

    def baseline_breakdown(self) -> dict[str, float]:
        """Baseline energy categories, normalized to the baseline total."""
        base_total = self.baseline.energy.total
        return {
            name: value / base_total
            for name, value in self.baseline.energy.categories().items()
        }


@dataclass(frozen=True)
class ScenarioEvaluation:
    """All benchmark comparisons of one (scenario, mode) experiment."""

    scenario: Scenario
    mode: Mode
    design: DesignResult
    rows: tuple[BenchmarkComparison, ...]

    @property
    def average_epi_ratio(self) -> float:
        """Arithmetic-mean EPI ratio over benchmarks (the paper's bar)."""
        return sum(r.epi_ratio for r in self.rows) / len(self.rows)

    @property
    def average_epi_saving(self) -> float:
        """Average fractional EPI saving."""
        return 1.0 - self.average_epi_ratio

    @property
    def average_exec_time_ratio(self) -> float:
        """Average execution-time ratio (proposed / baseline)."""
        return sum(r.exec_time_ratio for r in self.rows) / len(self.rows)

    def render(self) -> str:
        """ASCII table in the spirit of the paper's figure."""
        table = Table(
            [
                "benchmark",
                "EPI ratio",
                "saving %",
                "exec ratio",
                "il1 dyn",
                "dl1 dyn",
                "l1 leak",
                "edc",
                "core",
            ],
            title=(
                f"Scenario {self.scenario.value} @ {self.mode} — "
                "normalized EPI (baseline = 1.0)"
            ),
        )
        for row in self.rows:
            breakdown = row.normalized_breakdown()
            table.add_row(
                [
                    row.benchmark,
                    row.epi_ratio,
                    100.0 * row.epi_saving,
                    row.exec_time_ratio,
                    breakdown["il1 dynamic"],
                    breakdown["dl1 dynamic"],
                    breakdown["l1 leakage"],
                    breakdown["edc"],
                    breakdown["core"],
                ]
            )
        table.add_separator()
        table.add_row(
            [
                "average",
                self.average_epi_ratio,
                100.0 * self.average_epi_saving,
                self.average_exec_time_ratio,
                "",
                "",
                "",
                "",
                "",
            ]
        )
        return table.render()


@lru_cache(maxsize=None)
def cached_design(scenario: Scenario) -> DesignResult:
    """The memoized paper-default design of a scenario."""
    return design_scenario(scenario)


@lru_cache(maxsize=None)
def cached_chips(scenario: Scenario) -> ScenarioChips:
    """The memoized paper-default chips of a scenario."""
    return build_chips(cached_design(scenario))


# Backwards-compatible private aliases (used before the rename).
_cached_design = cached_design
_cached_chips = cached_chips


def _trace_handle(
    spec: BenchmarkSpec, trace_length: int, seed: int
) -> TraceSpec | Trace:
    """A job-ready trace reference for one benchmark.

    Registered benchmarks travel as symbolic :class:`TraceSpec`\\ s (so
    worker processes regenerate — and memoize — them locally); ad-hoc
    specs are generated here and embedded in the job.
    """
    try:
        registered = benchmark_by_name(spec.name) is spec
    except ValueError:
        registered = False
    if registered:
        return TraceSpec(spec.name, trace_length, seed)
    return generate_trace(spec, length=trace_length, seed=seed)


def evaluate_scenario(
    scenario: Scenario,
    mode: Mode,
    benchmarks: tuple[BenchmarkSpec, ...] | None = None,
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH,
    seed: int = calibration.DEFAULT_SEED,
    chips: ScenarioChips | None = None,
    design: DesignResult | None = None,
    operating_point=None,
    session: SimulationSession | None = None,
) -> ScenarioEvaluation:
    """Run the paper's comparison for one scenario at one mode.

    Defaults follow the paper: SmallBench at ULE mode, BigBench at HP
    mode, the designed 7+1 8 KB caches at the published operating points;
    ``operating_point`` overrides the latter (used by the Vcc ablation).

    All (chip, benchmark) runs are submitted as one batch through
    ``session`` (default: the current engine session).  Note that jobs
    carry the chips' *configurations*: workers rebuild ``Chip`` objects
    from config, so everything that shapes the results must live in the
    ``ChipConfig`` — per-instance mutations of a passed ``chips`` pair
    (or ``Chip`` subclass overrides) do not travel.  Sessions also
    memoize results by job content across calls; after changing model
    behaviour at runtime (monkeypatching), clear the session
    (``session.clear_memo()`` /
    :func:`repro.engine.session.reset_default_session`).
    """
    design = design or cached_design(scenario)
    chips = chips or (
        cached_chips(scenario) if design is cached_design(scenario)
        else build_chips(design)
    )
    benchmarks = benchmarks or suite_for_mode(mode)
    session = session or current_session()

    jobs = []
    for spec in benchmarks:
        handle = _trace_handle(spec, trace_length, seed)
        for chip in chips.pair():
            jobs.append(
                SimulationJob(
                    chip=chip.config,
                    trace=handle,
                    mode=mode,
                    operating_point=operating_point,
                )
            )
    results = session.run_jobs(jobs)

    rows = []
    for position, spec in enumerate(benchmarks):
        baseline, proposed = results[2 * position], results[2 * position + 1]
        rows.append(
            BenchmarkComparison(
                benchmark=spec.name, baseline=baseline, proposed=proposed
            )
        )
    return ScenarioEvaluation(
        scenario=scenario, mode=mode, design=design, rows=tuple(rows)
    )
