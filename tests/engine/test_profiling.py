"""Phase profiling: no-op when inactive, accurate accounting when on."""

from repro.core.evaluation import evaluate_scenario
from repro.core.scenarios import Scenario
from repro.tech.operating import Mode
from repro.util.profiling import active_profiler, phase, profiled


class TestProfiler:
    def test_inactive_phase_is_noop(self):
        assert active_profiler() is None
        with phase("anything"):
            pass
        assert active_profiler() is None

    def test_records_phases(self):
        with profiled() as profiler:
            with phase("alpha"):
                pass
            with phase("alpha"):
                pass
            with phase("beta"):
                pass
        assert profiler.phases["alpha"].calls == 2
        assert profiler.phases["beta"].calls == 1
        assert profiler.phases["alpha"].seconds >= 0.0

    def test_nested_profilers_restore(self):
        with profiled() as outer:
            with profiled() as inner:
                with phase("inner-only"):
                    pass
            with phase("outer-only"):
                pass
        assert "inner-only" in inner.phases
        assert "inner-only" not in outer.phases
        assert "outer-only" in outer.phases

    def test_render_lists_phases(self):
        with profiled() as profiler:
            with phase("simulate"):
                pass
        rendered = profiler.render()
        assert "simulate" in rendered
        assert "wall" in rendered

    def test_pipeline_phases_show_up(self, chips_a, design_a):
        """An end-to-end evaluation populates the canonical phases."""
        from repro.engine.session import SimulationSession, use_session

        # Fresh session and an odd trace length: nothing memoized, every
        # stage actually executes under the profiler.
        with profiled() as profiler, use_session(SimulationSession()):
            evaluate_scenario(
                Scenario.A,
                Mode.ULE,
                trace_length=2_347,
                chips=chips_a,
                design=design_a,
            )
        assert "trace.generate" in profiler.phases
        assert "simulate.vectorized" in profiler.phases
        assert "energy.account" in profiler.phases
        assert "jobs.execute" in profiler.phases

    def test_batch_stage_phases_show_up(self, chips_a):
        """The batched path accounts its stages separately: plan build,
        kernel time and the per-job reduction tail."""
        from repro.engine.batch import execute_group
        from repro.engine.jobs import SimulationJob, TraceSpec

        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=TraceSpec("adpcm_c", 2_347, 42),
                mode=Mode.ULE,
            )
        ]
        with profiled() as profiler:
            execute_group(jobs)
        assert "batch.plan" in profiler.phases
        assert "batch.kernel" in profiler.phases
        assert "run.reduce" in profiler.phases
        assert "jobs.execute" in profiler.phases
