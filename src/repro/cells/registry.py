"""Name-keyed registry of cell technologies.

Design-space axes, the CLI and the experiment drivers name bitcells by
short strings ("8T", "EDRAM", ...); this registry is the single place
those names resolve to :class:`repro.cells.CellTechnology` objects.
The three SRAM topologies register alongside the dynamic technologies,
so a sweep axis can mix them freely and the Fig. 2 methodology sizes
whichever arrives.

Adding a technology is two steps (see docs/cells.md): implement the
protocol, then :func:`register_technology` it — everything downstream
(sweeps, schedules, population studies, the sustainability ledger)
picks it up through the name.
"""

from __future__ import annotations

from repro.cells.edram import EDRAM_1T1C
from repro.cells.gain import GAIN_2T
from repro.cells.protocol import CellTechnology
from repro.sram.cells import CELL_6T, CELL_8T, CELL_10T

_TECHNOLOGIES: dict[str, CellTechnology] = {
    "6T": CELL_6T,
    "8T": CELL_8T,
    "10T": CELL_10T,
    "EDRAM": EDRAM_1T1C,
    "GAIN": GAIN_2T,
}

#: Technologies whose minimum-size ULE-mode failure rates are so high
#: that only a hard-fault-correcting EDC scheme makes their yield target
#: reachable (the sizing loop diverges otherwise): the read-decoupled 8T
#: and both dynamic cells.  6T never runs at ULE and the Schmitt-trigger
#: 10T is the uncoded baseline.
_NEEDS_HARD_FAULT_CODING = frozenset({"8T", "EDRAM", "GAIN"})


def technology_by_name(name: str) -> CellTechnology:
    """Look up a registered technology by name (case-insensitive)."""
    try:
        return _TECHNOLOGIES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown cell technology {name!r}; "
            f"choose from {sorted(_TECHNOLOGIES)}"
        ) from None


def registered_technologies() -> tuple[str, ...]:
    """Sorted names of every registered technology."""
    return tuple(sorted(_TECHNOLOGIES))


def register_technology(name: str, technology: CellTechnology) -> None:
    """Register a new cell technology under ``name``.

    Raises:
        ValueError: if the name is taken or the object does not satisfy
            the :class:`repro.cells.CellTechnology` protocol.
    """
    key = name.upper()
    if key in _TECHNOLOGIES:
        raise ValueError(f"technology {key!r} is already registered")
    if not isinstance(technology, CellTechnology):
        raise ValueError(
            f"{technology!r} does not implement the CellTechnology protocol"
        )
    _TECHNOLOGIES[key] = technology


def requires_hard_fault_coding(name: str) -> bool:
    """Whether a ULE way of this technology needs a correcting EDC code."""
    return name.upper() in _NEEDS_HARD_FAULT_CODING
