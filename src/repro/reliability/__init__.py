"""Reliability analysis: the paper's yield equations, fault maps, soft errors.

* :mod:`repro.reliability.yield_model` — Eq. (1) and (2) of the paper:
  word-level survival probability under a correctable-fault budget and
  whole-cache yield, plus the paper's linearized Pf-target example;
* :mod:`repro.reliability.fault_maps` — concrete stuck-at hard-fault maps
  for simulation (Monte Carlo validation of the analytic yield);
* :mod:`repro.reliability.soft_errors` — particle-strike upset model used
  to reason about scenario B (SECDED/DECTED soft-error budgets).
"""

from repro.reliability.yield_model import (
    WordOrganization,
    cache_yield,
    exact_pf_for_yield,
    paper_pf_target,
    word_survival_probability,
)
from repro.reliability.fault_maps import FaultMap, generate_fault_map
from repro.reliability.soft_errors import SoftErrorModel, poisson_pmf

__all__ = [
    "poisson_pmf",
    "word_survival_probability",
    "cache_yield",
    "paper_pf_target",
    "exact_pf_for_yield",
    "WordOrganization",
    "FaultMap",
    "generate_fault_map",
    "SoftErrorModel",
]
