"""Tests for the gate-level codec cost model (HSPICE substitute)."""

import pytest

from repro.edc.bch import BchCode
from repro.edc.circuits import CodecCircuit, circuit_for_code
from repro.edc.dected import DectedCode
from repro.edc.hsiao import HsiaoSecDed
from repro.edc.parity import ParityCode
from repro.tech.operating import HP_OPERATING_POINT, ULE_OPERATING_POINT


class TestCircuitConstruction:
    def test_all_codecs_have_models(self):
        for code in (
            HsiaoSecDed(32, check_bits=7),
            DectedCode(32),
            BchCode(32, t=2),
            ParityCode(32),
        ):
            circuit = circuit_for_code(code)
            assert circuit.encoder_gates > 0
            assert circuit.decoder_gates > 0
            assert circuit.decoder_depth >= circuit.encoder_depth

    def test_unknown_code_rejected(self):
        class FakeCode:
            pass

        with pytest.raises(TypeError):
            circuit_for_code(FakeCode())  # type: ignore[arg-type]

    def test_dected_much_bigger_than_secded(self):
        """Real DECTED decoders (Chien search) dwarf SECDED — the
        mechanism behind scenario B's smaller savings."""
        secded = circuit_for_code(HsiaoSecDed(32, check_bits=7))
        dected = circuit_for_code(DectedCode(32))
        assert dected.decoder_gates > 4 * secded.decoder_gates


class TestEnergyAndDelay:
    def test_energy_scales_with_vdd_squared(self):
        circuit = circuit_for_code(HsiaoSecDed(32, check_bits=7))
        ratio = circuit.decode_energy(1.0) / circuit.decode_energy(0.5)
        assert ratio == pytest.approx(4.0)

    def test_decode_fits_ule_cycle(self):
        """The +1-cycle architecture choice is feasible: even the DECTED
        decoder settles well inside one 200 ns ULE cycle."""
        circuit = circuit_for_code(DectedCode(32))
        assert circuit.decode_delay(ULE_OPERATING_POINT.vdd) < (
            ULE_OPERATING_POINT.cycle_time / 4
        )

    def test_codec_energy_small_vs_array(self, design_a):
        """EDC energy must be a fraction of an array access, or the
        paper's savings could not survive the codec overhead."""
        from repro.cacti.array import SramArray

        array = SramArray(rows=32, cols=312, cell=design_a.cell_8t)
        access = array.read_energy(0.35)
        decode = circuit_for_code(HsiaoSecDed(32, check_bits=7)).decode_energy(
            0.35
        )
        assert decode < access / 5

    def test_leakage_positive_and_voltage_monotone(self):
        circuit = circuit_for_code(DectedCode(32))
        low = circuit.leakage_power(ULE_OPERATING_POINT.vdd)
        high = circuit.leakage_power(HP_OPERATING_POINT.vdd)
        assert 0 < low < high

    def test_total_gates(self):
        circuit = circuit_for_code(ParityCode(8))
        assert circuit.total_gates == (
            circuit.encoder_gates + circuit.decoder_gates
        )
