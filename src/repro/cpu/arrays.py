"""Non-L1 SRAM structures of the core: register file and TLBs.

"All SRAM arrays except L1 caches have been implemented using 10T cells so
they operate properly at any voltage level considered" (Section IV-A.3).
These structures are identical in every compared configuration, so they
contribute the same absolute energy to baseline and proposed chips — but
they must be present for the *normalized* savings to come out right.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.cacti.array import SramArray
from repro.cells import SizedCell
from repro.tech.operating import OperatingPoint


@dataclass(frozen=True)
class CoreArrays:
    """Register file + I/D TLBs built from (NST-sized) 10T cells.

    Attributes:
        cell: the 10T cell design (sized for ULE-mode reliability).
        rf_entries / rf_bits: register file geometry (32 x 32 default).
        tlb_entries / tlb_bits: per-TLB geometry (32 entries of VPN+PPN
            + flags, ~52 bits).
        rf_reads_per_instr / rf_writes_per_instr: average port activity.
    """

    cell: SizedCell
    rf_entries: int = 32
    rf_bits: int = 32
    tlb_entries: int = 16
    tlb_bits: int = 52
    rf_reads_per_instr: float = 1.6
    rf_writes_per_instr: float = 0.7

    @cached_property
    def register_file(self) -> SramArray:
        """The architectural register file array."""
        return SramArray(
            rows=self.rf_entries, cols=self.rf_bits, cell=self.cell
        )

    @cached_property
    def itlb(self) -> SramArray:
        """The instruction TLB array."""
        return SramArray(
            rows=self.tlb_entries, cols=self.tlb_bits, cell=self.cell
        )

    @cached_property
    def dtlb(self) -> SramArray:
        """The data TLB array."""
        return SramArray(
            rows=self.tlb_entries, cols=self.tlb_bits, cell=self.cell
        )

    def dynamic_energy(
        self,
        op: OperatingPoint,
        instructions: int,
        memory_ops: int,
    ) -> float:
        """Array switching energy over a run (J).

        Every instruction exercises the register file and the ITLB; every
        memory operation additionally exercises the DTLB.
        """
        if instructions < 0 or memory_ops < 0:
            raise ValueError("counts must be non-negative")
        rf = self.register_file
        per_instr = (
            self.rf_reads_per_instr
            * rf.read_energy(op.vdd, out_bits=self.rf_bits)
            + self.rf_writes_per_instr * rf.write_energy(op.vdd)
            + self.itlb.read_energy(op.vdd, out_bits=24)
        )
        per_memop = self.dtlb.read_energy(op.vdd, out_bits=24)
        return instructions * per_instr + memory_ops * per_memop

    def leakage_power(self, op: OperatingPoint) -> float:
        """Static power of all core arrays (W)."""
        return (
            self.register_file.leakage_power(op.vdd)
            + self.itlb.leakage_power(op.vdd)
            + self.dtlb.leakage_power(op.vdd)
        )
