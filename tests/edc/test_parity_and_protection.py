"""Tests for the parity code and the protection-scheme factory."""

import pytest

from repro.edc.base import DecodeStatus
from repro.edc.dected import DectedCode
from repro.edc.hsiao import HsiaoSecDed
from repro.edc.parity import ParityCode
from repro.edc.protection import (
    DECTED_CHECK_BITS,
    SECDED_CHECK_BITS,
    ProtectionScheme,
    check_bits_for,
    make_code,
)


class TestParityCode:
    def test_roundtrip(self):
        code = ParityCode(8)
        for data in range(256):
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    def test_single_errors_detected(self):
        code = ParityCode(8)
        codeword = code.encode(0b10110011)
        for position in range(code.n):
            result = code.decode(codeword ^ (1 << position))
            assert result.status is DecodeStatus.DETECTED

    def test_double_errors_invisible(self):
        """Parity's known blind spot, kept honest in the model."""
        code = ParityCode(8)
        codeword = code.encode(0x5A)
        assert code.decode(codeword ^ 0b11).status is DecodeStatus.CLEAN

    def test_bad_width(self):
        with pytest.raises(ValueError):
            ParityCode(0)


class TestProtectionFactory:
    def test_none_scheme(self):
        assert make_code(ProtectionScheme.NONE, 32) is None
        assert check_bits_for(ProtectionScheme.NONE, 32) == 0

    def test_paper_check_bits(self):
        """Section III-C: 7 bits for SECDED, 13 for DECTED."""
        assert SECDED_CHECK_BITS == 7
        assert DECTED_CHECK_BITS == 13
        for bits in (26, 32):
            assert check_bits_for(ProtectionScheme.SECDED, bits) == 7
            assert check_bits_for(ProtectionScheme.DECTED, bits) == 13

    def test_factory_types(self):
        assert isinstance(make_code(ProtectionScheme.SECDED, 32), HsiaoSecDed)
        assert isinstance(make_code(ProtectionScheme.DECTED, 32), DectedCode)
        assert isinstance(make_code(ProtectionScheme.PARITY, 32), ParityCode)

    def test_factory_cached(self):
        a = make_code(ProtectionScheme.SECDED, 32)
        b = make_code(ProtectionScheme.SECDED, 32)
        assert a is b

    def test_hard_fault_budget(self):
        """Eq. (1)'s i_max: 1 for SECDED and DECTED (one correction is
        reserved for soft errors in scenario B), 0 otherwise."""
        assert ProtectionScheme.SECDED.hard_fault_budget == 1
        assert ProtectionScheme.DECTED.hard_fault_budget == 1
        assert ProtectionScheme.NONE.hard_fault_budget == 0
        assert ProtectionScheme.PARITY.hard_fault_budget == 0

    def test_geometry_consistency(self):
        for scheme in (ProtectionScheme.SECDED, ProtectionScheme.DECTED):
            for bits in (26, 32):
                code = make_code(scheme, bits)
                assert code.k == bits
                assert code.check_bits == check_bits_for(scheme, bits)
