"""Tests for the mode-transition cost model."""

import pytest

from repro.core.transitions import ModeTransitionModel, TransitionCost


@pytest.fixture()
def model_a(chips_a) -> ModeTransitionModel:
    return ModeTransitionModel(chips_a.proposed.il1_model)


@pytest.fixture()
def model_baseline(chips_a) -> ModeTransitionModel:
    return ModeTransitionModel(chips_a.baseline.il1_model)


class TestHpToUle:
    def test_components_positive(self, model_a):
        cost = model_a.hp_to_ule(
            dirty_hp_lines=50, valid_ule_lines=32, reencode_needed=True
        )
        assert cost.flush_energy > 0
        assert cost.reencode_energy > 0
        assert cost.gating_energy > 0
        assert cost.total_energy == pytest.approx(
            cost.flush_energy + cost.reencode_energy + cost.gating_energy
        )
        assert cost.cycles > 50

    def test_scales_with_dirty_lines(self, model_a):
        few = model_a.hp_to_ule(10, 0, False)
        many = model_a.hp_to_ule(100, 0, False)
        assert many.flush_energy == pytest.approx(
            10 * few.flush_energy
        )

    def test_no_reencode_for_format_stable_configs(self, model_a):
        cost = model_a.hp_to_ule(
            dirty_hp_lines=10, valid_ule_lines=32, reencode_needed=False
        )
        assert cost.reencode_energy == 0.0

    def test_baseline_never_reencodes(self, model_baseline):
        cost = model_baseline.hp_to_ule(
            dirty_hp_lines=10, valid_ule_lines=32, reencode_needed=False
        )
        assert cost.reencode_energy == 0.0

    def test_validation(self, model_a):
        with pytest.raises(ValueError):
            model_a.hp_to_ule(-1, 0, False)


class TestUleToHp:
    def test_only_gating(self, model_a):
        cost = model_a.ule_to_hp()
        assert cost.flush_energy == 0.0
        assert cost.reencode_energy == 0.0
        assert cost.gating_energy > 0
        assert cost.direction == "ULE->HP"


class TestAmortization:
    def test_negligible_against_phase(self, model_a, chips_a, small_trace):
        from repro.tech.operating import Mode

        phase = chips_a.proposed.run(small_trace, Mode.ULE)
        cost = model_a.hp_to_ule(56, 32, True)
        fraction = model_a.amortized_fraction(cost, phase.energy.total)
        assert fraction < 0.05  # the paper's 'negligible' claim

    def test_validation(self, model_a):
        cost = TransitionCost("x", 0, 0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model_a.amortized_fraction(cost, 0.0)


class TestExperimentDriver:
    def test_modeswitch_experiment(self):
        from repro.experiments import run_experiment

        result = run_experiment("tab-modeswitch", trace_length=6_000)
        for scenario in ("A", "B"):
            assert result.data[scenario]["overhead"] < 0.05
        assert result.data["A"]["switch_energy"] > (
            result.data["B"]["switch_energy"]
        )
