"""Tests for repro.cells.registry."""

import pytest

from repro.cells import (
    CELL_8T,
    EDRAM_1T1C,
    GAIN_2T,
    registered_technologies,
    requires_hard_fault_coding,
    technology_by_name,
)
from repro.cells import registry as registry_module


class TestLookup:
    def test_all_five_register(self):
        assert registered_technologies() == (
            "10T", "6T", "8T", "EDRAM", "GAIN"
        )

    def test_lookup_is_case_insensitive(self):
        assert technology_by_name("edram") is EDRAM_1T1C
        assert technology_by_name("Gain") is GAIN_2T
        assert technology_by_name("8t") is CELL_8T

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown cell technology"):
            technology_by_name("FERAM")

    def test_hard_fault_coding_requirements(self):
        assert requires_hard_fault_coding("8T")
        assert requires_hard_fault_coding("edram")
        assert requires_hard_fault_coding("GAIN")
        assert not requires_hard_fault_coding("6T")
        assert not requires_hard_fault_coding("10T")


class TestRegister:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry_module.register_technology("8T", EDRAM_1T1C)

    def test_nonconforming_object_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            registry_module.register_technology("BROKEN", object())

    def test_new_technology_resolves_by_name(self):
        registry_module.register_technology("EDRAM2", EDRAM_1T1C)
        try:
            assert technology_by_name("edram2") is EDRAM_1T1C
            assert "EDRAM2" in registered_technologies()
        finally:
            del registry_module._TECHNOLOGIES["EDRAM2"]
