"""Multi-tenant simulation scheduler: quotas, fairness, backpressure.

The :class:`ServiceScheduler` sits between the service front end and
the engine.  Clients submit batches of :class:`~repro.engine.jobs.
SimulationJob`\\ s attributed to a *tenant*; for every job the scheduler
decides, under one lock, exactly one of:

``done``
    The result is already known — in-memory memo or the shared
    :class:`~repro.service.store.ShardedResultStore` — and is served
    immediately.  This path is checked **before** any capacity check,
    which is the graceful-degradation contract: a saturated service
    still answers everything it has already computed.
``attached``
    An identical job (same content-hash key) is already queued or
    running for some tenant; this tenant is attached to it and will
    receive the same result.  Cross-tenant dedup costs nothing and is
    never sheddable.
``queued``
    New work, admitted into the bounded weighted-fair queue
    (:class:`~repro.service.queue.WeightedFairQueue`).
``shed``
    New work, rejected with a *typed* backpressure ticket — reason
    ``"quota"`` (this tenant already owns its full share of
    outstanding work) or ``"saturated"`` (the bounded queue is full) —
    carrying a ``retry_after`` hint.  Shedding happens only on these
    two conditions, pinned by the property tests.

Execution runs on worker threads (``workers`` bounds in-flight
simulations); a failed execution is retried with exponential backoff up
to ``max_retries`` times before the job is marked ``failed``.  Results
are published to the shared store *before* the job is marked done, so
a crash between the two never yields a torn entry — and a partial
result is unrepresentable: :meth:`ServiceScheduler.result` only returns
fully published :class:`~repro.cpu.chip.RunResult` objects.

For deterministic tests the scheduler also runs with ``workers=0``:
nothing executes in the background and :meth:`run_next` pumps one
queued job at a time under an injectable clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.cpu.chip import RunResult
from repro.engine.jobs import SimulationJob, execute_job, job_key
from repro.service.queue import WeightedFairQueue
from repro.service.store import ShardedResultStore

#: Ticket / entry states surfaced to clients.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
SHED = "shed"
ATTACHED = "attached"

#: Typed shed reasons.
REASON_SATURATED = "saturated"
REASON_QUOTA = "quota"


class ResultNotReady(LookupError):
    """A result was requested for a job that is not ``done``.

    Carries the job's current state so callers (and the HTTP layer)
    can distinguish "still running" from "failed" — but never receive
    a partial :class:`~repro.cpu.chip.RunResult`.
    """

    def __init__(self, key: str, state: str):
        super().__init__(f"job {key[:12]}… is {state}, not done")
        self.key = key
        self.state = state


@dataclass(frozen=True)
class Ticket:
    """Per-job outcome of one submit call.

    Attributes:
        key: the job's content-hash key (:func:`repro.engine.jobs.job_key`).
        state: ``done`` | ``queued`` | ``attached`` | ``shed``.
        reason: for ``shed`` tickets, ``"quota"`` or ``"saturated"``.
        retry_after: for ``shed`` tickets, the suggested delay in
            seconds before resubmitting.
    """

    key: str
    state: str
    reason: str | None = None
    retry_after: float | None = None

    def to_dict(self) -> dict:
        """The JSON-able wire form of the ticket."""
        payload: dict = {"key": self.key, "state": self.state}
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        return payload


@dataclass
class SchedulerStats:
    """Where every submitted job went, and what execution cost.

    ``dedup_fraction`` is the share of submissions that never reached
    the execution queue because the scheduler already knew the answer
    (memo / shared store) or the work was already in flight — the
    number the fleet-scale cross-client dedup acceptance test measures.
    """

    submitted: int = 0
    served_memo: int = 0
    served_store: int = 0
    attached: int = 0
    queued: int = 0
    executed: int = 0
    retried: int = 0
    failed: int = 0
    shed_saturated: int = 0
    shed_quota: int = 0

    @property
    def dedup_fraction(self) -> float:
        """Deduplicated submissions as a share of all submissions."""
        if not self.submitted:
            return 0.0
        saved = self.served_memo + self.served_store + self.attached
        return saved / self.submitted

    def to_dict(self) -> dict:
        """The JSON-able wire form of the counters."""
        return {
            "submitted": self.submitted,
            "served_memo": self.served_memo,
            "served_store": self.served_store,
            "attached": self.attached,
            "queued": self.queued,
            "executed": self.executed,
            "retried": self.retried,
            "failed": self.failed,
            "shed_saturated": self.shed_saturated,
            "shed_quota": self.shed_quota,
            "dedup_fraction": self.dedup_fraction,
        }


@dataclass
class _Entry:
    """Internal per-key execution record."""

    key: str
    job: SimulationJob
    owner: str
    state: str = QUEUED
    attempts: int = 0
    error: str | None = None
    result: RunResult | None = None
    tenants: set[str] = field(default_factory=set)
    done_event: threading.Event = field(default_factory=threading.Event)


class ServiceScheduler:
    """Fair, quota-bounded, failure-tolerant executor of engine jobs.

    Parameters
    ----------
    store : ShardedResultStore, optional
        Shared result store; results found here are served without
        executing, and every executed result is published to it before
        the job is marked done.  None keeps results in memory only.
    workers : int
        Background worker threads (the in-flight execution bound).
        0 disables background execution — tests drive the queue
        deterministically with :meth:`run_next`.
    backend : str
        Engine backend for executed jobs (bit-identical by contract).
    queue_capacity : int
        Bound of the admission queue; submissions beyond it shed with
        reason ``"saturated"``.
    tenant_quota : int, optional
        Maximum *outstanding* (queued or running) jobs a single tenant
        may own; submissions beyond it shed with reason ``"quota"``.
        Attached (deduplicated) jobs never count against a quota.
    weights : mapping, optional
        Per-tenant fair-share weights (default 1.0 each).
    max_retries : int
        Executions retried after a failure before marking ``failed``.
    backoff_base : float
        First retry delay in seconds; doubles per attempt.
    retry_after : float
        The hint carried by shed tickets.
    execute : callable, optional
        Replacement for :func:`repro.engine.jobs.execute_job` — the
        fault-injection seam the failure tests use.
    clock : callable
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        store: ShardedResultStore | None = None,
        *,
        workers: int = 2,
        backend: str = "auto",
        queue_capacity: int = 256,
        tenant_quota: int | None = None,
        weights: Mapping[str, float] | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        retry_after: float = 0.25,
        execute: Callable[[SimulationJob], RunResult] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1 (or None)")
        self.store = store
        self.workers = workers
        self.backend = backend
        self.tenant_quota = tenant_quota
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.retry_after = retry_after
        self.stats = SchedulerStats()
        self._execute = execute or (
            lambda job: execute_job(job, backend=backend)
        )
        self._clock = clock
        self._queue = WeightedFairQueue(capacity=queue_capacity)
        for tenant, weight in (weights or {}).items():
            self._queue.set_weight(tenant, weight)
        self._entries: dict[str, _Entry] = {}
        self._outstanding: dict[str, int] = {}
        self._delayed: list[tuple[float, int, str, str]] = []
        self._delayed_seq = 0
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._running = False

    # --------------------------------------------------------- lifecycle
    def start(self) -> "ServiceScheduler":
        """Start the background worker threads (no-op when 0)."""
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Stop the workers (idempotent; queued work stays queued)."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "ServiceScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ submit
    def submit(
        self, tenant: str, jobs: Sequence[SimulationJob]
    ) -> list[Ticket]:
        """Admit a batch for a tenant, one typed ticket per job.

        Known results (memo or shared store) are served as ``done``
        even when the queue is saturated; identical in-flight work is
        joined as ``attached``; only genuinely *new* work is subject to
        the tenant quota and the bounded queue, shedding with a typed
        reason + retry-after when either is exhausted.
        """
        tickets = []
        with self._cond:
            for job in jobs:
                tickets.append(self._admit(tenant, job))
            self._cond.notify_all()
        return tickets

    def _admit(self, tenant: str, job: SimulationJob) -> Ticket:
        """Decide one job's fate (caller holds the lock)."""
        key = job_key(job)
        self.stats.submitted += 1
        entry = self._entries.get(key)
        if entry is not None and entry.state == DONE:
            self.stats.served_memo += 1
            return Ticket(key=key, state=DONE)
        if entry is not None and entry.state in (QUEUED, RUNNING):
            entry.tenants.add(tenant)
            self.stats.attached += 1
            return Ticket(key=key, state=ATTACHED)
        if entry is None and self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                done = _Entry(
                    key=key, job=job, owner=tenant, state=DONE,
                    result=cached, tenants={tenant},
                )
                done.done_event.set()
                self._entries[key] = done
                self.stats.served_store += 1
                return Ticket(key=key, state=DONE)
        # New (or previously failed) work: quota, then capacity.
        if (
            self.tenant_quota is not None
            and self._outstanding.get(tenant, 0) >= self.tenant_quota
        ):
            self.stats.shed_quota += 1
            return Ticket(
                key=key, state=SHED, reason=REASON_QUOTA,
                retry_after=self.retry_after,
            )
        if self._queue.full:
            self.stats.shed_saturated += 1
            return Ticket(
                key=key, state=SHED, reason=REASON_SATURATED,
                retry_after=self.retry_after,
            )
        if entry is None:
            entry = _Entry(key=key, job=job, owner=tenant)
        else:  # failed before: a fresh submission retries from scratch
            entry.owner = tenant
            entry.attempts = 0
            entry.error = None
            entry.done_event = threading.Event()
        entry.state = QUEUED
        entry.tenants.add(tenant)
        self._entries[key] = entry
        self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
        self._queue.push(tenant, key)
        self.stats.queued += 1
        return Ticket(key=key, state=QUEUED)

    # ----------------------------------------------------------- queries
    def state_of(self, key: str) -> dict:
        """One job's public state (raises KeyError for unknown keys)."""
        with self._lock:
            entry = self._entries[key]
            payload = {
                "key": key,
                "state": entry.state,
                "attempts": entry.attempts,
            }
            if entry.error is not None:
                payload["error"] = entry.error
            return payload

    def snapshot(self, keys: Iterable[str]) -> dict[str, dict]:
        """States of many keys at one instant (unknown keys skipped).

        The payloads are *order-independent* — each carries its key and
        state, nothing positional — so progress streams built on
        successive snapshots are deterministic to assert against
        however completion order scrambles.
        """
        with self._lock:
            return {
                key: self.state_of(key)
                for key in keys
                if key in self._entries
            }

    def result(self, key: str) -> RunResult:
        """The completed result of a job — and only then.

        Raises KeyError for unknown keys and :class:`ResultNotReady`
        for queued / running / failed ones: a caller can never observe
        a partially computed :class:`~repro.cpu.chip.RunResult`.
        """
        with self._lock:
            entry = self._entries[key]
            if entry.state != DONE:
                raise ResultNotReady(key, entry.state)
            assert entry.result is not None
            return entry.result

    def result_bytes(self, key: str) -> bytes:
        """The stored pickle payload of a completed result.

        Served from the shared store when one is attached (the exact
        published bytes — the byte-identity contract), falling back to
        pickling the in-memory result.
        """
        import pickle

        result = self.result(key)
        if self.store is not None:
            payload = self.store.get_bytes(key)
            if payload is not None:
                return payload
        return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)

    def wait(self, keys: Iterable[str], timeout: float = 60.0) -> bool:
        """Block until every key is terminal (done/failed) or timeout."""
        deadline = self._clock() + timeout
        for key in keys:
            with self._lock:
                entry = self._entries.get(key)
            if entry is None:
                continue
            remaining = deadline - self._clock()
            if remaining <= 0 or not entry.done_event.wait(remaining):
                return False
        return True

    def queue_depth(self) -> int:
        """Items currently admitted but not yet executing."""
        with self._lock:
            return len(self._queue) + len(self._delayed)

    # --------------------------------------------------------- execution
    def run_next(self, now: float | None = None) -> str | None:
        """Execute one queued job synchronously (``workers=0`` mode).

        Promotes any due retries first, then serves the fair queue's
        next item to completion.  Returns the executed job's key, or
        None when nothing was runnable at ``now``.
        """
        with self._cond:
            self._promote_due(now if now is not None else self._clock())
            item = self._queue.pop()
            if item is None:
                return None
            entry = self._begin(item[1])
        self._finish(entry, now=now)
        return entry.key

    def _begin(self, key: str) -> _Entry:
        """Mark a popped entry running (caller holds the lock)."""
        entry = self._entries[key]
        entry.state = RUNNING
        return entry

    def _finish(self, entry: _Entry, now: float | None = None) -> None:
        """Execute one entry and publish success or schedule a retry."""
        try:
            result = self._execute(entry.job)
        except Exception as error:
            self._on_failure(entry, error, now=now)
            return
        # Publish to the shared store *before* flipping the state:
        # a reader that sees ``done`` can always read the entry.
        if self.store is not None:
            self.store.put(entry.key, result)
        with self._cond:
            entry.result = result
            entry.state = DONE
            entry.attempts += 1
            self.stats.executed += 1
            self._settle(entry)

    def _on_failure(
        self, entry: _Entry, error: Exception, now: float | None
    ) -> None:
        """Retry with exponential backoff, or mark the entry failed."""
        with self._cond:
            entry.attempts += 1
            if entry.attempts <= self.max_retries:
                self.stats.retried += 1
                entry.state = QUEUED
                delay = self.backoff_base * 2 ** (entry.attempts - 1)
                due = (now if now is not None else self._clock()) + delay
                self._delayed_seq += 1
                self._delayed.append(
                    (due, self._delayed_seq, entry.owner, entry.key)
                )
                self._delayed.sort()
                self._cond.notify_all()
                return
            entry.state = FAILED
            entry.error = f"{type(error).__name__}: {error}"
            self.stats.failed += 1
            self._settle(entry)

    def _settle(self, entry: _Entry) -> None:
        """Terminal bookkeeping (caller holds the lock)."""
        count = self._outstanding.get(entry.owner, 0) - 1
        if count > 0:
            self._outstanding[entry.owner] = count
        else:
            self._outstanding.pop(entry.owner, None)
        entry.done_event.set()
        self._cond.notify_all()

    def _promote_due(self, now: float) -> None:
        """Move due retries back into the fair queue (lock held).

        Retries bypass the admission bound: the work was already
        admitted once, and bouncing it off a momentarily full queue
        would turn a transient fault into a deadlock.
        """
        while self._delayed and self._delayed[0][0] <= now:
            _due, _seq, owner, key = self._delayed.pop(0)
            self._queue.push(owner, key, force=True)

    def _worker_loop(self) -> None:
        """Background worker: serve the fair queue until stopped."""
        while True:
            with self._cond:
                entry = None
                while self._running:
                    self._promote_due(self._clock())
                    item = self._queue.pop()
                    if item is not None:
                        entry = self._begin(item[1])
                        break
                    timeout = None
                    if self._delayed:
                        timeout = max(
                            self._delayed[0][0] - self._clock(), 0.0
                        )
                    self._cond.wait(timeout=timeout)
                if entry is None:
                    return
            self._finish(entry)
