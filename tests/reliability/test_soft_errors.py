"""Tests for repro.reliability.soft_errors."""

import math

import pytest

from repro.reliability.soft_errors import SoftErrorModel

MODEL = SoftErrorModel()


class TestUpsetRate:
    def test_positive(self):
        assert MODEL.upset_rate_per_bit(1.0) > 0

    def test_grows_at_low_vdd(self):
        """Lower Vdd, lower critical charge, higher SER."""
        assert MODEL.upset_rate_per_bit(0.35) > 5 * (
            MODEL.upset_rate_per_bit(1.0)
        )

    def test_fit_conversion(self):
        """1000 FIT/Mbit at nominal = 1000/2^20 upsets/1e9 bit-hours."""
        rate = MODEL.upset_rate_per_bit(1.0)
        per_bit_hour = rate * 3600
        expected = 1000.0 / (1 << 20) / 1e9
        assert per_bit_hour == pytest.approx(expected)

    def test_bad_vdd(self):
        with pytest.raises(ValueError):
            MODEL.upset_rate_per_bit(0.0)


class TestWordProbabilities:
    def test_poisson_normalization(self):
        total = sum(
            MODEL.word_upset_probability(0.35, 39, 3600.0, k)
            for k in range(10)
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_uncorrectable_complements_budget(self):
        p0 = MODEL.word_upset_probability(0.35, 39, 3600.0, 0)
        p1 = MODEL.word_upset_probability(0.35, 39, 3600.0, 1)
        uncorrectable = MODEL.word_uncorrectable_probability(
            0.35, 39, 3600.0, soft_budget=1
        )
        assert uncorrectable == pytest.approx(1.0 - p0 - p1)

    def test_budget_monotone(self):
        values = [
            MODEL.word_uncorrectable_probability(0.35, 45, 3600.0, b)
            for b in range(3)
        ]
        assert values == sorted(values, reverse=True)


class TestScenarioBEquivalence:
    def test_dected_with_hard_fault_matches_clean_secded(self):
        """The paper's scenario-B argument: a DECTED word carrying one
        hard fault retains soft budget 1 — exactly a clean SECDED word's
        budget.  FIT rates are then equivalent (same order)."""
        exposure = 24 * 3600.0
        secded_clean = MODEL.cache_fit(
            0.35, words=288, word_bits=39, scrub_interval_seconds=exposure,
            soft_budget=1,
        )
        dected_one_hard = MODEL.cache_fit(
            0.35, words=288, word_bits=45, scrub_interval_seconds=exposure,
            soft_budget=1,
        )
        assert dected_one_hard == pytest.approx(secded_clean, rel=0.5)

    def test_secded_with_hard_fault_is_catastrophically_worse(self):
        """And the converse: 8T+SECDED in scenario B would be unsafe —
        a hard fault eats the only correction, leaving budget 0."""
        exposure = 24 * 3600.0
        healthy = MODEL.cache_fit(0.35, 288, 39, exposure, soft_budget=1)
        consumed = MODEL.cache_fit(0.35, 288, 39, exposure, soft_budget=0)
        assert consumed > 100 * healthy

    def test_validation(self):
        with pytest.raises(ValueError):
            MODEL.cache_fit(0.35, -1, 39, 100.0, 1)
        with pytest.raises(ValueError):
            MODEL.word_uncorrectable_probability(0.35, 39, 10.0, -1)
