"""Tests for the energy ledger."""

import pytest

from repro.cpu.power import EnergyLedger


class TestLedger:
    def test_accumulation(self):
        ledger = EnergyLedger()
        ledger.add("il1.dynamic", 1.0)
        ledger.add("il1.dynamic", 2.0)
        assert ledger.get("il1.dynamic") == 3.0
        assert ledger.total == 3.0

    def test_negative_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.add("x", -1.0)

    def test_group_prefix(self):
        ledger = EnergyLedger()
        ledger.add("core.logic", 1.0)
        ledger.add("core.arrays.dynamic", 2.0)
        ledger.add("corex", 100.0)
        assert ledger.group("core") == 3.0

    def test_merged_and_scaled(self):
        a = EnergyLedger()
        a.add("x", 1.0)
        b = EnergyLedger()
        b.add("x", 2.0)
        b.add("y", 3.0)
        merged = a.merged(b)
        assert merged.get("x") == 3.0
        assert merged.total == 6.0
        assert a.total == 1.0  # originals untouched
        assert merged.scaled(0.5).total == 3.0

    def test_categories_partition_total(self):
        ledger = EnergyLedger()
        ledger.add("il1.dynamic", 1.0)
        ledger.add("il1.edc", 0.5)
        ledger.add("il1.leakage", 0.25)
        ledger.add("dl1.dynamic", 2.0)
        ledger.add("dl1.leakage", 0.25)
        ledger.add("dl1.edc.leakage", 0.125)
        ledger.add("core.logic", 4.0)
        categories = ledger.categories()
        assert sum(categories.values()) == pytest.approx(ledger.total)
        assert categories["il1 dynamic"] == 1.0
        assert categories["edc"] == pytest.approx(0.625)
        assert categories["l1 leakage"] == pytest.approx(0.5)
        assert categories["core"] == pytest.approx(4.0)

    def test_components_sorted(self):
        ledger = EnergyLedger()
        ledger.add("b", 1.0)
        ledger.add("a", 1.0)
        assert ledger.components() == ["a", "b"]
