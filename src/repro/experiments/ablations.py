"""Design-choice ablations mentioned in the paper's text.

* ``ablation-ways`` — "We have considered other designs (e.g., 6+2), but
  they did not provide further insights" (Section IV-A): sweep the
  HP/ULE way split and show the savings trend is robust.
* ``ablation-memlat`` — "other memory latencies do not change the trends
  reported" (Section IV-A): sweep the flat memory latency.
* ``ablation-cachesize`` — beyond the paper's single 8 KB point: re-run
  the whole methodology + evaluation at 4/8/16 KB.
* ``ablation-vdd`` — "our architecture is not limited to any particular
  Vcc level" (Section III-B): redesign and re-evaluate at other NST
  supplies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import calibration
from repro.core.architect import build_chips
from repro.core.evaluation import evaluate_scenario
from repro.core.methodology import design_scenario
from repro.core.scenarios import Scenario
from repro.cpu.chip import Chip, ChipConfig
from repro.cpu.timing import TimingParams
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.tech.operating import Mode
from repro.util.tables import Table


def run_way_split_ablation(
    splits: tuple[tuple[int, int], ...] = ((7, 1), (6, 2), (4, 4)),
    trace_length: int = 60_000,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """EPI savings vs the HP/ULE way split, both modes, scenario A."""
    table = Table(
        ["split", "mode", "avg EPI saving %", "avg exec ratio"],
        title="Way-split ablation (scenario A)",
    )
    data: dict = {}
    design = design_scenario(Scenario.A)
    for hp_ways, ule_ways in splits:
        chips = build_chips(design, hp_ways=hp_ways, ule_ways=ule_ways)
        for mode in (Mode.HP, Mode.ULE):
            evaluation = evaluate_scenario(
                Scenario.A,
                mode,
                trace_length=trace_length,
                seed=seed,
                chips=chips,
                design=design,
            )
            saving = 100.0 * evaluation.average_epi_saving
            table.add_row(
                [
                    f"{hp_ways}+{ule_ways}",
                    str(mode),
                    saving,
                    evaluation.average_exec_time_ratio,
                ]
            )
            data[f"{hp_ways}+{ule_ways}:{mode}"] = saving
        table.add_separator()
    comparison = PaperComparison(
        quantity="7+1 vs 6+2 ULE saving gap (paper: 'no further insights')",
        paper=0.0,
        measured=abs(data["7+1:ULE"] - data["6+2:ULE"]),
        unit="% pts",
    )
    return ExperimentResult(
        experiment_id="ablation-ways",
        title="HP/ULE way-split ablation (§IV-A)",
        body=table.render(),
        comparisons=(comparison,),
        data=data,
    )


def run_memory_latency_ablation(
    latencies: tuple[int, ...] = (10, 20, 40, 80),
    trace_length: int = 60_000,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """EPI savings vs memory latency (trend robustness, scenario A, HP)."""
    table = Table(
        ["memory latency (cycles)", "avg EPI saving % (HP)"],
        title="Memory-latency ablation (scenario A at HP mode)",
    )
    design = design_scenario(Scenario.A)
    base_chips = build_chips(design)
    data: dict = {}
    for latency in latencies:
        timing = TimingParams(memory_latency_cycles=latency)

        def with_timing(chip: Chip) -> Chip:
            config: ChipConfig = replace(chip.config, timing=timing)
            return Chip(config)

        chips = type(base_chips)(
            baseline=with_timing(base_chips.baseline),
            proposed=with_timing(base_chips.proposed),
        )
        evaluation = evaluate_scenario(
            Scenario.A,
            Mode.HP,
            trace_length=trace_length,
            seed=seed,
            chips=chips,
            design=design,
        )
        saving = 100.0 * evaluation.average_epi_saving
        table.add_row([latency, saving])
        data[latency] = saving
    spread = max(data.values()) - min(data.values())
    comparison = PaperComparison(
        quantity=(
            "saving spread across 10..80-cycle memory "
            "(paper: trends unchanged)"
        ),
        paper=0.0,
        measured=spread,
        unit="% pts",
    )
    return ExperimentResult(
        experiment_id="ablation-memlat",
        title="Memory-latency robustness (§IV-A)",
        body=table.render(),
        comparisons=(comparison,),
        data=data,
    )


def run_cache_size_ablation(
    sizes_kb: tuple[int, ...] = (4, 8, 16),
    trace_length: int = 60_000,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """Redesign and re-evaluate scenario A at several cache sizes.

    The methodology re-runs per size (a bigger ULE way must yield over
    more bits, so the 8T cell grows slightly); savings should persist
    across the sweep.
    """
    from repro.core.methodology import default_ule_geometry

    table = Table(
        [
            "cache",
            "s8",
            "s10",
            "HP saving %",
            "ULE saving %",
        ],
        title="Cache-size ablation (scenario A)",
    )
    data: dict = {}
    for size_kb in sizes_kb:
        size_bytes = size_kb * 1024
        geometry = default_ule_geometry(cache_bytes=size_bytes)
        design = design_scenario(Scenario.A, geometry=geometry)
        chips = build_chips(design, size_bytes=size_bytes)
        savings = {}
        for mode in (Mode.HP, Mode.ULE):
            evaluation = evaluate_scenario(
                Scenario.A,
                mode,
                trace_length=trace_length,
                seed=seed,
                chips=chips,
                design=design,
            )
            savings[mode] = 100.0 * evaluation.average_epi_saving
        table.add_row(
            [
                f"{size_kb} KB",
                design.cell_8t.size_factor,
                design.cell_10t.size_factor,
                savings[Mode.HP],
                savings[Mode.ULE],
            ]
        )
        data[size_kb] = {
            "s8": design.cell_8t.size_factor,
            "hp_saving": savings[Mode.HP],
            "ule_saving": savings[Mode.ULE],
        }
    spread = max(d["ule_saving"] for d in data.values()) - min(
        d["ule_saving"] for d in data.values()
    )
    comparison = PaperComparison(
        quantity="ULE saving spread across 4..16 KB (trend robustness)",
        paper=0.0,
        measured=spread,
        unit="% pts",
    )
    return ExperimentResult(
        experiment_id="ablation-cachesize",
        title="Cache-size robustness (beyond the paper's 8 KB point)",
        body=table.render(),
        comparisons=(comparison,),
        data=data,
    )


def run_vdd_ablation(
    vdds: tuple[float, ...] = (0.45, 0.40, 0.35),
    trace_length: int = 60_000,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """Redesign and re-evaluate scenario A at several NST supplies.

    Each supply gets its own Fig. 2 pass (cells resize) and its own ULE
    operating point (frequency kept at the paper's 5 MHz).
    """
    from repro.tech.operating import OperatingPoint

    table = Table(
        ["ULE Vdd (mV)", "s8", "s10", "ULE saving %"],
        title="NST-supply ablation (scenario A at ULE mode)",
    )
    data: dict = {}
    for vdd in vdds:
        design = design_scenario(Scenario.A, vdd_ule=vdd)
        chips = build_chips(design)
        point = OperatingPoint(mode=Mode.ULE, vdd=vdd, frequency=5e6)
        evaluation = evaluate_scenario(
            Scenario.A,
            Mode.ULE,
            trace_length=trace_length,
            seed=seed,
            chips=chips,
            design=design,
            operating_point=point,
        )
        saving = 100.0 * evaluation.average_epi_saving
        table.add_row(
            [
                f"{vdd * 1e3:.0f}",
                design.cell_8t.size_factor,
                design.cell_10t.size_factor,
                saving,
            ]
        )
        data[round(vdd, 3)] = {
            "s8": design.cell_8t.size_factor,
            "s10": design.cell_10t.size_factor,
            "ule_saving": saving,
        }
    comparison = PaperComparison(
        quantity=(
            "proposal wins at every NST supply "
            "(paper: 'not limited to any particular Vcc level')"
        ),
        paper=0.0,
        measured=min(d["ule_saving"] for d in data.values()),
        unit="% min saving",
    )
    return ExperimentResult(
        experiment_id="ablation-vdd",
        title="NST-supply robustness (§III-B claim)",
        body=table.render(),
        comparisons=(comparison,),
        data=data,
    )
