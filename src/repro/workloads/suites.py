"""Benchmark suites: the paper's SmallBench / BigBench split.

"SmallBench benchmarks are used during ULE operation whereas BigBench ones
are used during HP operation" (Section IV-A.1).
"""

from __future__ import annotations

from repro.tech.operating import Mode
from repro.workloads.mediabench import BENCHMARKS, BenchmarkSpec

#: Workloads that fit very small caches; run at ULE mode.
SMALLBENCH: tuple[BenchmarkSpec, ...] = tuple(
    spec for spec in BENCHMARKS if spec.category == "small"
)

#: Workloads needing larger cache space; run at HP mode.
BIGBENCH: tuple[BenchmarkSpec, ...] = tuple(
    spec for spec in BENCHMARKS if spec.category == "big"
)

#: Every benchmark.
ALL_BENCHMARKS: tuple[BenchmarkSpec, ...] = BENCHMARKS


def suite_for_mode(mode: Mode) -> tuple[BenchmarkSpec, ...]:
    """The paper's suite assignment for an operating mode."""
    return SMALLBENCH if mode is Mode.ULE else BIGBENCH
