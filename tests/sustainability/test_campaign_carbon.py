"""Carbon-aware campaigns over mixed cell technologies.

Covers the acceptance criteria of the cells/sustainability PR: a sweep
mixing SRAM, eDRAM and gain-cell candidates runs byte-identically
serial vs parallel, reports ``co2_per_gib_ule`` as an extra objective
when a carbon intensity is set, stays byte-identical to the
pre-sustainability behaviour when it is not, and stamps its cell
technologies into the saved campaign meta for the ``--resume`` guard.
"""

import pytest

from repro.engine.session import SimulationSession
from repro.explore.campaign import CARBON_OBJECTIVE, ExplorationCampaign
from repro.explore.candidates import default_constraints
from repro.explore.space import DesignSpace

MIXED_TOKENS = ("edram-1t1c", "gain-2t", "sram-10t", "sram-6t", "sram-8t")


def _mixed_space():
    return DesignSpace.from_dict(
        {
            "size_kb": (8,),
            "line_bytes": (32,),
            "ways": (8,),
            "ule_ways": (1,),
            "ule_cell": ("8T", "EDRAM", "GAIN"),
            "ule_scheme": ("secded",),
            "hp_scheme": ("none",),
            "vdd_ule": (0.35,),
            "replacement": ("lru",),
            "suite": ("paper",),
        },
        default_constraints(),
    )


def _campaign(**kwargs):
    kwargs.setdefault("space", _mixed_space())
    kwargs.setdefault("trace_length", 1_500)
    kwargs.setdefault("seed", 3)
    return ExplorationCampaign(**kwargs)


class TestMixedTechnologySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return _campaign(carbon_intensity=475.0).run(
            session=SimulationSession()
        )

    def test_serial_matches_parallel(self, result):
        with SimulationSession(jobs=4) as parallel_session:
            parallel = _campaign(carbon_intensity=475.0).run(
                session=parallel_session
            )
        assert result.render_report() == parallel.render_report()

    def test_all_three_technologies_ran(self, result):
        cells = {
            outcome.point_dict()["ule_cell"]
            for outcome in result.outcomes
        }
        assert cells == {"8T", "EDRAM", "GAIN"}

    def test_carbon_metric_reported_for_every_candidate(self, result):
        for outcome in result.outcomes:
            assert outcome.metrics["co2_per_gib_ule"] > 0.0

    def test_carbon_objective_active(self, result):
        assert CARBON_OBJECTIVE in result.objectives

    def test_meta_records_intensity_and_technologies(self, result):
        assert result.carbon_intensity == 475.0
        assert result.cell_technologies == MIXED_TOKENS
        meta = result.to_dict()["meta"]
        assert meta["carbon_intensity"] == 475.0
        assert meta["cell_technologies"] == list(MIXED_TOKENS)

    def test_expected_technologies_match_without_running(self):
        assert _campaign().expected_technologies() == MIXED_TOKENS


class TestCarbonOffByDefault:
    @pytest.fixture(scope="class")
    def result(self):
        return _campaign().run(session=SimulationSession())

    def test_no_carbon_metric_or_objective(self, result):
        assert CARBON_OBJECTIVE not in result.objectives
        for outcome in result.outcomes:
            assert "co2_per_gib_ule" not in outcome.metrics

    def test_meta_intensity_is_null(self, result):
        assert result.carbon_intensity is None
        assert result.to_dict()["meta"]["carbon_intensity"] is None
