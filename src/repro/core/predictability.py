"""Performance predictability: WCET guarantees of the competing schemes.

The paper's market requires "strong functional and timing guarantees
required for the worst-case execution time (WCET) estimation" (Section I)
and dismisses the classic low-Vcc alternative — *disabling faulty cache
entries* (Wilkerson ISCA'08, Abella MICRO'09, Choi DAC'11) — because it
"fail[s] to provide strong timing guarantees" (Section II).  This module
quantifies that argument:

* With **entry disabling**, which lines survive at low Vcc is a
  die-specific random map.  A portable WCET bound (one binary, any
  yielding die) cannot assume *any* access hits: the worst die may have
  disabled exactly the lines the program needs.  The resulting WCET
  treats every access as a miss.
* With the **paper's EDC design**, every yielding die has its *full*
  capacity (the Fig. 2 methodology guarantees it), and inline correction
  is constant-time (+1 cycle).  Cache behaviour is identical on every
  die, so the deterministic simulation *is* the guaranteed behaviour.

The module also exposes the underlying per-line disable statistics, which
show why entry disabling degenerates at NST voltages: at the min-size 8T
failure rate, most lines contain at least one faulty word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.cpu.timing import TimingParams, TimingResult, compute_timing
from repro.cpu.trace import TraceSummary


def line_disable_probability(
    pf_bit: float,
    words_per_line: int,
    data_word_bits: int,
    tag_word_bits: int,
    hard_fault_budget: int = 0,
) -> float:
    """Probability that one cache line must be disabled.

    A line is unusable when its tag word or any of its data words carries
    more hard faults than the (per-word) correction budget.
    """
    from repro.reliability.yield_model import word_survival_probability

    if words_per_line <= 0:
        raise ValueError("words_per_line must be positive")
    p_data = word_survival_probability(
        pf_bit, data_word_bits, hard_fault_budget
    )
    p_tag = word_survival_probability(
        pf_bit, tag_word_bits, hard_fault_budget
    )
    return 1.0 - (p_data**words_per_line) * p_tag


@dataclass(frozen=True)
class DisableStatistics:
    """Disable-scheme statistics for one cache at one fault rate."""

    lines: int
    sets: int
    ways: int
    p_line_disabled: float

    @property
    def expected_disabled_lines(self) -> float:
        """Mean number of disabled lines per die."""
        return self.lines * self.p_line_disabled

    @property
    def p_some_set_fully_disabled(self) -> float:
        """Probability that at least one set loses *all* its ways.

        When that happens, accesses mapping to the set can never hit —
        the case a portable WCET bound must assume for every set.
        """
        p_set_dead = self.p_line_disabled**self.ways
        return 1.0 - (1.0 - p_set_dead) ** self.sets


def disable_statistics(
    config: CacheConfig,
    pf_bit: float,
    active_ways: int,
    hard_fault_budget: int = 0,
) -> DisableStatistics:
    """Entry-disable statistics for ``config`` at a per-bit fault rate."""
    if not 0 < active_ways <= config.ways:
        raise ValueError("bad active way count")
    p_disabled = line_disable_probability(
        pf_bit,
        words_per_line=config.words_per_line,
        data_word_bits=config.data_word_bits,
        tag_word_bits=config.tag_bits,
        hard_fault_budget=hard_fault_budget,
    )
    return DisableStatistics(
        lines=config.sets * active_ways,
        sets=config.sets,
        ways=active_ways,
        p_line_disabled=p_disabled,
    )


def wcet_all_miss(
    summary: TraceSummary,
    il1_hit_latency: int,
    dl1_hit_latency: int,
    params: TimingParams | None = None,
) -> TimingResult:
    """WCET bound when no cache hit can be guaranteed (entry disabling).

    Every instruction fetch and every data access pays the memory
    latency — the bound a portable WCET analysis must publish when the
    usable-line map varies die to die.
    """
    return compute_timing(
        summary,
        il1_misses=summary.instructions,
        dl1_misses=summary.memory_ops,
        il1_hit_latency=il1_hit_latency,
        dl1_hit_latency=dl1_hit_latency,
        params=params,
    )


def wcet_guaranteed_capacity(
    summary: TraceSummary,
    il1_misses: int,
    dl1_misses: int,
    il1_hit_latency: int,
    dl1_hit_latency: int,
    params: TimingParams | None = None,
) -> TimingResult:
    """WCET bound under the paper's design: full capacity on every die.

    The deterministic miss counts of the functional simulation hold on
    every yielding die (EDC absorbs the per-die fault map in constant
    time), so they are usable inside the WCET bound.
    """
    return compute_timing(
        summary,
        il1_misses=il1_misses,
        dl1_misses=dl1_misses,
        il1_hit_latency=il1_hit_latency,
        dl1_hit_latency=dl1_hit_latency,
        params=params,
    )
