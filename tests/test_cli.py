"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fig4" in out
        assert "tab-wcet" in out


class TestDesign:
    def test_scenario_a_summary(self, capsys):
        assert main(["design", "A"]) == 0
        out = capsys.readouterr().out
        assert "Pf target" in out
        assert "scenario A" in out

    def test_bad_scenario(self):
        with pytest.raises(SystemExit):
            main(["design", "C"])


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "tab-sizing"]) == 0
        out = capsys.readouterr().out
        assert "tab-sizing" in out
        assert "Paper vs measured" in out

    def test_run_with_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "tab-area", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert "tab-area" in out_file.read_text()

    def test_trace_length_forwarded(self, capsys):
        assert main(
            ["run", "tab-exectime", "--trace-length", "5000"]
        ) == 0
        assert "exec" in capsys.readouterr().out.lower()

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])


class TestAll:
    def test_all_writes_reports(self, tmp_path, capsys, monkeypatch):
        """Run 'all' against a registry trimmed to the fast drivers."""
        import repro.experiments.registry as registry

        trimmed = {
            "tab-sizing": registry._REGISTRY["tab-sizing"],
            "tab-area": registry._REGISTRY["tab-area"],
        }
        monkeypatch.setattr(registry, "_REGISTRY", trimmed)
        out_dir = tmp_path / "results"
        assert main(["all", "--out-dir", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "tab-sizing.txt").exists()
        assert (out_dir / "tab-area.txt").exists()
