"""Tests for repro.cacti.array (one SRAM subarray)."""

import pytest

from repro.cacti.array import SramArray
from repro.sram.cells import CELL_6T, CELL_8T, CELL_10T, CellDesign
from repro.tech.operating import ULE_OPERATING_POINT


def _array(topo=CELL_6T, size=1.0, rows=32, cols=282) -> SramArray:
    return SramArray(rows=rows, cols=cols, cell=CellDesign(topo, size))


class TestGeometry:
    def test_bad_dims(self):
        with pytest.raises(ValueError):
            SramArray(rows=0, cols=10, cell=CellDesign(CELL_6T))

    def test_area_scales_with_cells(self):
        assert _array(cols=512).area == pytest.approx(
            2 * _array(cols=256).area
        )

    def test_area_includes_periphery_overhead(self):
        array = _array()
        cells_only = array.rows * array.cols * array.electricals.area
        assert array.area > cells_only


class TestReadEnergy:
    def test_positive_and_vdd_monotone(self):
        array = _array()
        assert 0 < array.read_energy(0.35) < array.read_energy(1.0)

    def test_column_gating_saves(self):
        """Gated check columns cost nothing dynamically — how 'SECDED is
        simply turned off' works at HP mode."""
        array = _array(cols=312)
        assert array.read_energy(1.0, active_cols=256) < array.read_energy(
            1.0, active_cols=312
        )

    def test_out_bits_add_energy(self):
        array = _array()
        assert array.read_energy(1.0, out_bits=39) > array.read_energy(
            1.0, out_bits=0
        )

    def test_active_cols_range_checked(self):
        array = _array(cols=100)
        with pytest.raises(ValueError):
            array.read_energy(1.0, active_cols=101)

    def test_upsized_10t_way_costs_more_than_coded_8t_way(self, design_a):
        """The HP-mode savings mechanism of Fig. 3 at array level."""
        ten_t = SramArray(rows=32, cols=282, cell=design_a.cell_10t)
        eight_t = SramArray(rows=32, cols=282, cell=design_a.cell_8t)
        assert ten_t.read_energy(1.0) > 1.5 * eight_t.read_energy(
            1.0, active_cols=282
        )

    def test_nst_read_not_v_squared_cheap(self):
        """Full-swing NST reads: energy falls slower than V^2 between
        1 V and 350 mV would naively suggest for the swing part."""
        array = _array()
        ratio = array.read_energy(1.0) / array.read_energy(0.35)
        assert ratio > 1.0


class TestWriteEnergy:
    def test_full_line_costs_more_than_word(self):
        array = _array(cols=312)
        assert array.write_energy(1.0, active_cols=39) < array.write_energy(
            1.0, active_cols=312
        )

    def test_write_costs_more_than_read_per_column_at_high_vdd(self):
        """Writes swing full rail; differential reads only ~150 mV."""
        array = _array()
        assert array.write_energy(1.0, active_cols=32) > array.read_energy(
            1.0, active_cols=32
        )


class TestLeakage:
    def test_scales_with_cells(self):
        small = _array(cols=128).leakage_power(1.0)
        large = _array(cols=256).leakage_power(1.0)
        assert large > 1.5 * small

    def test_cell_type_ordering(self, design_a):
        """NST-sized 10T arrays leak far more than designed-8T arrays."""
        ten_t = SramArray(rows=32, cols=256, cell=design_a.cell_10t)
        eight_t = SramArray(rows=32, cols=256, cell=design_a.cell_8t)
        assert ten_t.leakage_power(0.35) > 1.5 * eight_t.leakage_power(0.35)


class TestTiming:
    def test_access_fits_cycle_at_both_points(self, design_a):
        """1 GHz at HP and 5 MHz at ULE are feasible for the arrays."""
        hp_array = SramArray(rows=32, cols=282, cell=design_a.cell_6t)
        assert hp_array.access_time(1.0) < 1e-9
        ule_array = SramArray(rows=32, cols=312, cell=design_a.cell_8t)
        assert ule_array.access_time(
            ULE_OPERATING_POINT.vdd
        ) < ULE_OPERATING_POINT.cycle_time

    def test_nst_much_slower(self):
        array = _array(CELL_10T, 4.0)
        assert array.access_time(0.35) > 5 * array.access_time(1.0)

    def test_read_current_positive(self):
        assert _array(CELL_8T).cell_read_current(0.35) > 0
