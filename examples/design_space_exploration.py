#!/usr/bin/env python3
"""Design-space exploration with the Fig. 2 methodology.

An architect's view beyond the paper's single design point: sweep the
yield target and the NST supply voltage and watch how the 10T baseline
cell and the EDC-protected 8T replacement respond.  The 8T+SECDED design
stays near minimum size across the whole space while the 10T cell blows
up — the generalized version of the paper's argument.

Usage::

    python examples/design_space_exploration.py
"""

from repro.core.methodology import default_ule_geometry
from repro.core.scenarios import Scenario, plan_for
from repro.reliability.yield_model import paper_pf_target
from repro.sram.cells import CELL_8T, CELL_10T
from repro.sram.failure import CellFailureModel
from repro.sram.sizing import minimal_size_step, size_for_pf
from repro.util.tables import Table


def size_8t_for_yield(vdd: float, target_yield: float) -> tuple[float, float]:
    """Grow the 8T cell until the SECDED-coded yield meets the target."""
    geometry = default_ule_geometry()
    plan = plan_for(Scenario.A)
    organization = geometry.organization(
        plan.proposed_ule_way.ule, hard_budget=1
    )
    model = CellFailureModel(CELL_8T)
    size = 1.0
    while True:
        pf = model.pf(vdd, size)
        if organization.yield_at(pf) >= target_yield:
            return size, pf
        size = round(size + minimal_size_step(), 9)
        if size > 64:
            raise RuntimeError("no feasible 8T size")


def main() -> None:
    print("Sweep 1: yield target at the paper's 350 mV\n")
    table = Table(
        ["yield target", "Pf target", "s10 (fault-free)",
         "s8 (+SECDED)", "area ratio 10T/8T"],
    )
    for target_yield in (0.95, 0.99, 0.999):
        pf_target = paper_pf_target(target_yield)
        s10 = size_for_pf(CELL_10T, 0.35, pf_target)
        s8, _ = size_8t_for_yield(0.35, target_yield)
        from repro.sram.cells import CellDesign

        ratio = (
            CellDesign(CELL_10T, s10).area / CellDesign(CELL_8T, s8).area
        )
        table.add_row(
            [f"{target_yield:.3f}", f"{pf_target:.2e}", s10, s8,
             f"{ratio:.2f}x"]
        )
    print(table.render())

    print("\nSweep 2: NST supply voltage at the paper's 99 % yield\n")
    table = Table(
        ["Vdd (mV)", "s10", "s8 (+SECDED)", "note"],
    )
    pf_target = paper_pf_target(0.99)
    for vdd in (0.45, 0.40, 0.35, 0.32):
        s8, _ = size_8t_for_yield(vdd, 0.99)
        try:
            s10 = size_for_pf(CELL_10T, vdd, pf_target)
            note = ""
        except ValueError as error:
            s10, note = float("nan"), str(error)
        note = note or (
            "8T near write-ability floor" if vdd < 0.33 else ""
        )
        table.add_row([f"{vdd * 1e3:.0f}", s10, s8, note])
    print(table.render())
    print(
        "\nThe coded 8T design tracks the whole space near minimum size;"
        "\nthe fault-free 10T baseline pays quadratically for margin."
    )


if __name__ == "__main__":
    main()
