#!/usr/bin/env python3
"""Sensor-node day-in-the-life: hybrid ULE/HP operation with mode switches.

The paper's target device (Section I) monitors its environment at ULE
mode "99 % - 99.99 % of the time" and reacts to rare events with short HP
bursts.  This example executes exactly that phase pattern on the designed
scenario-A chips — long adpcm-style monitoring phases punctuated by gsm
encode bursts — switching the hybrid caches between modes (with HP-way
flushes), and reports the battery-relevant outcome: average power and the
projected lifetime on a coin cell.

Usage::

    python examples/sensor_node_lifetime.py
"""

from repro.cache.hybrid import HybridCache
from repro.core import Scenario, build_chips, design_scenario
from repro.tech.operating import Mode
from repro.util.units import si
from repro.workloads import generate_trace

#: A CR2032 coin cell: ~225 mAh at 3 V.
COIN_CELL_JOULES = 0.225 * 3600 * 3.0

#: Fraction of wall-clock time spent at HP mode (paper: 0.01 % - 1 %).
HP_DUTY = 0.005


def run_phase_pattern(chip, ule_trace, hp_trace, phases: int = 4):
    """Alternate ULE monitoring phases with HP bursts on one chip."""
    il1 = HybridCache(chip.config.il1, mode=Mode.ULE)
    total_energy = 0.0
    total_seconds = 0.0
    flush_writebacks = 0
    for _ in range(phases):
        ule = chip.run(ule_trace, Mode.ULE)
        total_energy += ule.energy.total
        total_seconds += ule.execution_seconds
        flush_writebacks += il1.set_mode(Mode.HP)

        hp = chip.run(hp_trace, Mode.HP)
        # Scale the HP burst so it occupies HP_DUTY of wall-clock time.
        weight = HP_DUTY * ule.execution_seconds / hp.execution_seconds
        total_energy += weight * hp.energy.total
        total_seconds += weight * hp.execution_seconds
        flush_writebacks += il1.set_mode(Mode.ULE)
    return total_energy, total_seconds, flush_writebacks


def main() -> None:
    design = design_scenario(Scenario.A)
    chips = build_chips(design)
    ule_trace = generate_trace("adpcm_c", length=40_000)
    hp_trace = generate_trace("gsm_c", length=40_000)

    print("phase pattern: ULE monitoring with "
          f"{100 * HP_DUTY:.1f} % HP-burst duty cycle\n")
    lifetimes = {}
    for label, chip in (
        ("baseline (6T+10T)", chips.baseline),
        ("proposed (6T+8T+SECDED)", chips.proposed),
    ):
        energy, seconds, flushes = run_phase_pattern(
            chip, ule_trace, hp_trace
        )
        power = energy / seconds
        lifetime_days = COIN_CELL_JOULES / power / 86_400
        lifetimes[label] = lifetime_days
        print(f"{label}")
        print(f"  average power      : {si(power, 'W')}")
        print(f"  mode-switch flushes: {flushes} dirty lines")
        print(f"  CR2032 lifetime    : {lifetime_days:.0f} days")
        print()

    gain = lifetimes["proposed (6T+8T+SECDED)"] / lifetimes[
        "baseline (6T+10T)"
    ]
    print(f"battery-lifetime extension: {gain:.2f}x")


if __name__ == "__main__":
    main()
