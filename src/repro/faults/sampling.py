"""Seeded die sampling from the variation models.

One die is one draw from the parametric-variation substrate: every
stored bit of every powered way fails independently with the analytic
per-bit probability of its sized cell at the mode's supply (the cell's
own :meth:`repro.cells.SizedCell.failure_probability` — for SRAM the
same Pelgrom-margin model the Fig. 2 methodology sizes against).  A *word* is unusable when its
hard-fault count exceeds the correction budget of the EDC scheme active
in that mode; a *line* is disabled when any of its data or tag words is
unusable — the fault-aware way design of Section 3.

The hard-fault budget is derived from the configuration itself: a way
group only spends EDC corrections on hard faults in the modes where its
decode is inline (``WayGroupConfig.edc_inline_modes`` — the proposed 8T
way at ULE mode).  Off-critical-path coding (the baselines' SECDED) is
reserved for soft errors and absorbs no hard faults, exactly as the
yield methodology assumes.

Sampling is seeded and order-independent: each (die, cache, mode)
triple draws from its own :func:`repro.util.rng.derive_seed` child
stream, so die 17 of a 200-die population is bit-identical to die 17 of
a 1000-die population with the same root seed.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.cache.config import CacheConfig
from repro.edc.protection import ProtectionScheme
from repro.faults.maps import CACHE_LABELS, CacheFaultMap, DieFaultMap
from repro.tech.operating import Mode, operating_point_for
from repro.util.rng import derive_seed


def default_mode_vdds() -> dict[Mode, float]:
    """The paper's supplies per mode (1 V at HP, 350 mV at ULE)."""
    return {
        mode: operating_point_for(mode).vdd
        for mode in (Mode.HP, Mode.ULE)
    }


def _group_hard_budgets(group, mode: Mode) -> tuple[int, int]:
    """(data, tag) hard-fault budgets of one way group in one mode."""
    if not group.edc_inline(mode):
        return 0, 0
    data = group.data_protection.get(mode, ProtectionScheme.NONE)
    tag = group.tag_protection.get(mode, ProtectionScheme.NONE)
    return data.hard_fault_budget, tag.hard_fault_budget


def sample_cache_fault_map(
    config: CacheConfig,
    cache: str,
    mode: Mode,
    vdd: float,
    rng: np.random.Generator,
) -> CacheFaultMap:
    """Draw one array's disabled lines for one mode.

    Every powered way group is sampled with its own cell's analytic
    per-bit failure probability at ``vdd``; fault counts per stored
    word are binomial draws, and a line is disabled when any word
    exceeds the group's hard-fault budget in ``mode``.
    """
    disabled: list[tuple[int, int]] = []
    sets = config.sets
    words_per_line = config.words_per_line
    for group in config.way_groups:
        if not group.is_active(mode):
            continue
        pf = float(group.cell.failure_probability(vdd))
        pf = min(max(pf, 0.0), 1.0)
        if pf == 0.0:
            continue
        data_bits = (
            config.data_word_bits + group.active_data_check_bits(mode)
        )
        tag_bits = config.tag_bits + group.active_tag_check_bits(mode)
        budget_data, budget_tag = _group_hard_budgets(group, mode)
        ways = config.ways_of_group(group.name)
        data_faults = rng.binomial(
            data_bits, pf, size=(len(ways), sets, words_per_line)
        )
        tag_faults = rng.binomial(tag_bits, pf, size=(len(ways), sets))
        bad = (data_faults > budget_data).any(axis=2) | (
            tag_faults > budget_tag
        )
        for position, way in enumerate(ways):
            for set_index in np.flatnonzero(bad[position]):
                disabled.append((int(set_index), way))
    return CacheFaultMap(
        cache=cache, mode=mode, disabled=tuple(sorted(disabled))
    )


def sample_die_fault_map(
    il1: CacheConfig,
    dl1: CacheConfig,
    seed: int,
    die: int,
    mode_vdds: Mapping[Mode, float] | None = None,
) -> DieFaultMap:
    """Draw one die's fault map over both L1 arrays and both modes.

    IL1 and DL1 are sampled independently even when they share a
    configuration — they are distinct silicon.  The result is
    normalized (fault-free entries dropped), so every clean die shares
    one canonical content and the engine runs it once.
    """
    mode_vdds = dict(mode_vdds or default_mode_vdds())
    entries: list[CacheFaultMap] = []
    for cache, config in zip(CACHE_LABELS, (il1, dl1)):
        for mode in sorted(mode_vdds, key=lambda m: m.value):
            rng = np.random.default_rng(
                derive_seed(seed, "faults", die, cache, mode.value)
            )
            entry = sample_cache_fault_map(
                config, cache, mode, mode_vdds[mode], rng
            )
            if entry.disabled:
                entries.append(entry)
    return DieFaultMap(entries=tuple(entries))


def sample_population(
    il1: CacheConfig,
    dl1: CacheConfig,
    dies: int,
    seed: int,
    mode_vdds: Mapping[Mode, float] | None = None,
) -> tuple[DieFaultMap, ...]:
    """Draw a whole die population (index-stable, see module docs)."""
    if dies < 1:
        raise ValueError("dies must be at least 1")
    return tuple(
        sample_die_fault_map(il1, dl1, seed, die, mode_vdds=mode_vdds)
        for die in range(dies)
    )


def functional_fraction(
    maps: tuple[DieFaultMap, ...], mode: Mode = Mode.ULE
) -> float:
    """Fraction of dies with no disabled line in ``mode`` — the
    sampled counterpart of the paper's Eq. (2) yield."""
    if not maps:
        return 0.0
    working = sum(
        1
        for die_map in maps
        if all(
            not die_map.disabled_for(cache, mode)
            for cache in CACHE_LABELS
        )
    )
    return working / len(maps)
