"""tab-edc: codec geometry, gate counts and energy (HSPICE substitute).

The paper characterized its EDC encoders/decoders with HSPICE at 32 nm
(Section IV-A.3).  This driver prints the equivalent characterization of
our gate-level models at both operating points, together with the code
geometries (the 7/13 check-bit anchor) and a correctness sweep.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.edc.base import DecodeStatus
from repro.edc.circuits import circuit_for_code
from repro.edc.protection import ProtectionScheme, make_code
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.tech.operating import HP_OPERATING_POINT, ULE_OPERATING_POINT
from repro.util.tables import Table


def _correctness_sweep(code, rng: np.random.Generator) -> dict:
    """Exhaustive single/double sweep + sampled triple sweep."""
    data = int(rng.integers(0, 1 << min(code.k, 62)))
    codeword = code.encode(data)
    if code.correctable >= 1:
        singles_ok = all(
            code.decode(codeword ^ (1 << p)).status
            is DecodeStatus.CORRECTED
            and code.decode(codeword ^ (1 << p)).data == data
            for p in range(code.n)
        )
    else:
        singles_ok = all(
            code.decode(codeword ^ (1 << p)).status
            is DecodeStatus.DETECTED
            for p in range(code.n)
        )
    doubles = list(itertools.combinations(range(code.n), 2))
    if code.correctable >= 2:
        doubles_ok = all(
            code.decode(codeword ^ (1 << a) ^ (1 << b)).data == data
            and code.decode(codeword ^ (1 << a) ^ (1 << b)).status
            is DecodeStatus.CORRECTED
            for a, b in doubles
        )
    elif code.detectable >= 2:
        doubles_ok = all(
            code.decode(codeword ^ (1 << a) ^ (1 << b)).status
            is DecodeStatus.DETECTED
            for a, b in doubles
        )
    else:
        doubles_ok = True  # outside the code's guarantee envelope
    triples_detected = True
    if code.detectable >= 3:
        for _ in range(500):
            picks = rng.choice(code.n, size=3, replace=False)
            corrupted = codeword
            for p in picks:
                corrupted ^= 1 << int(p)
            if code.decode(corrupted).status is not DecodeStatus.DETECTED:
                triples_detected = False
                break
    return {
        "singles_ok": singles_ok,
        "doubles_ok": doubles_ok,
        "triples_detected": triples_detected,
    }


def run_edc_table(seed: int = 5) -> ExperimentResult:
    """Characterize every codec used by the scenarios."""
    rng = np.random.default_rng(seed)
    table = Table(
        [
            "codec",
            "n",
            "k",
            "gates enc/dec",
            "E_dec @1V (fJ)",
            "E_dec @350mV (fJ)",
            "t_dec @350mV (ns)",
            "guarantees ok",
        ],
        title="EDC codec characterization (gate-level, 32 nm)",
    )
    data: dict = {}
    for scheme, bits in (
        (ProtectionScheme.SECDED, 32),
        (ProtectionScheme.SECDED, 26),
        (ProtectionScheme.DECTED, 32),
        (ProtectionScheme.DECTED, 26),
        (ProtectionScheme.PARITY, 32),
    ):
        code = make_code(scheme, bits)
        circuit = circuit_for_code(code)
        sweep = _correctness_sweep(code, rng)
        guarantees = all(sweep.values())
        table.add_row(
            [
                circuit.name,
                code.n,
                code.k,
                f"{circuit.encoder_gates}/{circuit.decoder_gates}",
                circuit.decode_energy(HP_OPERATING_POINT.vdd) * 1e15,
                circuit.decode_energy(ULE_OPERATING_POINT.vdd) * 1e15,
                circuit.decode_delay(ULE_OPERATING_POINT.vdd) * 1e9,
                "yes" if guarantees else "NO",
            ]
        )
        data[circuit.name] = {
            "n": code.n,
            "k": code.k,
            "decoder_gates": circuit.decoder_gates,
            "decode_energy_ule": circuit.decode_energy(
                ULE_OPERATING_POINT.vdd
            ),
            **sweep,
        }
    secded = make_code(ProtectionScheme.SECDED, 32)
    dected = make_code(ProtectionScheme.DECTED, 32)
    # The +1 cycle anchor: decode must fit one 5 MHz cycle at 350 mV.
    cycle_ns = 1e9 / ULE_OPERATING_POINT.frequency
    worst_delay_ns = (
        circuit_for_code(dected).decode_delay(ULE_OPERATING_POINT.vdd) * 1e9
    )
    comparisons = (
        PaperComparison(
            "SECDED check bits", 7, secded.check_bits, "bits"
        ),
        PaperComparison(
            "DECTED check bits", 13, dected.check_bits, "bits"
        ),
        PaperComparison(
            f"DECTED decode delay vs {cycle_ns:.0f} ns ULE cycle",
            cycle_ns,
            worst_delay_ns,
            "ns",
        ),
    )
    return ExperimentResult(
        experiment_id="tab-edc",
        title="EDC codec characterization (§IV-A.3 HSPICE substitute)",
        body=table.render(),
        comparisons=comparisons,
        data=data,
    )
