"""Backend equivalence and job identity under soft-error injection.

The transient subsystem's acceptance contract:

* with injection enabled, the vectorized and reference backends
  produce bit-identical counters, timing and energy;
* a *null* spec is byte-identical to passing no spec (results and
  engine job keys);
* serial and ``--jobs N`` sessions render population-style batches
  byte-identically (the counter-based sampler has no shared stream).

The injection seed is parametrized, and CI additionally sweeps the
``TRANSIENTS_TEST_SEED`` environment variable across a seed matrix —
equivalence must hold for *every* stream, not one golden seed.
"""

import os

import pytest

from repro.engine.backends import simulate_cache
from repro.engine.jobs import (
    ENGINE_CACHE_VERSION,
    SimulationJob,
    TraceSpec,
    execute_job,
    job_key,
)
from repro.faults.sampling import sample_die_fault_map
from repro.tech.operating import Mode, operating_point_for
from repro.transients import TransientSpec, make_sampler
from repro.workloads.mediabench import generate_trace

#: CI's seed matrix sets this; locally the default seed runs.
_ENV_SEED = int(os.environ.get("TRANSIENTS_TEST_SEED", "0"))

#: Injection seeds every test sweeps (env seed + a fixed alternate).
SEEDS = sorted({_ENV_SEED, 1234})


def _spec(seed, acceleration=1e17, scrub=1e-4):
    return TransientSpec(
        acceleration=acceleration,
        scrub_interval_seconds=scrub,
        seed=seed,
    )


def _results_equal(left, right) -> bool:
    return (
        left.il1_stats == right.il1_stats
        and left.dl1_stats == right.dl1_stats
        and left.timing == right.timing
        and list(left.energy.items()) == list(right.energy.items())
    )


def _job(chips, transients=None, mode=Mode.ULE, **kwargs):
    return SimulationJob(
        chip=chips.proposed.config,
        trace=TraceSpec("adpcm_c", 3_000, 42),
        mode=mode,
        transients=transients,
        **kwargs,
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", [Mode.ULE, Mode.HP])
    def test_chip_run_bit_identical(self, chips_b, mode, seed):
        """Full chip runs (counters, timing, energy) agree under
        injection for both paper chips and both modes."""
        trace = generate_trace("g721_c", length=4_000, seed=9)
        spec = _spec(seed)
        for chip in (chips_b.baseline, chips_b.proposed):
            outcomes = [
                chip.run(trace, mode, backend=backend, transients=spec)
                for backend in ("vectorized", "reference")
            ]
            assert _results_equal(*outcomes)
            injected = outcomes[0]
            total = sum(
                stats.transient_affected
                for stats in (injected.il1_stats, injected.dl1_stats)
            )
            assert total > 0  # the equivalence must not be vacuous

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cache_level_equivalence_all_classes(self, chips_b, seed):
        """Counter-level agreement with events in several classes."""
        config = chips_b.baseline.config.dl1
        trace = generate_trace("adpcm_c", length=6_000, seed=11)
        addresses, is_write = trace.memory_stream()
        sampler = make_sampler(
            config, Mode.ULE, operating_point_for(Mode.ULE),
            _spec(seed), "dl1",
        )
        reference = simulate_cache(
            config, Mode.ULE, addresses, is_write,
            backend="reference", transients=sampler,
        )
        vectorized = simulate_cache(
            config, Mode.ULE, addresses, is_write,
            backend="vectorized", transients=sampler,
        )
        assert reference == vectorized
        assert vectorized.transient_affected > 0
        assert (
            vectorized.transient_due + vectorized.transient_refetches
            > 0
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_equivalence_with_fault_map(self, chips_b, seed):
        """Hard faults + soft errors together: disabled lines shift
        allocation, and the backends must still agree bit-for-bit."""
        config = chips_b.proposed.config
        fault_map = sample_die_fault_map(
            config.il1,
            config.dl1,
            seed=123,
            die=0,
            mode_vdds={Mode.ULE: 0.30, Mode.HP: 0.60},
        )
        assert not fault_map.is_fault_free
        trace = generate_trace("g721_c", length=4_000, seed=9)
        outcomes = [
            chips_b.proposed.run(
                trace, Mode.ULE, backend=backend,
                fault_map=fault_map, transients=_spec(seed),
            )
            for backend in ("vectorized", "reference")
        ]
        assert _results_equal(*outcomes)

    def test_multiway_lru_kernel_equivalence(self, chips_a):
        """HP mode exercises the generic multi-way kernel's record
        path (ULE's single way uses the direct-mapped kernel)."""
        config = chips_a.proposed.config.dl1
        trace = generate_trace("mpeg2_c", length=6_000, seed=3)
        addresses, is_write = trace.memory_stream()
        sampler = make_sampler(
            config, Mode.HP, operating_point_for(Mode.HP),
            _spec(7, acceleration=1e18, scrub=1e-6), "dl1",
        )
        reference = simulate_cache(
            config, Mode.HP, addresses, is_write,
            backend="reference", transients=sampler,
        )
        vectorized = simulate_cache(
            config, Mode.HP, addresses, is_write,
            backend="vectorized", transients=sampler,
        )
        assert reference == vectorized
        assert vectorized.transient_affected > 0


class TestJobIdentity:
    def test_version_bumped_for_transients(self):
        assert ENGINE_CACHE_VERSION >= 4

    def test_null_spec_collapses_to_specless_key(self, chips_b):
        for null in (
            TransientSpec(acceleration=0.0),
            TransientSpec(fit_per_mbit_nominal=0.0),
        ):
            assert job_key(_job(chips_b)) == job_key(
                _job(chips_b, transients=null)
            )

    def test_null_spec_result_identical_to_no_spec(self, chips_b):
        plain = execute_job(_job(chips_b))
        null = execute_job(
            _job(chips_b, transients=TransientSpec(acceleration=0.0))
        )
        assert _results_equal(plain, null)

    def test_active_spec_changes_key(self, chips_b):
        assert job_key(_job(chips_b)) != job_key(
            _job(chips_b, transients=_spec(0))
        )

    def test_spec_content_keys(self, chips_b):
        a = job_key(_job(chips_b, transients=_spec(1)))
        b = job_key(_job(chips_b, transients=_spec(1)))
        c = job_key(_job(chips_b, transients=_spec(2)))
        assert a == b
        assert a != c

    def test_backend_excluded_from_key(self, chips_b):
        assert job_key(
            _job(chips_b, transients=_spec(1), backend="reference")
        ) == job_key(
            _job(chips_b, transients=_spec(1), backend="vectorized")
        )


class TestSessionDeterminism:
    def test_serial_matches_parallel(self, chips_b, tmp_path):
        """A transient batch renders byte-identically at --jobs 4."""
        from repro.engine.session import SimulationSession

        jobs = [
            _job(chips_b, transients=_spec(seed), mode=mode)
            for seed in (0, 1)
            for mode in (Mode.ULE, Mode.HP)
        ]

        def render(results):
            return "\n".join(
                f"{r.epi!r} {r.timing.cycles!r} "
                f"{r.il1_stats!r} {r.dl1_stats!r}"
                for r in results
            )

        with SimulationSession(jobs=1) as serial:
            text_serial = render(serial.run_jobs(jobs))
        with SimulationSession(jobs=4) as parallel:
            text_parallel = render(parallel.run_jobs(jobs))
        assert text_serial == text_parallel

    def test_disk_cache_round_trip(self, chips_b, tmp_path):
        """Injected results memoize on disk and reload identically."""
        from repro.engine.session import SimulationSession

        job = _job(chips_b, transients=_spec(5))
        with SimulationSession(jobs=1, cache_dir=tmp_path) as first:
            original = first.run_jobs([job])[0]
            assert first.stats.executed == 1
        with SimulationSession(jobs=1, cache_dir=tmp_path) as second:
            reloaded = second.run_jobs([job])[0]
            assert second.stats.disk_hits == 1
            assert second.stats.executed == 0
        assert _results_equal(original, reloaded)
