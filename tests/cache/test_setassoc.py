"""Tests for the set-associative functional simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.setassoc import SetAssociativeCache
from repro.core.architect import build_cache_pair


@pytest.fixture()
def cache(design_a) -> SetAssociativeCache:
    baseline, _ = build_cache_pair(design_a)
    return SetAssociativeCache(baseline)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self, cache):
        first = cache.access(0x1000, is_write=False)
        assert not first.hit
        second = cache.access(0x1000, is_write=False)
        assert second.hit
        assert second.way == first.way

    def test_same_line_hits(self, cache):
        cache.access(0x1000, False)
        assert cache.access(0x101F, False).hit      # same 32 B line
        assert not cache.access(0x1020, False).hit  # next line

    def test_write_allocate(self, cache):
        result = cache.access(0x2000, is_write=True)
        assert not result.hit
        assert cache.stats.fills == 1
        assert cache.access(0x2000, is_write=False).hit

    def test_dirty_eviction_writes_back(self, cache):
        sets = cache.config.sets
        line = cache.config.line_bytes
        target = 0x3000
        cache.access(target, is_write=True)  # dirty line
        # Fill the same set with 8 more distinct lines to evict it.
        for i in range(1, 9):
            cache.access(target + i * sets * line, is_write=False)
        assert cache.stats.writebacks >= 1

    def test_clean_eviction_silent(self, cache):
        sets, line = cache.config.sets, cache.config.line_bytes
        for i in range(9):
            cache.access(0x4000 + i * sets * line, is_write=False)
        assert cache.stats.writebacks == 0

    def test_lru_order_within_set(self, cache):
        sets, line = cache.config.sets, cache.config.line_bytes
        base = 0x5000
        lines = [base + i * sets * line for i in range(8)]
        for address in lines:
            cache.access(address, False)
        cache.access(lines[0], False)          # refresh line 0
        cache.access(base + 8 * sets * line, False)  # evict LRU (line 1)
        assert cache.access(lines[0], False).hit
        assert not cache.access(lines[1], False).hit


class TestStatsInvariants:
    def test_counts_consistent(self, cache, rng):
        addresses = rng.integers(0, 1 << 20, size=3000)
        writes = rng.random(3000) < 0.3
        for address, write in zip(addresses, writes):
            cache.access(int(address) & ~3, bool(write))
        stats = cache.stats
        assert stats.reads + stats.writes == stats.accesses == 3000
        assert stats.hits + stats.misses == stats.accesses
        assert stats.fills == stats.misses
        assert sum(stats.group_fills.values()) == stats.fills
        assert sum(stats.group_read_hits.values()) == stats.read_hits
        assert sum(stats.group_write_hits.values()) == stats.write_hits
        assert 0.0 <= stats.miss_rate <= 1.0

    def test_resident_lines_bounded(self, cache, rng):
        for address in rng.integers(0, 1 << 22, size=5000):
            cache.access(int(address), False)
        assert cache.resident_lines() <= cache.config.lines


class TestWayMasking:
    def test_masked_ways_not_used(self, cache):
        mask = [False] * 7 + [True]
        cache.set_active_ways(mask)
        for i in range(100):
            result = cache.access(0x8000 + i * 32, False)
            assert result.way == 7

    def test_all_masked_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.set_active_ways([False] * 8)

    def test_flush_returns_dirty_count(self, cache):
        cache.access(0x9000, is_write=True)
        cache.access(0xA000, is_write=False)
        flushed = cache.flush_ways(list(range(8)))
        assert flushed == 1
        assert cache.resident_lines() == 0


class TestWorkingSetBehaviour:
    def test_fitting_working_set_has_high_hit_rate(self, cache):
        """A 4 KB working set streams through an 8 KB cache cleanly."""
        for _ in range(4):
            for offset in range(0, 4096, 32):
                cache.access(0x10_0000 + offset, False)
        # After the cold pass, everything hits.
        assert cache.stats.misses == 128
        assert cache.stats.hits == 3 * 128

    def test_oversized_working_set_thrashes(self, design_a):
        baseline, _ = build_cache_pair(design_a)
        cache = SetAssociativeCache(baseline)
        for _ in range(2):
            for offset in range(0, 64 * 1024, 32):
                cache.access(0x20_0000 + offset, False)
        assert cache.stats.miss_rate > 0.9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_direct_mapped_equivalence(seed, design_a):
    """With all but one way masked, the cache behaves direct-mapped:
    hit iff the last line mapped to that set matches."""
    baseline, _ = build_cache_pair(design_a)
    cache = SetAssociativeCache(baseline)
    cache.set_active_ways([False] * 7 + [True])
    rng = np.random.default_rng(seed)
    shadow: dict[int, int] = {}
    for address in rng.integers(0, 1 << 16, size=300):
        address = int(address)
        index = baseline.index_of(address)
        tag = baseline.tag_of(address)
        expected_hit = shadow.get(index) == tag
        result = cache.access(address, False)
        assert result.hit == expected_hit
        shadow[index] = tag
