"""Pluggable cell technologies — the only sanctioned bitcell entry point.

This package is the redesigned surface over what used to be direct
``repro.sram`` imports (a custom lint, ``tools/check_imports.py``,
enforces that from now on).  It has three parts:

* the **protocol** (:mod:`repro.cells.protocol`) —
  :class:`CellTechnology` / :class:`SizedCell` structural interfaces
  covering topology, area, energy loading, leakage, failure probability,
  retention/refresh terms and canonical identity;
* the **implementations** — the SRAM stack (re-exported unchanged from
  :mod:`repro.sram`, whose canonical forms and job keys this package
  deliberately does not touch) plus the first dynamic technologies,
  :mod:`repro.cells.edram` (1T1C) and :mod:`repro.cells.gain` (2T);
* the **registry** (:mod:`repro.cells.registry`) — name-keyed lookup
  that sweep axes, the CLI and experiment drivers resolve through.

Everything the SRAM package exported is re-exported here, so migrating
a consumer is a one-line import change.
"""

from repro.cells.edram import EDRAM_1T1C, EDRAMCellDesign, EDRAMTechnology
from repro.cells.gain import GAIN_2T, GainCellDesign, GainCellTechnology
from repro.cells.protocol import (
    MAX_SIZE_FACTOR,
    MINIMAL_SIZE_STEP,
    CellTechnology,
    SizedCell,
    analytic_size_for_pf,
    quantize_size,
    technology_tokens,
)
from repro.cells.registry import (
    register_technology,
    registered_technologies,
    requires_hard_fault_coding,
    technology_by_name,
)
from repro.sram.cells import (
    CELL_6T,
    CELL_8T,
    CELL_10T,
    CellDesign,
    CellTopology,
    TransistorSpec,
    cell_by_name,
)
from repro.sram.energy import CellElectricals
from repro.sram.failure import CellFailureModel, analytic_pf, beta_for_pf
from repro.sram.margins import MarginModel
from repro.sram.montecarlo import (
    ImportanceSamplingResult,
    importance_sampling_pf,
    monte_carlo_pf,
)
from repro.sram.sizing import minimal_size_step, size_for_pf

__all__ = [
    # protocol
    "CellTechnology",
    "SizedCell",
    "MINIMAL_SIZE_STEP",
    "MAX_SIZE_FACTOR",
    "analytic_size_for_pf",
    "quantize_size",
    "technology_tokens",
    # registry
    "technology_by_name",
    "registered_technologies",
    "register_technology",
    "requires_hard_fault_coding",
    # dynamic technologies
    "EDRAMTechnology",
    "EDRAMCellDesign",
    "EDRAM_1T1C",
    "GainCellTechnology",
    "GainCellDesign",
    "GAIN_2T",
    # SRAM compatibility shim
    "TransistorSpec",
    "CellTopology",
    "CellDesign",
    "CELL_6T",
    "CELL_8T",
    "CELL_10T",
    "cell_by_name",
    "CellElectricals",
    "MarginModel",
    "CellFailureModel",
    "analytic_pf",
    "beta_for_pf",
    "monte_carlo_pf",
    "importance_sampling_pf",
    "ImportanceSamplingResult",
    "size_for_pf",
    "minimal_size_step",
]
