"""Monte Carlo and importance-sampling failure estimation (Chen substitute).

The paper sizes every bitcell "using the analysis based on importance
sampling proposed by Chen et al. [ICCAD 2007]".  That analysis estimates the
tiny failure probabilities of SRAM cells (1e-6 .. 1e-9) by sampling the
per-transistor threshold-voltage deviations from a *mean-shifted* proposal
centred on the most probable failure point, then re-weighting each sample by
the likelihood ratio between the true and the shifted Gaussian.

We reimplement exactly that estimator on top of the analytic margin model —
the only difference to the original is that margins come from
:class:`repro.sram.margins.MarginModel` instead of HSPICE runs, so the
estimator can be validated against the closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sram.cells import CellDesign
from repro.sram.margins import MarginModel
from repro.tech.variation import VariationModel


@dataclass(frozen=True)
class ImportanceSamplingResult:
    """Outcome of an importance-sampling run.

    Attributes:
        pf: the failure-probability estimate.
        stderr: standard error of the estimate.
        samples: number of samples used.
        hits: number of failing samples (before weighting).
    """

    pf: float
    stderr: float
    samples: int
    hits: int

    @property
    def relative_error(self) -> float:
        """stderr / pf (inf when the estimate is zero)."""
        if self.pf <= 0:
            return float("inf")
        return self.stderr / self.pf


def monte_carlo_pf(
    design: CellDesign,
    vdd: float,
    samples: int,
    rng: np.random.Generator,
) -> ImportanceSamplingResult:
    """Plain Monte Carlo estimate of the cell failure probability.

    Only practical for Pf above ~1e-4; the importance-sampling variant
    below covers the realistic sizing range.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    model = MarginModel(design)
    variation = VariationModel(node=design.node)
    offsets = variation.sample_offsets(model.widths, rng, samples)
    margins = model.sample_margins(vdd, offsets)
    fails = margins < 0.0
    hits = int(np.count_nonzero(fails))
    pf = hits / samples
    stderr = float(np.sqrt(max(pf * (1.0 - pf), 1e-300) / samples))
    return ImportanceSamplingResult(pf=pf, stderr=stderr, samples=samples, hits=hits)


def importance_sampling_pf(
    design: CellDesign,
    vdd: float,
    samples: int,
    rng: np.random.Generator,
    shift_scale: float = 1.0,
) -> ImportanceSamplingResult:
    """Mean-shift importance-sampling estimate of the failure probability.

    The proposal distribution is the variation Gaussian translated to
    ``shift_scale`` times the most probable failure point (the "design
    point"); each failing sample is weighted by the density ratio
    ``p(x)/q(x)``.  With ``shift_scale = 1`` roughly half the samples fail,
    which is what gives the estimator its efficiency at tiny Pf.

    Args:
        design: the sized cell.
        vdd: supply voltage.
        samples: number of shifted samples.
        rng: random stream.
        shift_scale: multiplier on the design-point shift (1.0 is optimal
            for a linear limit state; values != 1 are useful in tests).
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    model = MarginModel(design)
    variation = VariationModel(node=design.node)
    shift = model.most_probable_failure_point(vdd) * shift_scale

    offsets = variation.sample_offsets(
        model.widths, rng, samples, mean_shift=shift
    )
    margins = model.sample_margins(vdd, offsets)
    fails = margins < 0.0
    log_ratio = variation.log_density_ratio(offsets, model.widths, shift)
    # Clip to avoid overflow in pathological corners; weights beyond e^80
    # carry no practical estimate mass at the sample counts we use.
    weights = np.exp(np.clip(log_ratio, -80.0, 80.0)) * fails

    pf = float(np.mean(weights))
    stderr = float(np.std(weights, ddof=1) / np.sqrt(samples))
    return ImportanceSamplingResult(
        pf=pf,
        stderr=stderr,
        samples=samples,
        hits=int(np.count_nonzero(fails)),
    )
