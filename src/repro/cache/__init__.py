"""Functional cache modelling: configuration, simulation, faults, EDC layer.

* :mod:`repro.cache.config` — the hybrid cache *configuration* language:
  way groups (HP ways / ULE ways) with their bitcells, per-mode protection
  schemes and per-mode activation, plus derived geometry;
* :mod:`repro.cache.replacement` — LRU / FIFO / random / tree-PLRU;
* :mod:`repro.cache.setassoc` — a set-associative write-back,
  write-allocate functional simulator with per-way-group statistics;
* :mod:`repro.cache.hybrid` — mode switching (way gating + flush) on top
  of the set-associative core;
* :mod:`repro.cache.edc_layer` — stored-word simulation through stuck-at
  fault maps and the EDC codecs (used by the reliability validation
  experiments).
"""

from repro.cache.config import CacheConfig, WayGroupConfig
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    PlruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.cache.setassoc import AccessResult, CacheStats, SetAssociativeCache
from repro.cache.hybrid import HybridCache
from repro.cache.edc_layer import ProtectedArray, WordReadRecord

__all__ = [
    "CacheConfig",
    "WayGroupConfig",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "PlruPolicy",
    "make_policy",
    "SetAssociativeCache",
    "HybridCache",
    "AccessResult",
    "CacheStats",
    "ProtectedArray",
    "WordReadRecord",
]
