"""Dense GF(2) linear algebra on numpy uint8 matrices.

Matrices hold values in {0, 1}; arithmetic is mod 2.  Used by the Hsiao
construction and by tests that verify parity-check/generator consistency.
"""

from __future__ import annotations

import numpy as np


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.uint8) & 1
    if array.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return array.copy()


def rref(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns:
        (reduced matrix, list of pivot column indices).
    """
    work = _as_gf2(matrix)
    rows, cols = work.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        support = np.nonzero(work[row:, col])[0]
        if len(support) == 0:
            continue
        pivot_row = row + int(support[0])
        if pivot_row != row:
            work[[row, pivot_row]] = work[[pivot_row, row]]
        # Eliminate the column everywhere else.
        mask = work[:, col].copy()
        mask[row] = 0
        work[mask == 1] ^= work[row]
        pivots.append(col)
        row += 1
    return work, pivots


def rank(matrix: np.ndarray) -> int:
    """Rank over GF(2)."""
    _, pivots = rref(matrix)
    return len(pivots)


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """A basis of the right nullspace, rows = basis vectors.

    Satisfies ``matrix @ basis.T % 2 == 0``.
    """
    reduced, pivots = rref(matrix)
    rows, cols = reduced.shape
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for index, free in enumerate(free_cols):
        basis[index, free] = 1
        for pivot_row, pivot_col in enumerate(pivots):
            if reduced[pivot_row, free]:
                basis[index, pivot_col] = 1
    return basis


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2)."""
    return (np.asarray(a, dtype=np.uint8) @ np.asarray(b, dtype=np.uint8)) & 1


def solve_is_consistent(matrix: np.ndarray, rhs: np.ndarray) -> bool:
    """Whether ``matrix @ x = rhs`` has a solution over GF(2)."""
    augmented = np.concatenate(
        [_as_gf2(matrix), _as_gf2(rhs.reshape(-1, 1))], axis=1
    )
    return rank(matrix) == rank(augmented)
