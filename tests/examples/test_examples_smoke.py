"""Smoke tests for the ``examples/`` scripts.

Every example must at least import (so API churn cannot silently rot
them), and the sensor-node lifetime example — the runtime subsystem's
showcase — is additionally pinned *against the library*: its reported
numbers must equal what :func:`repro.runtime.simulate_schedule`
computes directly, so the script cannot drift back into hand-rolled
duty-cycle arithmetic.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "fault_injection_demo",
        "design_space_exploration",
        "sensor_node_lifetime",
    ],
)
def test_example_imports(name):
    module = _load(name)
    assert hasattr(module, "main")


class TestSensorNodeLifetime:
    @pytest.fixture(scope="class")
    def module(self):
        return _load("sensor_node_lifetime")

    @pytest.fixture(scope="class")
    def results(self, module):
        return module.run_lifetime(
            monitor_length=8_000,
            burst_length=2_000,
            bursts=2,
            seed=7,
            verbose=False,
        )

    def test_proposed_extends_lifetime(self, results):
        assert results["extension"] > 1.0

    def test_matches_library_schedule(self, module, results):
        """The example's numbers come from repro.runtime, not arithmetic."""
        from repro.core import Scenario, build_chips, design_scenario
        from repro.runtime import UtilizationThreshold, simulate_schedule
        from repro.workloads import sensor_node_trace

        chips = build_chips(design_scenario(Scenario.A))
        trace = sensor_node_trace(
            monitor_length=8_000, burst_length=2_000, bursts=2, seed=7
        )
        for label, chip in (
            ("baseline (6T+10T)", chips.baseline),
            ("proposed (6T+8T+SECDED)", chips.proposed),
        ):
            schedule = simulate_schedule(
                chip, trace, UtilizationThreshold(), epoch_length=2_000
            )
            expected_days = (
                module.COIN_CELL_JOULES
                / schedule.average_power
                / 86_400
            )
            assert results[label] == pytest.approx(expected_days)

    def test_schedule_actually_switches(self, module):
        """The showcased pattern exercises mode transitions."""
        from repro.core import Scenario, build_chips, design_scenario
        from repro.runtime import UtilizationThreshold, simulate_schedule
        from repro.workloads import sensor_node_trace

        chips = build_chips(design_scenario(Scenario.A))
        trace = sensor_node_trace(
            monitor_length=8_000, burst_length=2_000, bursts=2, seed=7
        )
        schedule = simulate_schedule(
            chips.proposed,
            trace,
            UtilizationThreshold(),
            epoch_length=2_000,
        )
        assert schedule.switches >= 2
        assert schedule.transition_energy > 0
