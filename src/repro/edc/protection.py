"""Protection schemes as used by the paper's cache scenarios.

The paper fixes word granularity and redundancy (Section III-C / IV-A.3):
tag words of 26 bits and data words of 32 bits, extended with **7 check
bits for SECDED** and **13 check bits for DECTED** each.  This module maps
the scheme names to concrete codec instances with exactly those geometries.
"""

from __future__ import annotations

import enum
from functools import lru_cache

from repro.edc.base import LinearBlockCode
from repro.edc.dected import DectedCode
from repro.edc.hsiao import HsiaoSecDed
from repro.edc.parity import ParityCode

#: Paper anchor: SECDED check bits per tag/data word (Section III-C).
SECDED_CHECK_BITS = 7
#: Paper anchor: DECTED check bits per tag/data word (12 BCH + 1 parity).
DECTED_CHECK_BITS = 13


class ProtectionScheme(enum.Enum):
    """Per-way word protection, ordered by strength."""

    NONE = "none"
    PARITY = "parity"
    SECDED = "secded"
    DECTED = "dected"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def hard_fault_budget(self) -> int:
        """Hard faults per word that the scheme can absorb while keeping
        the baseline's soft-error coverage (the paper's Eq. 1 upper limit).

        SECDED in scenario A spends its single correction on the hard
        fault; DECTED in scenario B spends one correction on the hard
        fault and keeps one for a soft error.  Either way the *hard*
        budget is 1; uncoded or parity words have none.
        """
        if self in (ProtectionScheme.SECDED, ProtectionScheme.DECTED):
            return 1
        return 0


def check_bits_for(scheme: ProtectionScheme, data_bits: int) -> int:
    """Redundancy bits the scheme adds to a ``data_bits`` word."""
    del data_bits  # the paper uses fixed redundancy for 26/32-bit words
    if scheme is ProtectionScheme.NONE:
        return 0
    if scheme is ProtectionScheme.PARITY:
        return 1
    if scheme is ProtectionScheme.SECDED:
        return SECDED_CHECK_BITS
    return DECTED_CHECK_BITS


@lru_cache(maxsize=None)
def make_code(
    scheme: ProtectionScheme, data_bits: int
) -> LinearBlockCode | None:
    """Instantiate the codec for ``scheme`` over ``data_bits``-bit words.

    Returns ``None`` for :data:`ProtectionScheme.NONE`.  Codecs are cached:
    they are immutable and construction (Hsiao column selection, BCH
    generator) is not free.
    """
    if scheme is ProtectionScheme.NONE:
        return None
    if scheme is ProtectionScheme.PARITY:
        return ParityCode(data_bits)
    if scheme is ProtectionScheme.SECDED:
        return HsiaoSecDed(data_bits, check_bits=SECDED_CHECK_BITS)
    if scheme is ProtectionScheme.DECTED:
        code = DectedCode(data_bits)
        if code.check_bits != DECTED_CHECK_BITS:
            raise AssertionError(
                f"DECTED geometry drifted: {code.check_bits} check bits"
            )
        return code
    raise ValueError(f"unknown scheme {scheme!r}")
