"""Bench ``tab-area``: cache area, baseline vs proposed.

The paper claims area savings without quantifying them; the bench records
the measured figure (the ULE way shrinks >2x; whole-cache area drops
~20-25 % since the 6T HP ways are shared).
"""

from conftest import record_report, run_once

from repro.experiments.area_table import run_area


def test_area_table(benchmark):
    result = run_once(benchmark, run_area)
    record_report("tab-area", result.render())

    for scenario in ("A", "B"):
        assert 0.10 < result.data["savings"][scenario] < 0.45
        base_ule = result.data[f"{scenario}-baseline"]["ule"]
        prop_ule = result.data[f"{scenario}-proposed"]["ule"]
        assert base_ule > 1.8 * prop_ule  # the ULE way itself shrinks >2x
        # HP ways are identical between the configurations.
        assert abs(
            result.data[f"{scenario}-baseline"]["hp"]
            - result.data[f"{scenario}-proposed"]["hp"]
        ) < 1e-6 * result.data[f"{scenario}-baseline"]["hp"]
