#!/usr/bin/env python3
"""Dependency-free documentation checks (the local half of the CI gate).

Validates what ``mkdocs build --strict`` would reject, without needing
mkdocs installed:

* ``mkdocs.yml`` parses and its ``nav`` entries point at existing
  files under ``docs/``;
* every markdown file under ``docs/`` is reachable from the nav
  (orphan pages rot silently);
* every relative markdown link inside ``docs/`` resolves to a file
  that exists (external http(s) links are left alone);
* every local file the README links to exists.

Run directly (``python tools/check_docs.py``) or through the test
suite (``tests/docs/``); CI runs it next to the real mkdocs build.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Inline markdown links: [text](target), skipping images and code.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: A link whose destination starts with whitespace (e.g. wrapped across
#: a line break) — CommonMark renders it as literal text, not a link.
_WRAPPED_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(\s")


def _nav_files(nav) -> list[str]:
    """Flatten an mkdocs nav tree into its file targets."""
    files: list[str] = []
    for entry in nav:
        if isinstance(entry, str):
            files.append(entry)
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    files.append(value)
                else:
                    files.extend(_nav_files(value))
    return files


def check_mkdocs_nav(errors: list[str]) -> None:
    """The nav lists existing files, and no docs page is orphaned."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - yaml ships with the image
        print("[check_docs] pyyaml unavailable; skipping nav check")
        return
    config = yaml.safe_load(
        (REPO / "mkdocs.yml").read_text(encoding="utf-8")
    )
    nav = config.get("nav", [])
    nav_files = _nav_files(nav)
    if not nav_files:
        errors.append("mkdocs.yml: nav is empty")
    for target in nav_files:
        if not (DOCS / target).is_file():
            errors.append(f"mkdocs.yml: nav target missing: {target}")
    on_disk = {
        str(path.relative_to(DOCS))
        for path in DOCS.rglob("*.md")
    }
    for orphan in sorted(on_disk - set(nav_files)):
        errors.append(f"docs/{orphan}: not reachable from mkdocs nav")


def _check_links(path: pathlib.Path, base: pathlib.Path,
                 errors: list[str]) -> None:
    text = path.read_text(encoding="utf-8")
    for match in _WRAPPED_LINK.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        errors.append(
            f"{path.relative_to(REPO)}:{line}: link destination "
            "starts with whitespace (wrapped across a line?) — "
            "renders as literal text"
        )
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # same-page anchor
        resolved = (base / target).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO)}: broken link -> {target}"
            )


def check_doc_links(errors: list[str]) -> None:
    """Every relative link inside docs/ resolves."""
    for path in sorted(DOCS.rglob("*.md")):
        _check_links(path, path.parent, errors)


def check_readme_links(errors: list[str]) -> None:
    """Every local file the README references exists."""
    readme = REPO / "README.md"
    if readme.is_file():
        _check_links(readme, REPO, errors)


def main() -> int:
    """Run every check; print findings; non-zero on any failure."""
    errors: list[str] = []
    check_mkdocs_nav(errors)
    check_doc_links(errors)
    check_readme_links(errors)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    pages = len(list(DOCS.rglob("*.md")))
    print(f"[check_docs] ok: {pages} pages, nav complete, links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
