"""Minimal ASCII table rendering used by the experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


class Table:
    """A simple left/right-aligned monospace table.

    >>> t = Table(["name", "value"])
    >>> t.add_row(["alpha", 1.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row; cells are stringified (floats to 4 significant digits)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}")
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def add_separator(self) -> None:
        """Append a horizontal separator row."""
        self.rows.append(["---"] * len(self.columns))

    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(cells)
            )

        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.columns))
        lines.append(rule)
        for row in self.rows:
            if row[0] == "---":
                lines.append(rule)
            else:
                lines.append(fmt(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
