"""Hybrid-operation cache: mode switching over the set-associative core.

At HP mode every way is powered; on the switch to ULE mode the HP ways are
flushed (dirty lines written back) and gated off — "the processor itself is
responsible for gating or ungating the corresponding cache ways (or
corresponding EDC block) on a Vcc change" (Section III-B).  Switching back
re-enables the HP ways empty.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.replacement import ReplacementPolicy
from repro.cache.setassoc import AccessResult, SetAssociativeCache
from repro.tech.operating import Mode


class HybridCache:
    """A set-associative cache with HP/ULE way gating."""

    def __init__(
        self,
        config: CacheConfig,
        policy: str | ReplacementPolicy = "lru",
        mode: Mode = Mode.HP,
        seed: int = 0,
        disabled_lines: tuple[tuple[int, int], ...] = (),
        transients=None,
    ):
        self.config = config
        self.core = SetAssociativeCache(
            config,
            policy=policy,
            seed=seed,
            disabled_lines=disabled_lines,
            transients=transients,
        )
        self.mode_switches = 0
        self._mode = mode
        self.core.set_active_ways(config.active_way_mask(mode))

    @property
    def mode(self) -> Mode:
        """The current operating mode."""
        return self._mode

    @property
    def stats(self):
        """The underlying counters."""
        return self.core.stats

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Probe/allocate in the current mode."""
        return self.core.access(address, is_write)

    def set_mode(self, mode: Mode) -> int:
        """Switch operating mode; returns writebacks caused by the flush.

        Ways leaving the powered set are flushed before gating; ways
        joining it come back empty (their contents were lost to gating).
        """
        if mode is self._mode:
            return 0
        old_mask = self.config.active_way_mask(self._mode)
        new_mask = self.config.active_way_mask(mode)
        leaving = [
            way
            for way, (was, now) in enumerate(zip(old_mask, new_mask))
            if was and not now
        ]
        entering = [
            way
            for way, (was, now) in enumerate(zip(old_mask, new_mask))
            if now and not was
        ]
        writebacks = self.core.flush_ways(leaving) if leaving else 0
        if entering:
            # Gated ways lost state; make sure they rejoin empty.
            self.core.flush_ways(entering)
        self._mode = mode
        self.core.set_active_ways(new_mask)
        self.mode_switches += 1
        return writebacks

    def active_ways(self) -> list[int]:
        """Powered way indices in the current mode."""
        return self.core.active_ways
