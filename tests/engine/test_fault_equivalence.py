"""Backend equivalence and job identity under die fault maps.

The fault-map edge cases of the population subsystem:

* a zero-fault die is byte-identical to the no-fault-map path (same
  counters, same energy, same engine job key);
* a set — or a whole cache — with every way faulty degrades
  gracefully: accesses bypass to memory, nothing crashes, and both
  backends agree bit-for-bit;
* partial disables reduce the effective associativity per set,
  bit-identically across backends.
"""

import numpy as np
import pytest

from repro.engine.backends import simulate_cache
from repro.engine.jobs import SimulationJob, TraceSpec, execute_job, job_key
from repro.faults.maps import CacheFaultMap, DieFaultMap
from repro.faults.sampling import sample_die_fault_map
from repro.tech.operating import Mode
from repro.workloads.mediabench import generate_trace


def _results_equal(left, right) -> bool:
    return (
        left.il1_stats == right.il1_stats
        and left.dl1_stats == right.dl1_stats
        and left.timing == right.timing
        and list(left.energy.items()) == list(right.energy.items())
    )


def _job(chips, fault_map=None, mode=Mode.ULE):
    return SimulationJob(
        chip=chips.proposed.config,
        trace=TraceSpec("adpcm_c", 3_000, 42),
        mode=mode,
        fault_map=fault_map,
    )


def _all_lines(config, mode):
    ways = [
        way
        for way, active in enumerate(config.active_way_mask(mode))
        if active
    ]
    return tuple(
        (set_index, way)
        for set_index in range(config.sets)
        for way in ways
    )


class TestZeroFaultDie:
    def test_result_identical_to_no_map(self, chips_a):
        plain = execute_job(_job(chips_a))
        empty = execute_job(_job(chips_a, fault_map=DieFaultMap()))
        assert _results_equal(plain, empty)

    def test_job_key_identical_to_no_map(self, chips_a):
        """Clean dies must share cache entries with map-less runs."""
        assert job_key(_job(chips_a)) == job_key(
            _job(chips_a, fault_map=DieFaultMap())
        )

    def test_faulty_die_changes_job_key(self, chips_a):
        faulty = DieFaultMap(
            entries=(
                CacheFaultMap(
                    cache="il1", mode=Mode.ULE, disabled=((0, 7),)
                ),
            )
        )
        assert job_key(_job(chips_a, fault_map=faulty)) != job_key(
            _job(chips_a)
        )

    def test_equal_maps_share_job_key(self, chips_a):
        entries = (
            CacheFaultMap(
                cache="dl1", mode=Mode.ULE, disabled=((1, 7), (4, 7))
            ),
        )
        a = _job(chips_a, fault_map=DieFaultMap(entries=entries))
        b = _job(chips_a, fault_map=DieFaultMap(entries=entries))
        assert job_key(a) == job_key(b)


class TestGracefulDegradation:
    def test_whole_cache_faulty_still_runs(self, chips_a):
        """Every ULE line disabled in both arrays: everything misses,
        nothing allocates, and the run completes with finite EPI."""
        config = chips_a.proposed.config
        fault_map = DieFaultMap(
            entries=(
                CacheFaultMap(
                    cache="il1",
                    mode=Mode.ULE,
                    disabled=_all_lines(config.il1, Mode.ULE),
                ),
                CacheFaultMap(
                    cache="dl1",
                    mode=Mode.ULE,
                    disabled=_all_lines(config.dl1, Mode.ULE),
                ),
            )
        )
        results = {
            backend: execute_job(
                SimulationJob(
                    chip=config,
                    trace=TraceSpec("adpcm_c", 3_000, 42),
                    mode=Mode.ULE,
                    backend=backend,
                    fault_map=fault_map,
                )
            )
            for backend in ("vectorized", "reference")
        }
        assert _results_equal(
            results["vectorized"], results["reference"]
        )
        result = results["vectorized"]
        for stats in (result.il1_stats, result.dl1_stats):
            assert stats.hits == 0
            assert stats.fills == 0
            assert stats.bypasses == stats.misses == stats.accesses
        assert np.isfinite(result.epi)
        # Strictly worse than a clean die: every access pays the miss.
        clean = execute_job(_job(chips_a))
        assert result.timing.cycles > clean.timing.cycles

    def test_fills_plus_bypasses_equals_misses(self, chips_a):
        config = chips_a.proposed.config.il1
        trace = generate_trace("adpcm_c", length=2_000, seed=1)
        disabled = tuple(
            (set_index, 7) for set_index in range(0, config.sets, 2)
        )
        stats = simulate_cache(
            config, Mode.ULE, trace.pc, disabled_lines=disabled
        )
        assert stats.fills + stats.bypasses == stats.misses
        assert stats.bypasses > 0


class TestBackendEquivalence:
    @pytest.mark.parametrize("mode", [Mode.ULE, Mode.HP])
    def test_sampled_maps_agree_across_backends(self, chips_a, mode):
        """Low-supply sampled maps (dense faults) must simulate
        bit-identically on both backends."""
        config = chips_a.proposed.config
        fault_map = sample_die_fault_map(
            config.il1,
            config.dl1,
            seed=123,
            die=0,
            mode_vdds={Mode.ULE: 0.30, Mode.HP: 0.60},
        )
        assert not fault_map.is_fault_free
        trace = generate_trace("g721_c", length=4_000, seed=9)
        outcomes = [
            chips_a.proposed.run(
                trace, mode, backend=backend, fault_map=fault_map
            )
            for backend in ("vectorized", "reference")
        ]
        assert _results_equal(*outcomes)

    def test_partial_disable_equivalence_hp(self, chips_a):
        """Reduced per-set associativity at HP mode (8 ways)."""
        config = chips_a.proposed.config
        disabled = tuple(
            (set_index, way)
            for set_index in range(config.il1.sets)
            for way in ((0, 3) if set_index % 2 else (5,))
        )
        trace = generate_trace("g721_c", length=4_000, seed=9)
        reference = simulate_cache(
            config.il1, Mode.HP, trace.pc,
            backend="reference", disabled_lines=disabled,
        )
        vectorized = simulate_cache(
            config.il1, Mode.HP, trace.pc,
            backend="vectorized", disabled_lines=disabled,
        )
        assert reference == vectorized
        assert vectorized.bypasses == 0

    def test_out_of_range_lines_rejected(self, chips_a):
        config = chips_a.proposed.config.il1
        trace = generate_trace("adpcm_c", length=500, seed=1)
        for bad in ((config.sets, 0), (0, config.ways)):
            for backend in ("vectorized", "reference"):
                with pytest.raises(ValueError, match="out of range"):
                    simulate_cache(
                        config, Mode.HP, trace.pc,
                        backend=backend, disabled_lines=(bad,),
                    )
