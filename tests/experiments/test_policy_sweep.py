"""Tests for the ``sweep-policy`` experiment driver."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("sweep-policy", trace_length=7_500, seed=3)


class TestPolicySweep:
    def test_crosses_policies_and_candidates(self, result):
        rows = result.data["rows"]
        candidates = {row["candidate"] for row in rows}
        policies = {row["policy"] for row in rows}
        assert len(candidates) >= 2  # cell/scheme axes actually sweep
        assert {p.split("(")[0] for p in policies} == {
            "static", "utilization", "oracle"
        }
        assert len(rows) == len(candidates) * len(policies)

    def test_frontier_nonempty_and_valid(self, result):
        rows = result.data["rows"]
        frontier = result.data["frontier"]
        assert frontier
        assert all(0 <= index < len(rows) for index in frontier)

    def test_oracle_is_energy_floor(self, result):
        comparison = {
            c.quantity: c for c in result.comparisons
        }[
            "oracle schedule is the per-candidate energy floor "
            "(1 = holds)"
        ]
        assert comparison.measured == 1.0

    def test_renders_table(self, result):
        text = result.render()
        assert "Policy sweep" in text
        assert "pareto" in text

    def test_custom_axes_and_budget(self):
        result = run_experiment(
            "sweep-policy",
            trace_length=7_500,
            seed=3,
            axes={"ule_cell": ("8T",), "ule_scheme": ("secded",)},
            policies=("static", "budget", "oracle"),
            budget_mj=1e-3,
        )
        rows = result.data["rows"]
        assert {row["candidate"] for row in rows} == {
            "x8k-l32-7+1-8t-secded-hpnone-350mv-lru"
        }
        assert any(
            row["policy"].startswith("budget") for row in rows
        )
