"""The job-level description of soft-error injection: :class:`TransientSpec`.

A spec is pure *content*: a frozen, canonical-walkable dataclass the
engine's job keys hash (see :func:`repro.engine.jobs.job_key`).  It
carries the physical upset model (the :class:`repro.reliability.
soft_errors.SoftErrorModel` parameters), the scrub-interval model, the
recovery-latency constants and the injection seed — everything a worker
needs to rebuild the per-array samplers deterministically.

Real terrestrial upset rates are ~1e-15 per word per second: nothing
would ever strike inside a 20k-instruction trace.  ``acceleration``
scales the upset *rate* (the standard accelerated-injection move, as in
beam testing) so that events become observable in short simulations;
every reported FIT figure divides the acceleration back out, so the
physics stays honest.  ``acceleration=0`` (or a zero nominal FIT rate)
makes the spec *null*: the engine collapses such jobs onto the
spec-less key, mirroring the fault-free fault-map contract of PR 4.

This module is dependency-light (reliability only) so the engine's job
layer can import it without dragging the cache or cacti stacks in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability.soft_errors import SoftErrorModel


@dataclass(frozen=True)
class TransientSpec:
    """Soft-error injection parameters of one simulation job.

    Attributes:
        fit_per_mbit_nominal: upset rate at nominal Vdd in FIT/Mbit
            (forwarded to :class:`~repro.reliability.soft_errors.
            SoftErrorModel`).
        voltage_sensitivity: exponential SER growth per volt of supply
            reduction (forwarded to the model).
        vdd_nominal: reference supply of the FIT figure (forwarded).
        scrub_interval_seconds: period of the scrub engine.  Upsets
            accumulate per (word, interval) exposure window; each scrub
            pass rewrites every protected word, which is also what the
            scrub energy model charges.
        acceleration: multiplier on the upset rate, making strikes
            observable in short traces.  0 disables injection entirely
            (the spec becomes :attr:`is_null`).
        cycles_per_access: nominal cycles between consecutive cache
            accesses, used to place accesses on the wall clock (access
            ``i`` happens at ``i * cycles_per_access * cycle_time``).
            A deliberate pre-timing approximation: the real cycle count
            is only known *after* simulation, and both backends must
            agree on interval boundaries up front.
        correction_cycles: stall cycles charged per corrected read in
            way groups whose EDC decode is *off* the critical path
            (inline-EDC groups already pay their correction cycle in
            the hit latency).
        seed: root seed of the injection streams; each cache array
            derives its own child stream, so IL1 and DL1 decorrelate.
    """

    fit_per_mbit_nominal: float = 1000.0
    voltage_sensitivity: float = 3.0
    vdd_nominal: float = 1.0
    scrub_interval_seconds: float = 1e-3
    acceleration: float = 1.0
    cycles_per_access: float = 1.0
    correction_cycles: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fit_per_mbit_nominal < 0:
            raise ValueError("fit_per_mbit_nominal must be >= 0")
        if self.scrub_interval_seconds <= 0:
            raise ValueError("scrub_interval_seconds must be positive")
        if self.acceleration < 0:
            raise ValueError("acceleration must be >= 0")
        if self.cycles_per_access <= 0:
            raise ValueError("cycles_per_access must be positive")
        if self.correction_cycles < 0:
            raise ValueError("correction_cycles must be >= 0")
        if self.vdd_nominal <= 0:
            raise ValueError("vdd_nominal must be positive")

    @staticmethod
    def effective(
        spec: "TransientSpec | None",
    ) -> "TransientSpec | None":
        """Normalize a spec-or-None: null specs act like ``None``.

        The single home of the "disabled injection is no injection"
        contract — every consumer (job-key tokenization, ``Chip.run``,
        the population/runtime/exploration layers) normalizes through
        here, so the rule can never diverge between job identity and
        runtime behaviour.
        """
        if spec is None or spec.is_null:
            return None
        return spec

    @property
    def is_null(self) -> bool:
        """Whether the spec can never produce an upset.

        Null specs are semantically identical to passing no spec at
        all: the engine's job keys collapse them onto the spec-less
        key (``tests/engine/test_transient_equivalence.py`` pins that
        the simulated results agree byte-for-byte).
        """
        return self.acceleration == 0 or self.fit_per_mbit_nominal == 0

    def soft_error_model(self) -> SoftErrorModel:
        """The analytic upset model these parameters describe."""
        return SoftErrorModel(
            fit_per_mbit_nominal=self.fit_per_mbit_nominal,
            voltage_sensitivity=self.voltage_sensitivity,
            vdd_nominal=self.vdd_nominal,
        )

    def accelerated_rate_per_bit(self, vdd: float) -> float:
        """Per-bit upsets per second at ``vdd``, acceleration applied."""
        return (
            self.soft_error_model().upset_rate_per_bit(vdd)
            * self.acceleration
        )
