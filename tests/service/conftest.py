"""Fixtures for the fleet-service suites: jobs, schedulers, servers.

Scheduler-level tests run with ``workers=0`` and fake executors so the
fairness / quota / backpressure logic is exercised deterministically
and without simulating anything; the end-to-end API tests use real —
but tiny — simulation jobs.
"""

from __future__ import annotations

import pytest

from repro.engine.jobs import SimulationJob, TraceSpec, job_key
from repro.service.requests import JobRequest, resolve
from repro.service.scheduler import ServiceScheduler
from repro.tech.operating import Mode


@pytest.fixture(scope="session")
def job_maker(chips_a):
    """A factory of distinct (by seed/length) real simulation jobs."""

    def make(seed: int = 0, length: int = 1000, mode=Mode.ULE):
        return SimulationJob(
            chip=chips_a.proposed.config,
            trace=TraceSpec("adpcm_c", length, seed),
            mode=mode,
        )

    return make


@pytest.fixture(scope="session")
def tiny_requests():
    """Ten distinct wire-level requests resolving to fast jobs."""
    return [
        JobRequest(
            benchmark=benchmark, trace_length=1000, seed=seed, mode=mode
        )
        for benchmark in ("adpcm_c", "epic_c")
        for mode in ("ule", "hp")
        for seed in (1, 2)
    ] + [
        JobRequest(benchmark="gsm_c", trace_length=1000, seed=3),
        JobRequest(benchmark="g721_c", trace_length=1000, seed=3),
    ]


@pytest.fixture()
def manual_scheduler():
    """A ``workers=0`` scheduler factory with an instant fake executor.

    Jobs complete only when the test pumps :meth:`run_next`, so queue
    order, quotas and backpressure are observed deterministically.
    """

    def make(execute=None, **kwargs):
        kwargs.setdefault("workers", 0)
        kwargs.setdefault("queue_capacity", 8)
        return ServiceScheduler(
            execute=execute or (lambda job: _stub_result(job)),
            **kwargs,
        )

    return make


def _stub_result(job):
    """A tiny, picklable stand-in for a RunResult."""
    return ("result-for", job_key(job))


@pytest.fixture(scope="session")
def distinct_jobs(chips_a):
    """A factory of ``count`` jobs with pairwise distinct hash keys."""

    def make(count: int) -> list[SimulationJob]:
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=TraceSpec("adpcm_c", 1000, seed),
                mode=Mode.ULE,
            )
            for seed in range(count)
        ]
        assert len({job_key(job) for job in jobs}) == count
        return jobs

    return make


@pytest.fixture(scope="session")
def resolved_requests(tiny_requests):
    """The engine jobs of :data:`tiny_requests`, resolved once."""
    return [resolve(request) for request in tiny_requests]
