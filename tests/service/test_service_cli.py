"""The ``serve``/``submit`` CLI surface, driven against a live service."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.service.api import serve_in_thread
from repro.service.scheduler import ServiceScheduler


@pytest.fixture(scope="module")
def served_port(tmp_path_factory):
    """A real service on an ephemeral port (store-backed, 2 workers)."""
    from repro.engine.session import DiskResultCache

    cache = DiskResultCache(tmp_path_factory.mktemp("cli-cache"))
    scheduler = ServiceScheduler(cache.store, workers=2)
    scheduler.start()
    handle = serve_in_thread(scheduler)
    yield handle.port
    handle.close()
    scheduler.stop()


def test_submit_runs_jobs_and_reports(served_port, capsys):
    status = main(
        [
            "submit",
            "--port", str(served_port),
            "--benchmarks", "adpcm_c,epic_c",
            "--seeds", "1,2",
            "--trace-length", "1000",
            "--tenant", "cli-test",
        ]
    )
    captured = capsys.readouterr()
    assert status == 0
    assert captured.out.count(" done ") == 4
    assert "EPI [pJ]" in captured.out
    assert "4 jobs via" in captured.out
    assert "service totals" in captured.err


def test_submit_is_idempotent_and_dedups(served_port, capsys):
    argv = [
        "submit",
        "--port", str(served_port),
        "--benchmarks", "gsm_c",
        "--seeds", "7",
        "--trace-length", "1000",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert " done " in captured.out
    assert "dedup" in captured.err


def test_submit_rejects_unknown_benchmark(served_port, capsys):
    status = main(
        ["submit", "--port", str(served_port), "--benchmarks", "no_such"]
    )
    assert status == 2
    assert "error:" in capsys.readouterr().err


def test_submit_without_service_fails_cleanly(capsys):
    # An ephemeral port that nothing listens on.
    status = main(
        ["submit", "--port", "1", "--benchmarks", "adpcm_c"]
    )
    assert status == 2
    assert "no service at" in capsys.readouterr().err


def test_serve_and_submit_share_cache_generations(tmp_path, capsys):
    """`serve --cache-dir` publishes where library sessions read."""
    from repro.engine.jobs import job_key
    from repro.engine.session import DiskResultCache
    from repro.service.requests import JobRequest, resolve

    cache = DiskResultCache(tmp_path)
    scheduler = ServiceScheduler(cache.store, workers=2)
    scheduler.start()
    handle = serve_in_thread(scheduler)
    try:
        status = main(
            [
                "submit",
                "--port", str(handle.port),
                "--benchmarks", "adpcm_c",
                "--seeds", "3",
                "--trace-length", "1000",
            ]
        )
        assert status == 0
        request = JobRequest(
            benchmark="adpcm_c", trace_length=1000, seed=3
        )
        key = job_key(resolve(request))
        # The entry landed in the generation a library session with the
        # same --cache-dir would consult.
        assert DiskResultCache(tmp_path).get(key) is not None
    finally:
        handle.close()
        scheduler.stop()
    capsys.readouterr()
