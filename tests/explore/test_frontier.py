"""Frontier metrics: hypervolume, reference points, knees, convergence."""

import numpy as np
import pytest

from repro.explore.frontier import (
    ConvergenceTracker,
    hypervolume,
    knee_index,
    objective_matrix,
    reference_point,
)
from repro.explore.pareto import Objective

MIN_BOTH = (Objective("cost"), Objective("delay"))


class TestObjectiveMatrix:
    def test_minimize_passes_through(self):
        rows = [{"cost": 1.0, "delay": 2.0}]
        matrix = objective_matrix(rows, MIN_BOTH)
        assert matrix.tolist() == [[1.0, 2.0]]

    def test_maximize_negates(self):
        objectives = (Objective("yield", maximize=True),)
        matrix = objective_matrix([{"yield": 0.9}], objectives)
        assert matrix.tolist() == [[-0.9]]


class TestReferencePoint:
    def test_margin_beyond_worst(self):
        rows = [{"cost": 0.0, "delay": 0.0}, {"cost": 2.0, "delay": 4.0}]
        ref = reference_point(rows, MIN_BOTH, margin=0.5)
        assert ref.tolist() == [3.0, 6.0]

    def test_constant_objective_still_padded(self):
        rows = [{"cost": 2.0, "delay": 1.0}, {"cost": 2.0, "delay": 3.0}]
        ref = reference_point(rows, MIN_BOTH, margin=0.1)
        assert ref[0] > 2.0
        assert ref[1] == pytest.approx(3.2)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            reference_point([], MIN_BOTH)


class TestHypervolume:
    def test_single_point_is_its_box(self):
        rows = [{"cost": 1.0, "delay": 1.0}]
        assert hypervolume(rows, MIN_BOTH, reference=[3.0, 2.0]) == (
            pytest.approx(2.0)
        )

    def test_staircase_union_not_sum(self):
        # Two overlapping boxes: 2x1 + 1x2 - 1x1 overlap = 3.
        rows = [
            {"cost": 1.0, "delay": 2.0},
            {"cost": 2.0, "delay": 1.0},
        ]
        assert hypervolume(rows, MIN_BOTH, reference=[3.0, 3.0]) == (
            pytest.approx(3.0)
        )

    def test_dominated_rows_add_nothing(self):
        frontier = [
            {"cost": 1.0, "delay": 2.0},
            {"cost": 2.0, "delay": 1.0},
        ]
        everything = frontier + [
            {"cost": 2.5, "delay": 2.5},
            {"cost": 2.0, "delay": 2.0},
        ]
        ref = [3.0, 3.0]
        assert hypervolume(everything, MIN_BOTH, ref) == (
            pytest.approx(hypervolume(frontier, MIN_BOTH, ref))
        )

    def test_rows_outside_reference_contribute_nothing(self):
        rows = [{"cost": 5.0, "delay": 5.0}]
        assert hypervolume(rows, MIN_BOTH, reference=[3.0, 3.0]) == 0.0

    def test_three_objectives_exact(self):
        objectives = MIN_BOTH + (Objective("area"),)
        rows = [{"cost": 0.0, "delay": 0.0, "area": 0.0}]
        value = hypervolume(rows, objectives, reference=[2.0, 3.0, 4.0])
        assert value == pytest.approx(24.0)

    def test_maximize_objective_counts_upward(self):
        objectives = (Objective("yield", maximize=True),)
        rows = [{"yield": 0.9}]
        # Minimization orientation: point -0.9 against reference -0.5.
        assert hypervolume(rows, objectives, reference=[-0.5]) == (
            pytest.approx(0.4)
        )

    def test_duplicate_points_count_once(self):
        rows = [{"cost": 1.0, "delay": 1.0}] * 3
        assert hypervolume(rows, MIN_BOTH, reference=[2.0, 2.0]) == (
            pytest.approx(1.0)
        )

    def test_submission_order_invariant(self):
        rows = [
            {"cost": 1.0, "delay": 4.0},
            {"cost": 2.0, "delay": 2.0},
            {"cost": 4.0, "delay": 1.0},
        ]
        ref = [5.0, 5.0]
        forward = hypervolume(rows, MIN_BOTH, ref)
        backward = hypervolume(rows[::-1], MIN_BOTH, ref)
        assert forward == backward

    def test_empty_rows_score_zero(self):
        assert hypervolume([], MIN_BOTH, reference=[1.0, 1.0]) == 0.0

    def test_bad_reference_shape_rejected(self):
        with pytest.raises(ValueError):
            hypervolume(
                [{"cost": 1.0, "delay": 1.0}], MIN_BOTH,
                reference=[1.0],
            )

    def test_default_reference_derived_from_rows(self):
        rows = [
            {"cost": 1.0, "delay": 2.0},
            {"cost": 2.0, "delay": 1.0},
        ]
        assert hypervolume(rows, MIN_BOTH) > 0.0


class TestKneeIndex:
    def test_balanced_row_wins(self):
        rows = [
            {"cost": 0.0, "delay": 1.0},
            {"cost": 0.2, "delay": 0.2},
            {"cost": 1.0, "delay": 0.0},
        ]
        assert knee_index(rows, MIN_BOTH) == 1

    def test_tie_breaks_to_lowest_index(self):
        rows = [
            {"cost": 0.0, "delay": 1.0},
            {"cost": 1.0, "delay": 0.0},
        ]
        assert knee_index(rows, MIN_BOTH) == 0

    def test_constant_objective_carries_no_weight(self):
        rows = [
            {"cost": 1.0, "delay": 5.0},
            {"cost": 1.0, "delay": 2.0},
        ]
        assert knee_index(rows, MIN_BOTH) == 1

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            knee_index([], MIN_BOTH)


class TestConvergenceTracker:
    def test_first_update_never_quiet(self):
        tracker = ConvergenceTracker(MIN_BOTH, rel_tol=1.0, patience=1)
        gain = tracker.update([{"cost": 1.0, "delay": 1.0}])
        assert gain == float("inf")
        assert not tracker.converged

    def test_converges_after_patience_quiet_rounds(self):
        tracker = ConvergenceTracker(MIN_BOTH, rel_tol=1e-3, patience=2)
        rows = [
            {"cost": 1.0, "delay": 3.0},
            {"cost": 3.0, "delay": 1.0},
        ]
        tracker.update(rows)
        tracker.update(rows)
        assert not tracker.converged
        tracker.update(rows)
        assert tracker.converged

    def test_improvement_resets_patience(self):
        tracker = ConvergenceTracker(MIN_BOTH, rel_tol=1e-3, patience=2)
        base = [{"cost": 2.0, "delay": 2.0}, {"cost": 3.0, "delay": 3.0}]
        tracker.update(base)
        tracker.update(base)
        better = base + [{"cost": 1.0, "delay": 1.0}]
        gain = tracker.update(better)
        assert gain > 1e-3
        assert not tracker.converged

    def test_gain_history_recorded(self):
        tracker = ConvergenceTracker(MIN_BOTH)
        rows = [{"cost": 1.0, "delay": 1.0}]
        tracker.update(rows)
        tracker.update(rows)
        assert len(tracker.history) == 2
        assert len(tracker.gains) == 2
        assert tracker.gains[1] == pytest.approx(0.0)

    def test_reference_inflation_is_not_improvement(self):
        # New *worse* rows grow the shared reference; the frontier did
        # not move, so the round must count as quiet.
        tracker = ConvergenceTracker(MIN_BOTH, rel_tol=1e-3, patience=1)
        frontier = [{"cost": 1.0, "delay": 1.0}]
        tracker.update(frontier)
        gain = tracker.update(
            frontier + [{"cost": 50.0, "delay": 50.0}]
        )
        assert gain == pytest.approx(0.0, abs=1e-9)
        assert tracker.converged

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(MIN_BOTH, rel_tol=-0.1)
        with pytest.raises(ValueError):
            ConvergenceTracker(MIN_BOTH, patience=0)
        tracker = ConvergenceTracker(MIN_BOTH)
        with pytest.raises(ValueError):
            tracker.update([])


class TestDeterminism:
    def test_hypervolume_bit_stable(self):
        rng = np.random.default_rng(5)
        rows = [
            {"cost": float(c), "delay": float(d)}
            for c, d in rng.random((40, 2))
        ]
        ref = reference_point(rows, MIN_BOTH)
        first = hypervolume(rows, MIN_BOTH, ref)
        again = hypervolume(list(reversed(rows)), MIN_BOTH, ref)
        assert first == again
