"""Figures 3 and 4: normalized EPI breakdowns at HP and ULE mode.

Figure 3 (HP mode, BigBench): the paper reports average EPI savings of
14 % (scenario A) and 12 % (scenario B), no performance degradation.

Figure 4 (ULE mode, SmallBench): average EPI reductions of 42 % (A) and
39 % (B), with ~3 % execution-time increase from the extra EDC cycle.
"""

from __future__ import annotations

from repro.core import calibration
from repro.core.evaluation import evaluate_scenario
from repro.core.scenarios import Scenario
from repro.experiments.report import ExperimentResult, PaperComparison
from repro.tech.operating import Mode

#: The paper's average savings per (scenario, mode), in percent.
PAPER_SAVINGS = {
    (Scenario.A, Mode.HP): 14.0,
    (Scenario.B, Mode.HP): 12.0,
    (Scenario.A, Mode.ULE): 42.0,
    (Scenario.B, Mode.ULE): 39.0,
}

#: The paper's execution-time overhead at ULE mode ("around 3 %").
PAPER_ULE_EXEC_OVERHEAD = 3.0


def _run_mode(
    experiment_id: str,
    title: str,
    mode: Mode,
    trace_length: int,
    seed: int,
) -> ExperimentResult:
    bodies = []
    comparisons = []
    data: dict = {}
    for scenario in (Scenario.A, Scenario.B):
        evaluation = evaluate_scenario(
            scenario, mode, trace_length=trace_length, seed=seed
        )
        bodies.append(evaluation.render())
        saving_pct = 100.0 * evaluation.average_epi_saving
        comparisons.append(
            PaperComparison(
                quantity=f"scenario {scenario.value} avg EPI saving",
                paper=PAPER_SAVINGS[(scenario, mode)],
                measured=saving_pct,
                unit="%",
            )
        )
        data[f"saving_{scenario.value}"] = saving_pct
        data[f"exec_ratio_{scenario.value}"] = (
            evaluation.average_exec_time_ratio
        )
        data[f"rows_{scenario.value}"] = {
            row.benchmark: row.epi_ratio for row in evaluation.rows
        }
        if mode is Mode.ULE:
            comparisons.append(
                PaperComparison(
                    quantity=(
                        f"scenario {scenario.value} exec-time overhead"
                    ),
                    paper=PAPER_ULE_EXEC_OVERHEAD,
                    measured=100.0
                    * (evaluation.average_exec_time_ratio - 1.0),
                    unit="%",
                )
            )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        body="\n\n".join(bodies),
        comparisons=tuple(comparisons),
        data=data,
    )


def run_fig3(
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """Regenerate Figure 3 (HP mode, BigBench)."""
    return _run_mode(
        "fig3",
        "Normalized average EPI at HP mode (scenarios A and B)",
        Mode.HP,
        trace_length,
        seed,
    )


def run_fig4(
    trace_length: int = calibration.DEFAULT_TRACE_LENGTH,
    seed: int = calibration.DEFAULT_SEED,
) -> ExperimentResult:
    """Regenerate Figure 4 (ULE mode, SmallBench)."""
    return _run_mode(
        "fig4",
        "Normalized EPI breakdowns at ULE mode (scenarios A and B)",
        Mode.ULE,
        trace_length,
        seed,
    )
