"""Synthetic MediaBench-like workloads (DESIGN.md substitution #5).

The paper evaluates on MediaBench, split into:

* **SmallBench** (adpcm_c/d, epic_c/d) — working sets that fit very small
  caches (~1 KB); these run in ULE mode;
* **BigBench** (g721_c/d, gsm_c/d, mpeg2_c/d) — larger working sets that
  need the full cache; these run in HP mode.

Since the original binaries cannot be run here, each benchmark is replaced
by a deterministic trace generator with a documented instruction mix, code
footprint, data working-set size and access-pattern blend chosen to match
the benchmark's published character.  The property that the paper's
figures actually rely on — SmallBench fits the single ULE way, BigBench
stresses all 8 ways — holds by construction and is asserted by tests.
"""

from repro.workloads.mediabench import (
    BenchmarkSpec,
    benchmark_by_name,
    generate_trace,
)
from repro.workloads.phases import (
    PhaseSpec,
    concat_traces,
    phased_trace,
    sensor_node_phases,
    sensor_node_trace,
)
from repro.workloads.ingest import (
    IngestError,
    ingest_file,
    parse_trace_lines,
    sniff_format,
    trace_from_file,
)
from repro.workloads.source import (
    IngestedSource,
    MixSource,
    SyntheticSource,
    TraceSource,
    as_sources,
    component_source,
)
from repro.workloads.store import CatalogEntry, StoredTraceRef, TraceStore
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    BIGBENCH,
    MIX_SUITES,
    SMALLBENCH,
    MixSpec,
    known_suite_names,
    suite_by_name,
    suite_for_mode,
)

__all__ = [
    "BenchmarkSpec",
    "generate_trace",
    "benchmark_by_name",
    "PhaseSpec",
    "concat_traces",
    "phased_trace",
    "sensor_node_phases",
    "sensor_node_trace",
    "SMALLBENCH",
    "BIGBENCH",
    "ALL_BENCHMARKS",
    "MIX_SUITES",
    "MixSpec",
    "known_suite_names",
    "suite_by_name",
    "suite_for_mode",
    "TraceSource",
    "SyntheticSource",
    "IngestedSource",
    "MixSource",
    "as_sources",
    "component_source",
    "TraceStore",
    "StoredTraceRef",
    "CatalogEntry",
    "IngestError",
    "ingest_file",
    "trace_from_file",
    "parse_trace_lines",
    "sniff_format",
]
