"""2T gain cell: asymmetric read/write ports, HyGain-style.

A gain cell stores data on the gate of a dedicated *read* transistor
and writes it through a separate *write* transistor — two devices, no
capacitor module, fully logic-compatible (HyGain, PAPERS.md).  The
decoupled read port gives non-destructive, full-drive reads ("gain"),
at the cost of a small storage node (a gate capacitance), hence a much
shorter retention time than 1T1C eDRAM.  That asymmetry — cheap dense
writes, strong reads, aggressive refresh — is exactly the port
structure the :class:`repro.cells.SizedCell` protocol must carry and
SRAM never exercised.

The failure model follows the same linearized-margin law as the rest of
the cell library, with Pelgrom sigmas on both devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.cells.protocol import MINIMAL_SIZE_STEP, analytic_size_for_pf
from repro.tech.node import TechnologyNode, ptm32
from repro.tech.transistor import Transistor


@dataclass(frozen=True)
class GainCellTechnology:
    """The 2T gain-cell family, before sizing.

    Attributes:
        name: cell family name ("GAIN").
        base_area_f2: cell area in F^2 at size factor 1 (two devices —
            denser than 6T, larger than 1T1C).
        write_width_mult / read_width_mult: device widths in ``wmin``
            units at size factor 1.
        retention_margin: storable level fraction that may decay before
            the read transistor stops distinguishing the state.
        retention_leak_fraction: suppressed off-state leakage of the
            write device relative to a standard logic transistor.
        read_leak_fraction: read-port subthreshold leak relative to a
            standard logic transistor (the read bitline is precharged).
        margin_slope / margin_v0: linearized margin law parameters.
        write_sensitivity / read_sensitivity: margin degradation per
            volt of local Vt shift on each device.
        vmin_functional: write-ability floor no up-sizing fixes.
    """

    name: str = "GAIN"
    base_area_f2: float = 95.0
    write_width_mult: float = 1.0
    read_width_mult: float = 1.3
    retention_margin: float = 0.25
    retention_leak_fraction: float = 0.05
    read_leak_fraction: float = 0.15
    margin_slope: float = 0.55
    margin_v0: float = 0.10
    write_sensitivity: float = 0.60
    read_sensitivity: float = 0.50
    vmin_functional: float = 0.22

    # ------------------------------------------- CellTechnology protocol
    @property
    def technology(self) -> str:
        """Canonical technology token."""
        return "gain-2t"

    def design(
        self,
        size_factor: float = 1.0,
        node: TechnologyNode | None = None,
    ) -> "GainCellDesign":
        """A sized 2T gain cell."""
        return GainCellDesign(self, size_factor, node or ptm32())

    def is_operable(self, vdd: float) -> bool:
        """Whether the cell functions at all at ``vdd``."""
        return vdd >= self.vmin_functional

    def failure_probability(
        self,
        vdd: float,
        size_factor: float = 1.0,
        node: TechnologyNode | None = None,
    ) -> float:
        """Hard bit-failure probability at (``vdd``, ``size_factor``)."""
        return self.design(size_factor, node).failure_probability(vdd)

    def size_for_pf(
        self,
        vdd: float,
        pf_target: float,
        node: TechnologyNode | None = None,
    ) -> float:
        """Smallest quantized size factor meeting ``pf_target``."""
        return analytic_size_for_pf(self, vdd, pf_target, node)

    def minimal_size_step(self, node: TechnologyNode | None = None) -> float:
        """The shared 5 % width grid."""
        del node  # single-node library; kept for interface symmetry
        return MINIMAL_SIZE_STEP


#: The registered 2T gain-cell technology instance.
GAIN_2T = GainCellTechnology()


@dataclass(frozen=True)
class GainCellDesign:
    """A sized 2T gain cell on a technology node.

    ``size_factor`` scales both device widths.  Unlike eDRAM, the
    storage capacitance *is* the read device's gate, so up-sizing buys
    margin, drive and retention at once.
    """

    topology: GainCellTechnology
    size_factor: float = 1.0
    node: TechnologyNode = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.node is None:
            object.__setattr__(self, "node", ptm32())
        if self.size_factor <= 0:
            raise ValueError("size_factor must be positive")

    def resized(self, size_factor: float) -> "GainCellDesign":
        """The same cell at a different size factor."""
        return GainCellDesign(self.topology, size_factor, self.node)

    # -------------------------------------------------------- identity
    @property
    def cell_name(self) -> str:
        """Short cell name."""
        return self.topology.name

    @property
    def technology(self) -> str:
        """Canonical technology token."""
        return self.topology.technology

    # --------------------------------------------------------- devices
    @property
    def write_width(self) -> float:
        """Physical width (m) of the write device."""
        return (
            self.topology.write_width_mult * self.node.wmin * self.size_factor
        )

    @property
    def read_width(self) -> float:
        """Physical width (m) of the read device."""
        return (
            self.topology.read_width_mult * self.node.wmin * self.size_factor
        )

    @cached_property
    def write_device(self) -> Transistor:
        """The sized write-port device."""
        return Transistor(width=self.write_width, kind="n", node=self.node)

    @cached_property
    def read_device(self) -> Transistor:
        """The sized read-port device (its gate is the storage node)."""
        return Transistor(width=self.read_width, kind="n", node=self.node)

    # ------------------------------------------------------------ ports
    @property
    def read_bitlines(self) -> int:
        """Single-ended read through the decoupled read port."""
        return 1

    @property
    def write_bitlines(self) -> int:
        """Single write bitline into the storage node."""
        return 1

    @property
    def differential_read(self) -> bool:
        """Gain-cell reads are single-ended."""
        return False

    @property
    def read_wordline_cap_per_cell(self) -> float:
        """Load on the read wordline (F): the read device's source line."""
        return self.read_device.drain_cap

    @property
    def write_wordline_cap_per_cell(self) -> float:
        """Gate load on the write wordline (F)."""
        return self.write_device.gate_cap

    @property
    def read_bitline_cap_per_cell(self) -> float:
        """Diffusion load on the read bitline (F)."""
        return self.read_device.drain_cap

    @property
    def write_bitline_cap_per_cell(self) -> float:
        """Diffusion load on the write bitline (F)."""
        return self.write_device.drain_cap

    # ------------------------------------------------------------- area
    @property
    def area(self) -> float:
        """Cell area (m^2); ~35 % is sizing-independent overhead."""
        scale = 0.35 + 0.65 * self.size_factor
        return self.topology.base_area_f2 * self.node.f2 * scale

    @property
    def width_m(self) -> float:
        """Physical cell width (m), laid out ~2:1 wide."""
        return (2.0 * self.area) ** 0.5

    @property
    def height_m(self) -> float:
        """Physical cell height (m)."""
        return (self.area / 2.0) ** 0.5

    # ------------------------------------------------------ electricals
    def leakage_current(self, vdd: float) -> float:
        """Static current of one cell (A).

        Two terms: the suppressed write-port leak off the storage node
        (the retention current) and the read-port subthreshold leak from
        the precharged read bitline.
        """
        topo = self.topology
        return topo.retention_leak_fraction * self.write_device.leakage_current(
            vdd
        ) + topo.read_leak_fraction * self.read_device.leakage_current(vdd)

    def leakage_power(self, vdd: float) -> float:
        """Static power of one cell (W)."""
        return self.leakage_current(vdd) * vdd

    def read_current(self, vdd: float) -> float:
        """Bitline discharge current of one reading cell (A).

        The stored level drives the read device's gate directly — the
        "gain" — so reads get nearly the full on-current.
        """
        return 0.9 * self.read_device.on_current(vdd)

    # -------------------------------------------------------- retention
    def storage_cap(self) -> float:
        """Storage capacitance (F): the read device's gate."""
        return self.read_device.gate_cap

    def retention_time(self, vdd: float) -> float:
        """Worst-case data retention time at ``vdd`` (s).

        The gate-cap charge budget divided by the suppressed write-port
        leak; much shorter than 1T1C eDRAM because the storage node is
        only a gate.
        """
        leak = (
            self.topology.retention_leak_fraction
            * self.write_device.leakage_current(vdd)
        )
        if leak <= 0.0:
            return math.inf
        charge = self.storage_cap() * self.topology.retention_margin * vdd
        return charge / leak

    # ---------------------------------------------------------- failure
    def _beta(self, vdd: float) -> float:
        """Margin in sigma units; Pelgrom sigmas on both devices."""
        topo = self.topology
        margin = topo.margin_slope * (vdd - topo.margin_v0)
        write_term = topo.write_sensitivity * self.node.sigma_vt(
            self.write_width
        )
        read_term = topo.read_sensitivity * self.node.sigma_vt(self.read_width)
        sigma = math.hypot(write_term, read_term)
        return margin / sigma

    def failure_probability(self, vdd: float) -> float:
        """Hard bit-failure probability of this sized cell at ``vdd``."""
        from scipy.stats import norm

        return float(norm.sf(self._beta(vdd)))

    def describe(self) -> str:
        """Short human-readable summary."""
        um2 = self.area * 1e12
        return (
            f"{self.topology.name} x{self.size_factor:.2f} "
            f"(2T gain, {um2:.3f} um^2)"
        )
