"""Error detection and correction codes (EDC) for cache words.

The paper protects 32-bit data words and 26-bit tag words with:

* **Hsiao SECDED** (single-error-correct, double-error-detect) — 7 check
  bits per word (scenario A at ULE mode; everywhere in scenario B's
  baseline);
* **DECTED** (double-error-correct, triple-error-detect) — 13 check bits
  per word, built here as a shortened binary BCH(t=2) code extended with an
  overall parity bit (scenario B's proposed ULE way).

Everything is implemented from first principles: GF(2) linear algebra,
GF(2^m) field arithmetic, BCH generator construction, Berlekamp/Peterson
decoding with Chien search, and the classic Hsiao odd-weight-column
construction.  :mod:`repro.edc.circuits` derives gate-level encoder/decoder
cost models (the HSPICE substitute of DESIGN.md substitution #3).
"""

from repro.edc.base import DecodeResult, DecodeStatus, LinearBlockCode
from repro.edc.parity import ParityCode
from repro.edc.hsiao import HsiaoSecDed
from repro.edc.gf2m import GF2m
from repro.edc.bch import BchCode
from repro.edc.dected import DectedCode
from repro.edc.protection import ProtectionScheme, check_bits_for, make_code
from repro.edc.circuits import CodecCircuit, circuit_for_code

__all__ = [
    "DecodeStatus",
    "DecodeResult",
    "LinearBlockCode",
    "ParityCode",
    "HsiaoSecDed",
    "GF2m",
    "BchCode",
    "DectedCode",
    "ProtectionScheme",
    "make_code",
    "check_bits_for",
    "CodecCircuit",
    "circuit_for_code",
]
