"""Wattch-style energy accounting: a named ledger of joules.

Component names are dotted paths ("il1.dynamic", "dl1.edc", "core.logic");
the reporting layer groups them into the categories shown in the paper's
EPI breakdown figures.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable


class EnergyLedger:
    """An additive map component-name -> energy (J)."""

    def __init__(self) -> None:
        self._entries: dict[str, float] = defaultdict(float)

    def add(self, component: str, joules: float) -> None:
        """Accumulate energy into a component."""
        if joules < 0:
            raise ValueError(f"negative energy for {component}: {joules}")
        self._entries[component] += joules

    def get(self, component: str) -> float:
        """Energy of one component (0 if never touched)."""
        return self._entries.get(component, 0.0)

    @property
    def total(self) -> float:
        """Sum over all components (J)."""
        return sum(self._entries.values())

    def components(self) -> list[str]:
        """Sorted component names."""
        return sorted(self._entries)

    def items(self) -> Iterable[tuple[str, float]]:
        """(name, joules) pairs, sorted by name."""
        return sorted(self._entries.items())

    def group(self, prefix: str) -> float:
        """Sum of all components under a dotted prefix."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sum(
            value
            for name, value in self._entries.items()
            if name == prefix or name.startswith(dotted)
        )

    def merged(self, other: "EnergyLedger") -> "EnergyLedger":
        """A new ledger with both contributions."""
        result = EnergyLedger()
        for name, value in self._entries.items():
            result.add(name, value)
        for name, value in other._entries.items():
            result.add(name, value)
        return result

    def scaled(self, factor: float) -> "EnergyLedger":
        """A new ledger with every entry multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        result = EnergyLedger()
        for name, value in self._entries.items():
            result.add(name, value * factor)
        return result

    def categories(self) -> dict[str, float]:
        """The paper-figure breakdown categories.

        * ``il1 dynamic`` / ``dl1 dynamic`` — cache array switching;
        * ``l1 leakage`` — cache static energy;
        * ``edc`` — codec switching + static energy;
        * ``core`` — everything else (logic, RF, TLBs).
        """
        il1_dyn = self.get("il1.dynamic")
        dl1_dyn = self.get("dl1.dynamic")
        l1_leak = self.get("il1.leakage") + self.get("dl1.leakage")
        edc = sum(
            value
            for name, value in self._entries.items()
            if ".edc" in name or name.startswith("edc")
        )
        known = il1_dyn + dl1_dyn + l1_leak + edc
        return {
            "il1 dynamic": il1_dyn,
            "dl1 dynamic": dl1_dyn,
            "l1 leakage": l1_leak,
            "edc": edc,
            "core": self.total - known,
        }
