"""Tests for repro.sustainability.report (run/schedule/population)."""

import pytest

from repro.cpu.chip import Chip
from repro.engine.session import SimulationSession
from repro.explore.candidates import build_candidate
from repro.runtime import ScheduleSimulator, StaticDutyCycle
from repro.sustainability import (
    assess_population,
    assess_runs,
    assess_schedule,
    chip_capacity_bytes,
)
from repro.tech.operating import Mode
from repro.workloads import sensor_node_trace
from repro.workloads.mediabench import generate_trace

INTENSITY = 475.0


@pytest.fixture(scope="module", params=["8T", "EDRAM"])
def assessed(request):
    """(cell, candidate, runs) for a static and a dynamic technology."""
    candidate = build_candidate(
        {
            "ule_cell": request.param,
            "ule_scheme": "secded",
            "suite": "paper",
        }
    )
    chip = Chip(candidate.chip)
    trace = generate_trace("gsm_c", length=5_000, seed=7)
    result = chip.run(
        trace, Mode.ULE, operating_point=candidate.ule_point
    )
    return request.param, candidate, [result]


class TestAssessRuns:
    def test_power_matches_energy_over_time(self, assessed):
        _, candidate, runs = assessed
        capacity = chip_capacity_bytes(candidate.chip)
        assessment = assess_runs("x", runs, capacity, INTENSITY)
        energy = sum(run.energy.total for run in runs)
        seconds = sum(run.execution_seconds for run in runs)
        assert assessment.average_power_w == pytest.approx(
            energy / seconds
        )
        assert assessment.co2_per_gib_year_g > 0.0
        assert assessment.capacity_bytes == capacity

    def test_refresh_share_only_for_dynamic_cells(self, assessed):
        cell, candidate, runs = assessed
        assessment = assess_runs(
            "x", runs, chip_capacity_bytes(candidate.chip), INTENSITY
        )
        if cell == "8T":
            assert assessment.refresh_power_w == 0.0
            assert assessment.refresh_co2_per_gib_year_g == 0.0
        else:
            assert 0.0 < assessment.refresh_power_w < (
                assessment.average_power_w
            )
            assert 0.0 < assessment.refresh_co2_per_gib_year_g < (
                assessment.co2_per_gib_year_g
            )

    def test_empty_runs_rejected(self, assessed):
        _, candidate, _ = assessed
        with pytest.raises(ValueError, match="zero wall-clock"):
            assess_runs(
                "x", [], chip_capacity_bytes(candidate.chip), INTENSITY
            )


class TestAssessPopulation:
    def test_pools_all_dies(self, assessed):
        _, candidate, runs = assessed
        capacity = chip_capacity_bytes(candidate.chip)
        fleet = assess_population(
            "fleet", [runs, runs], capacity, INTENSITY
        )
        single = assess_runs("one", runs, capacity, INTENSITY)
        # Two identical dies: same average power, same per-GiB carbon.
        assert fleet.average_power_w == pytest.approx(
            single.average_power_w
        )
        assert fleet.co2_per_gib_year_g == pytest.approx(
            single.co2_per_gib_year_g
        )

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            assess_population("fleet", [], 1024, INTENSITY)


class TestAssessSchedule:
    def test_schedule_assessment_prices_the_lifetime(self):
        candidate = build_candidate(
            {
                "ule_cell": "EDRAM",
                "ule_scheme": "secded",
                "suite": "paper",
            }
        )
        chip = Chip(candidate.chip)
        simulator = ScheduleSimulator(
            chip,
            StaticDutyCycle(0.25),
            epoch_length=2_000,
            session=SimulationSession(),
        )
        result = simulator.run(sensor_node_trace(4_000, 1_000, 2, seed=3))
        assessment = assess_schedule(
            result, chip_capacity_bytes(candidate.chip), INTENSITY
        )
        assert assessment.label == result.chip_name
        assert assessment.average_power_w == pytest.approx(
            result.total_energy / result.total_seconds
        )
        # The eDRAM ULE epochs paid refresh; it must survive pooling.
        assert result.refresh_energy > 0.0
        assert assessment.refresh_power_w > 0.0
