"""Hypothesis property tests on the array energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cacti.array import SramArray
from repro.sram.cells import CELL_6T, CELL_8T, CELL_10T, CellDesign

TOPOLOGIES = {"6T": CELL_6T, "8T": CELL_8T, "10T": CELL_10T}


@settings(max_examples=30, deadline=None)
@given(
    topo=st.sampled_from(sorted(TOPOLOGIES)),
    size=st.floats(min_value=1.0, max_value=5.0),
    rows=st.sampled_from([16, 32, 64]),
    cols=st.sampled_from([64, 282, 312]),
    vdd=st.floats(min_value=0.3, max_value=1.1),
)
def test_energies_positive_and_finite(topo, size, rows, cols, vdd):
    array = SramArray(
        rows=rows, cols=cols, cell=CellDesign(TOPOLOGIES[topo], size)
    )
    for value in (
        array.read_energy(vdd),
        array.write_energy(vdd),
        array.leakage_power(vdd),
        array.access_time(vdd),
        array.area,
    ):
        assert value > 0
        assert value < float("inf")


@settings(max_examples=30, deadline=None)
@given(
    size_small=st.floats(min_value=1.0, max_value=3.0),
    scale=st.floats(min_value=1.1, max_value=2.0),
    vdd=st.sampled_from([0.35, 1.0]),
)
def test_bigger_cells_cost_more(size_small, scale, vdd):
    """Up-sizing monotonically increases energy, leakage and area —
    the premise that makes the paper's small-8T replacement a win."""
    small = SramArray(
        rows=32, cols=282, cell=CellDesign(CELL_10T, size_small)
    )
    large = SramArray(
        rows=32, cols=282, cell=CellDesign(CELL_10T, size_small * scale)
    )
    assert large.read_energy(vdd) > small.read_energy(vdd)
    assert large.write_energy(vdd) > small.write_energy(vdd)
    assert large.leakage_power(vdd) > small.leakage_power(vdd)
    assert large.area > small.area


@settings(max_examples=20, deadline=None)
@given(
    active=st.integers(min_value=0, max_value=312),
)
def test_read_energy_monotone_in_active_columns(active):
    array = SramArray(rows=32, cols=312, cell=CellDesign(CELL_8T, 2.0))
    partial = array.read_energy(1.0, active_cols=active)
    full = array.read_energy(1.0, active_cols=312)
    assert partial <= full + 1e-21


@settings(max_examples=20, deadline=None)
@given(vdd_low=st.floats(0.3, 0.59), vdd_high=st.floats(0.61, 1.1))
def test_leakage_monotone_in_vdd(vdd_low, vdd_high):
    array = SramArray(rows=32, cols=128, cell=CellDesign(CELL_6T, 1.2))
    assert array.leakage_power(vdd_low) < array.leakage_power(vdd_high)
