"""Bench ``tab-exectime``: the EDC-cycle execution-time overhead.

Paper: "around 3 % increase in execution time in all cases" (ULE mode).
"""

from conftest import TRACE_LENGTH, record_report, run_once

from repro.experiments.exec_time import run_exec_time


def test_exec_time_overhead(benchmark):
    result = run_once(benchmark, run_exec_time, trace_length=TRACE_LENGTH)
    record_report("tab-exectime", result.render())

    for scenario in ("A", "B"):
        average = result.data[f"avg_{scenario}"]
        assert 1.01 < average < 1.06   # paper: ~1.03
    # Per-benchmark ratios all small and positive.
    for key, ratio in result.data.items():
        if ":" in key:
            assert 1.0 <= ratio < 1.08
