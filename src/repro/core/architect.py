"""From a designed scenario to executable chip configurations.

Builds the baseline and proposed chips of a scenario: identical cores,
identical 10T non-L1 arrays, identical cache geometry — differing only in
the ULE way's bitcells and coding, exactly the comparison of Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig, WayGroupConfig
from repro.core import calibration
from repro.core.methodology import DesignResult
from repro.core.scenarios import ProtectionPlan
from repro.cpu.arrays import CoreArrays
from repro.cpu.chip import Chip, ChipConfig
from repro.sram.cells import CellDesign
from repro.tech.operating import Mode


def _way_groups(
    hp_cell: CellDesign,
    ule_cell: CellDesign,
    hp_plan: ProtectionPlan,
    ule_plan: ProtectionPlan,
    ule_edc_inline: bool,
    hp_ways: int = calibration.HP_WAYS,
    ule_ways: int = calibration.ULE_WAYS,
) -> tuple[WayGroupConfig, ...]:
    groups = []
    if hp_ways:
        groups.append(
            WayGroupConfig(
                name="hp",
                ways=hp_ways,
                cell=hp_cell,
                data_protection=hp_plan.as_mapping(),
                tag_protection=hp_plan.as_mapping(),
                active_modes=frozenset({Mode.HP}),
            )
        )
    groups.append(
        WayGroupConfig(
            name="ule",
            ways=ule_ways,
            cell=ule_cell,
            data_protection=ule_plan.as_mapping(),
            tag_protection=ule_plan.as_mapping(),
            active_modes=frozenset({Mode.HP, Mode.ULE}),
            edc_inline_modes=(
                frozenset({Mode.ULE}) if ule_edc_inline else frozenset()
            ),
        )
    )
    return tuple(groups)


def _cache_config(
    name: str,
    groups: tuple[WayGroupConfig, ...],
    size_bytes: int,
    line_bytes: int,
) -> CacheConfig:
    return CacheConfig(
        name=name,
        size_bytes=size_bytes,
        line_bytes=line_bytes,
        way_groups=groups,
    )


@dataclass(frozen=True)
class ScenarioChips:
    """The two chips of one scenario's comparison."""

    baseline: Chip
    proposed: Chip

    def pair(self) -> tuple[Chip, Chip]:
        return self.baseline, self.proposed


def build_cache_pair(
    design: DesignResult,
    hp_ways: int = calibration.HP_WAYS,
    ule_ways: int = calibration.ULE_WAYS,
    size_bytes: int = calibration.CACHE_SIZE_BYTES,
    line_bytes: int = calibration.CACHE_LINE_BYTES,
) -> tuple[CacheConfig, CacheConfig]:
    """Baseline and proposed cache configurations for a design."""
    plan = design.plan
    tag = f"{design.scenario.value}{hp_ways}+{ule_ways}"
    baseline = _cache_config(
        f"{tag}-baseline",
        _way_groups(
            hp_cell=design.cell_6t,
            ule_cell=design.cell_10t,
            hp_plan=plan.baseline_hp_ways,
            ule_plan=plan.baseline_ule_way,
            ule_edc_inline=False,
            hp_ways=hp_ways,
            ule_ways=ule_ways,
        ),
        size_bytes=size_bytes,
        line_bytes=line_bytes,
    )
    proposed = _cache_config(
        f"{tag}-proposed",
        _way_groups(
            hp_cell=design.cell_6t,
            ule_cell=design.cell_8t,
            hp_plan=plan.proposed_hp_ways,
            ule_plan=plan.proposed_ule_way,
            ule_edc_inline=True,
            hp_ways=hp_ways,
            ule_ways=ule_ways,
        ),
        size_bytes=size_bytes,
        line_bytes=line_bytes,
    )
    return baseline, proposed


def _chip(name: str, cache: CacheConfig, design: DesignResult) -> Chip:
    core_arrays = CoreArrays(cell=design.cell_10t)
    return Chip(
        ChipConfig(
            name=name,
            il1=cache,
            dl1=cache,
            core_arrays=core_arrays,
            core_logic_cap=calibration.CORE_LOGIC_CAP,
            core_leak_gates=calibration.CORE_LEAK_GATES,
        )
    )


def build_chips(
    design: DesignResult,
    hp_ways: int = calibration.HP_WAYS,
    ule_ways: int = calibration.ULE_WAYS,
    size_bytes: int = calibration.CACHE_SIZE_BYTES,
    line_bytes: int = calibration.CACHE_LINE_BYTES,
) -> ScenarioChips:
    """The baseline and proposed chips for a designed scenario.

    IL1 and DL1 share the cache configuration (both 8 KB 8-way in the
    paper); the non-L1 arrays use the NST-sized 10T cell in *both* chips.
    """
    baseline_cache, proposed_cache = build_cache_pair(
        design,
        hp_ways=hp_ways,
        ule_ways=ule_ways,
        size_bytes=size_bytes,
        line_bytes=line_bytes,
    )
    return ScenarioChips(
        baseline=_chip(
            f"{design.scenario.value}-baseline", baseline_cache, design
        ),
        proposed=_chip(
            f"{design.scenario.value}-proposed", proposed_cache, design
        ),
    )
