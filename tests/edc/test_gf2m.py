"""Tests for repro.edc.gf2m (field arithmetic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.edc.gf2m import GF2m

FIELD = GF2m(6)
elements = st.integers(min_value=0, max_value=FIELD.size - 1)
nonzero = st.integers(min_value=1, max_value=FIELD.size - 1)


class TestConstruction:
    def test_table_sizes(self):
        assert FIELD.order == 63
        assert FIELD.size == 64

    def test_non_primitive_rejected(self):
        # x^4 + x^2 + 1 = (x^2+x+1)^2 is not primitive.
        with pytest.raises(ValueError):
            GF2m(4, primitive_poly=0b10101)

    def test_wrong_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2m(6, primitive_poly=0b1011)

    def test_unknown_m_without_poly(self):
        with pytest.raises(ValueError):
            GF2m(20)


class TestBasicOps:
    def test_alpha_cycle(self):
        assert FIELD.alpha_pow(0) == 1
        assert FIELD.alpha_pow(FIELD.order) == 1

    def test_log_exp_inverse(self):
        for exp in range(FIELD.order):
            assert FIELD.log(FIELD.alpha_pow(exp)) == exp

    def test_log_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.log(0)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.div(3, 0)

    def test_pow_zero_base(self):
        assert FIELD.pow(0, 3) == 0
        with pytest.raises(ZeroDivisionError):
            FIELD.pow(0, -1)


class TestFieldAxioms:
    @settings(max_examples=80)
    @given(elements, elements)
    def test_commutativity(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @settings(max_examples=80)
    @given(elements, elements, elements)
    def test_associativity(self, a, b, c):
        assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))

    @settings(max_examples=80)
    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        left = FIELD.mul(a, b ^ c)
        right = FIELD.mul(a, b) ^ FIELD.mul(a, c)
        assert left == right

    @settings(max_examples=80)
    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @settings(max_examples=80)
    @given(elements)
    def test_multiplicative_identity(self, a):
        assert FIELD.mul(a, 1) == a

    @settings(max_examples=80)
    @given(nonzero, st.integers(-20, 40))
    def test_pow_is_repeated_mul(self, a, exponent):
        expected = 1
        for _ in range(abs(exponent)):
            expected = FIELD.mul(expected, a)
        if exponent < 0:
            expected = FIELD.inv(expected)
        assert FIELD.pow(a, exponent) == expected


class TestPolynomials:
    def test_eval_constant(self):
        assert FIELD.poly_eval([5], 7) == 5

    def test_eval_linear(self):
        # p(x) = 3 + 2x at x = alpha
        alpha = FIELD.alpha_pow(1)
        assert FIELD.poly_eval([3, 2], alpha) == 3 ^ FIELD.mul(2, alpha)

    def test_minimal_polynomial_annihilates(self):
        """m_i(alpha^i) == 0, evaluated over the extension field."""
        for exponent in (1, 3, 5):
            mask = FIELD.minimal_polynomial(exponent)
            coeffs = [(mask >> i) & 1 for i in range(mask.bit_length())]
            value = FIELD.poly_eval(coeffs, FIELD.alpha_pow(exponent))
            assert value == 0

    def test_minimal_polynomial_degree_divides_m(self):
        for exponent in (1, 3, 5, 9):
            mask = FIELD.minimal_polynomial(exponent)
            degree = mask.bit_length() - 1
            assert FIELD.m % degree == 0
