"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fig4" in out
        assert "tab-wcet" in out


class TestDesign:
    def test_scenario_a_summary(self, capsys):
        assert main(["design", "A"]) == 0
        out = capsys.readouterr().out
        assert "Pf target" in out
        assert "scenario A" in out

    def test_bad_scenario(self):
        with pytest.raises(SystemExit):
            main(["design", "C"])


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "tab-sizing"]) == 0
        out = capsys.readouterr().out
        assert "tab-sizing" in out
        assert "Paper vs measured" in out

    def test_run_with_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "tab-area", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert "tab-area" in out_file.read_text()

    def test_trace_length_forwarded(self, capsys):
        assert main(
            ["run", "tab-exectime", "--trace-length", "5000"]
        ) == 0
        assert "exec" in capsys.readouterr().out.lower()

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_backend_flag(self, capsys):
        assert main(
            ["run", "tab-exectime", "--trace-length", "3000",
             "--backend", "reference"]
        ) == 0
        assert "exec" in capsys.readouterr().out.lower()

    def test_jobs_flag(self, capsys):
        assert main(
            ["run", "tab-exectime", "--trace-length", "3000", "--jobs", "2"]
        ) == 0
        assert "exec" in capsys.readouterr().out.lower()

    def test_profile_flag(self, capsys):
        assert main(
            ["run", "tab-exectime", "--trace-length", "3000", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "Per-phase wall-clock" in out
        assert "simulate.vectorized" in out

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(
            ["run", "tab-exectime", "--trace-length", "3000",
             "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("gen-*/*.pkl"))

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig3", "--backend", "turbo"])


class TestAll:
    def test_all_writes_reports(self, tmp_path, capsys, monkeypatch):
        """Run 'all' against a registry trimmed to the fast drivers."""
        import repro.experiments.registry as registry

        trimmed = {
            "tab-sizing": registry._REGISTRY["tab-sizing"],
            "tab-area": registry._REGISTRY["tab-area"],
        }
        monkeypatch.setattr(registry, "_REGISTRY", trimmed)
        out_dir = tmp_path / "results"
        assert main(["all", "--out-dir", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "tab-sizing.txt").exists()
        assert (out_dir / "tab-area.txt").exists()

    def test_all_parallel_matches_serial(self, tmp_path, capsys):
        """`all --jobs 2` writes the same reports as a serial run."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(
            ["all", "--trace-length", "2000", "--out-dir", str(serial_dir)]
        ) == 0
        assert main(
            ["all", "--trace-length", "2000", "--jobs", "2",
             "--out-dir", str(parallel_dir)]
        ) == 0
        capsys.readouterr()
        serial_reports = sorted(serial_dir.glob("*.txt"))
        assert serial_reports
        for report in serial_reports:
            twin = parallel_dir / report.name
            assert twin.read_text() == report.read_text()
