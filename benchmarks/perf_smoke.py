#!/usr/bin/env python3
"""Performance smoke test: vectorized vs reference backend on fig3.

Times one fig3-style evaluation (scenario A at HP mode — the heaviest
per-access workload: BigBench on all eight ways) on both simulation
backends, checks they agree bit-for-bit, and writes ``BENCH_engine.json``
at the repo root so future PRs can track the speedup trajectory.

The vectorized engine must be at least MIN_SPEEDUP times faster; the
script exits non-zero otherwise, so CI catches fast-path regressions.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.core.evaluation import cached_chips, evaluate_scenario
from repro.core.scenarios import Scenario
from repro.engine.session import SimulationSession, use_session
from repro.tech.operating import Mode

#: Floor on the end-to-end evaluation speedup (observed ~20x).
MIN_SPEEDUP = 5.0

#: Dynamic instructions per benchmark; big enough to dominate setup.
TRACE_LENGTH = 60_000

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_engine.json"
)


def _timed_evaluation(backend: str) -> tuple[float, object]:
    """Wall-clock one fig3 evaluation under a fresh session."""
    with use_session(SimulationSession(backend=backend)):
        start = time.perf_counter()
        evaluation = evaluate_scenario(
            Scenario.A, Mode.HP, trace_length=TRACE_LENGTH
        )
        return time.perf_counter() - start, evaluation


def main() -> int:
    cached_chips(Scenario.A)  # design + chip construction out of the timing

    # Vectorized first: it pays trace generation cold while the
    # reference run inherits the memoized traces — conservative for the
    # reported speedup.
    vectorized_seconds, vectorized = _timed_evaluation("vectorized")
    reference_seconds, reference = _timed_evaluation("reference")

    if reference.render() != vectorized.render():
        print("FAIL: backends rendered different tables", file=sys.stderr)
        return 1

    speedup = reference_seconds / vectorized_seconds
    record = {
        "experiment": "fig3 evaluation (scenario A, HP, BigBench)",
        "trace_length": TRACE_LENGTH,
        "benchmarks": len(reference.rows),
        "reference_seconds": round(reference_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "identical_render": True,
    }
    RESULT_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))
    print(f"wrote {RESULT_PATH}")

    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {speedup:.1f}x below floor {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: vectorized backend {speedup:.1f}x faster (floor "
          f"{MIN_SPEEDUP}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
