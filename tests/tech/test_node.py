"""Tests for repro.tech.node."""

import pytest

from repro.tech.node import TechnologyNode, ptm32


class TestPtm32:
    def test_shared_instance(self):
        assert ptm32() is ptm32()

    def test_is_32nm(self):
        assert ptm32().feature_size == pytest.approx(32e-9)

    def test_nominal_supply(self):
        assert ptm32().vdd_nominal == 1.0

    def test_f2_area_unit(self):
        node = ptm32()
        assert node.f2 == pytest.approx(node.feature_size**2)


class TestSigmaVt:
    def test_minimum_device_sigma_realistic(self):
        """Min-size 32nm mismatch sigma should be tens of millivolts."""
        sigma = ptm32().sigma_vt_min
        assert 0.030 < sigma < 0.090

    def test_pelgrom_scaling(self):
        """Doubling the width cuts sigma by sqrt(2)."""
        node = ptm32()
        narrow = node.sigma_vt(node.wmin)
        wide = node.sigma_vt(2 * node.wmin)
        assert wide == pytest.approx(narrow / 2**0.5)

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            ptm32().sigma_vt(0.0)

    def test_explicit_length(self):
        node = ptm32()
        assert node.sigma_vt(node.wmin, 2 * node.feature_size) < (
            node.sigma_vt(node.wmin)
        )


class TestCustomNode:
    def test_frozen(self):
        node = TechnologyNode()
        with pytest.raises(AttributeError):
            node.vdd_nominal = 1.2  # type: ignore[misc]

    def test_override(self):
        node = TechnologyNode(name="test", avt=1e-9)
        assert node.sigma_vt_min < ptm32().sigma_vt_min
