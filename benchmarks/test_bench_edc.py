"""Bench ``tab-edc``: codec characterization (HSPICE substitute).

Anchors: 7/13 check bits; the DECTED decoder settles well within the
200 ns ULE cycle (the basis of the +1-cycle architecture choice); every
codec honours its correction/detection envelope.
"""

from conftest import record_report, run_once

from repro.experiments.edc_table import run_edc_table


def test_edc_characterization(benchmark):
    result = run_once(benchmark, run_edc_table)
    record_report("tab-edc", result.render())

    secded = result.data["hsiao(39,32)"]
    dected = result.data["dected(45,32)"]
    assert secded["n"] - secded["k"] == 7
    assert dected["n"] - dected["k"] == 13
    for entry in result.data.values():
        assert entry["singles_ok"]
        assert entry["doubles_ok"]
        assert entry["triples_detected"]
    # DECTED decoding hardware is much heavier than SECDED's — the
    # mechanism behind scenario B's smaller savings.
    assert dected["decoder_gates"] > 4 * secded["decoder_gates"]
    # Codec energy at ULE stays tiny in absolute terms (< 100 fJ).
    assert dected["decode_energy_ule"] < 100e-15
