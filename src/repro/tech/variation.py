"""Process-variation model (random within-die Vt mismatch).

The paper's yield methodology rests on Pelgrom's law: the threshold-voltage
mismatch sigma of a device shrinks with the square root of its gate area,

    sigma_Vt(W, L) = A_VT / sqrt(W * L)

which is why up-sizing bitcell transistors buys failure probability.  The
:class:`VariationModel` samples per-transistor Vt offsets for Monte Carlo /
importance sampling (see :mod:`repro.sram.montecarlo`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tech.node import TechnologyNode, ptm32


@dataclass(frozen=True)
class VariationModel:
    """Samples independent Gaussian Vt offsets for a set of transistors.

    Attributes:
        node: the process node supplying the Pelgrom coefficient.
        global_sigma: optional die-to-die component (added in quadrature on
            top of local mismatch; 0 by default because the paper's analysis
            is local-mismatch driven).
    """

    node: TechnologyNode = None  # type: ignore[assignment]
    global_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.node is None:
            object.__setattr__(self, "node", ptm32())

    def sigma_for(self, width: float, length: float | None = None) -> float:
        """Total Vt sigma for one device of the given geometry (V)."""
        local = self.node.sigma_vt(width, length)
        return (local * local + self.global_sigma * self.global_sigma) ** 0.5

    def sample_offsets(
        self,
        widths: np.ndarray,
        rng: np.random.Generator,
        count: int,
        mean_shift: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw ``count`` vectors of per-transistor Vt offsets.

        Args:
            widths: array of transistor widths (one per device in the cell).
            rng: the random stream.
            count: number of Monte Carlo samples.
            mean_shift: optional importance-sampling mean shift per device
                (in volts); ``None`` means unshifted sampling.

        Returns:
            Array of shape ``(count, len(widths))`` of Vt offsets in volts.
        """
        widths = np.asarray(widths, dtype=float)
        if np.any(widths <= 0):
            raise ValueError("widths must be positive")
        sigmas = np.array([self.sigma_for(w) for w in widths])
        samples = rng.standard_normal((count, len(widths))) * sigmas
        if mean_shift is not None:
            samples = samples + np.asarray(mean_shift, dtype=float)
        return samples

    def log_density_ratio(
        self,
        offsets: np.ndarray,
        widths: np.ndarray,
        mean_shift: np.ndarray,
    ) -> np.ndarray:
        """Log of ``p(offsets) / q(offsets)`` for mean-shifted sampling.

        This is the importance-sampling likelihood ratio: ``p`` is the true
        zero-mean Gaussian, ``q`` the shifted proposal actually sampled from.
        """
        widths = np.asarray(widths, dtype=float)
        sigmas = np.array([self.sigma_for(w) for w in widths])
        shift = np.asarray(mean_shift, dtype=float)
        # log p - log q for Gaussians with equal covariance:
        #   (-x.mu + mu^2/2) / sigma^2 summed over devices
        return np.sum(
            (-offsets * shift + 0.5 * shift * shift) / (sigmas * sigmas),
            axis=1,
        )
