"""Batched execution equivalence: trace groups are bit-identical.

The batching layer's acceptance contract:

* results of trace-grouped execution — serial and ``jobs=4`` — are
  bit-identical to per-job :func:`~repro.engine.jobs.execute_job`
  across modes × operating points × fault maps × transient specs;
* swapping an inline trace for its store reference never changes a
  job key, and worker dispatch ships refs (a few hundred bytes), not
  pickled arrays;
* jobs differing only in operating point simulate *once* per cache
  (the batching layer's throughput lever) yet stay mutation-isolated;
* disk-cached results round-trip through store-backed parallel runs.
"""

import pickle

import numpy as np
import pytest

from repro.engine.batch import (
    execute_group,
    group_by_trace,
    open_store,
    partition_for_dispatch,
    resolve_trace,
    strip_traces,
)
from repro.engine.jobs import (
    SimulationJob,
    TraceSpec,
    execute_job,
    job_key,
)
from repro.engine.session import SimulationSession
from repro.faults.maps import CacheFaultMap, DieFaultMap
from repro.tech.operating import Mode, OperatingPoint
from repro.transients import TransientSpec
from repro.workloads.store import StoredTraceRef, TraceStore

TRACE = TraceSpec("adpcm_c", 3_000, 42)


def _results_equal(left, right) -> bool:
    return (
        left.il1_stats == right.il1_stats
        and left.dl1_stats == right.dl1_stats
        and left.timing == right.timing
        and list(left.energy.items()) == list(right.energy.items())
    )


def _assert_all_equal(expected, got):
    assert len(expected) == len(got)
    for index, (left, right) in enumerate(zip(expected, got)):
        assert _results_equal(left, right), f"job {index} diverged"


def _fault_map():
    return DieFaultMap(
        entries=(
            CacheFaultMap(
                cache="dl1", mode=Mode.ULE, disabled=((1, 7), (4, 7))
            ),
            CacheFaultMap(
                cache="il1", mode=Mode.HP, disabled=((0, 0), (2, 3))
            ),
        )
    )


def _ule_point(vdd):
    return OperatingPoint(mode=Mode.ULE, vdd=vdd, frequency=5e6)


def _matrix(chips):
    """Jobs over two shared traces sweeping every batched dimension."""
    spec = TransientSpec(
        acceleration=1e17, scrub_interval_seconds=1e-4, seed=7
    )
    jobs = []
    for point in (None, _ule_point(0.38), _ule_point(0.42)):
        for fault_map in (None, _fault_map()):
            for transients in (None, spec):
                jobs.append(
                    SimulationJob(
                        chip=chips.proposed.config,
                        trace=TRACE,
                        mode=Mode.ULE,
                        operating_point=point,
                        fault_map=fault_map,
                        transients=transients,
                    )
                )
    for fault_map in (None, _fault_map()):
        jobs.append(
            SimulationJob(
                chip=chips.proposed.config,
                trace=TRACE,
                mode=Mode.HP,
                fault_map=fault_map,
            )
        )
    # A second trace group: batches must not leak state across groups.
    jobs.append(
        SimulationJob(
            chip=chips.proposed.config,
            trace=TraceSpec("epic_c", 3_000, 11),
            mode=Mode.ULE,
        )
    )
    return jobs


class TestBatchedVsPerJob:
    def test_serial_session_bit_identical(self, chips_a):
        jobs = _matrix(chips_a)
        expected = [execute_job(job) for job in jobs]
        with SimulationSession() as session:
            got = session.run_jobs(jobs)
        _assert_all_equal(expected, got)

    def test_parallel_session_bit_identical(self, chips_a):
        jobs = _matrix(chips_a)
        expected = [execute_job(job) for job in jobs]
        with SimulationSession(jobs=4) as session:
            got = session.run_jobs(jobs)
        _assert_all_equal(expected, got)

    def test_numba_backend_session_matches_auto(self, chips_a):
        """``backend="numba"`` is bit-identical whether numba is
        installed (JIT kernel) or not (dict-kernel fallback)."""
        jobs = _matrix(chips_a)
        with SimulationSession() as session:
            auto = session.run_jobs(jobs)
        with SimulationSession(backend="numba") as session:
            compiled = session.run_jobs(jobs)
        _assert_all_equal(auto, compiled)


class TestSharedSimulation:
    def test_vdd_sweep_simulates_once_per_cache(
        self, chips_a, monkeypatch
    ):
        """The throughput lever: four operating points of one config
        run the functional simulation once per cache (IL1 + DL1),
        not once per job — and still match per-job execution."""
        points = [_ule_point(vdd) for vdd in (0.35, 0.38, 0.41, 0.44)]
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=TRACE,
                mode=Mode.ULE,
                operating_point=point,
            )
            for point in points
        ]
        expected = [execute_job(job) for job in jobs]

        from repro.engine import backends

        real = backends.simulate_cache
        calls = []

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(backends, "simulate_cache", counting)
        got = execute_group(jobs)
        assert len(calls) == 2
        _assert_all_equal(expected, got)

    def test_memo_hits_are_mutation_isolated(self, chips_a):
        """Memoized stats come back as deep copies: results must be
        distinct objects, exactly as if each job simulated itself."""
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=TRACE,
                mode=Mode.ULE,
                operating_point=point,
            )
            for point in (_ule_point(0.38), _ule_point(0.42))
        ]
        first, second = execute_group(jobs)
        assert first.il1_stats is not second.il1_stats
        assert first.il1_stats == second.il1_stats


class TestGrouping:
    def test_groups_follow_first_occurrence_order(self, chips_a):
        other = TraceSpec("epic_c", 3_000, 11)
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config, trace=trace, mode=Mode.ULE
            )
            for trace in (TRACE, other, TRACE, other)
        ]
        assert group_by_trace(jobs) == [[0, 2], [1, 3]]

    def test_store_ref_groups_with_its_inline_trace(
        self, chips_a, small_trace, tmp_path
    ):
        """Tokens are content-based: a ref and the trace it points to
        belong to the same group (and the same job key)."""
        ref = TraceStore(tmp_path).put(small_trace)
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=trace,
                mode=Mode.ULE,
            )
            for trace in (small_trace, ref)
        ]
        assert group_by_trace(jobs) == [[0, 1]]
        assert job_key(jobs[0]) == job_key(jobs[1])

    def test_partition_serial_keeps_whole_groups(self, chips_a):
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config, trace=TRACE, mode=Mode.ULE
            )
        ] * 6
        assert partition_for_dispatch(jobs, workers=1) == [
            list(range(6))
        ]

    def test_partition_chunks_large_groups(self, chips_a):
        """One giant group must not serialize a parallel session: it
        splits into worker-balanced chunks, order preserved."""
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config, trace=TRACE, mode=Mode.ULE
            )
        ] * 20
        chunks = partition_for_dispatch(jobs, workers=4)
        assert len(chunks) > 1
        assert all(len(chunk) <= 4 for chunk in chunks)
        assert [i for chunk in chunks for i in chunk] == list(range(20))


class TestStoreDispatch:
    def test_stripping_replaces_arrays_with_refs(
        self, chips_a, small_trace, tmp_path
    ):
        """The dispatch payload: stripped jobs pickle to a few KB of
        config + ref where inline jobs pickle whole column arrays."""
        job = SimulationJob(
            chip=chips_a.proposed.config,
            trace=small_trace,
            mode=Mode.ULE,
        )
        store = TraceStore(tmp_path)
        (stripped,) = strip_traces([job], store)
        assert isinstance(stripped.trace, StoredTraceRef)
        assert job_key(stripped) == job_key(job)
        assert len(pickle.dumps(job)) > 100_000
        assert len(pickle.dumps(stripped)) < 20_000
        assert store.stats["puts"] == 1

    def test_stripping_is_idempotent(
        self, chips_a, small_trace, tmp_path
    ):
        job = SimulationJob(
            chip=chips_a.proposed.config,
            trace=small_trace,
            mode=Mode.ULE,
        )
        store = TraceStore(tmp_path)
        (first,) = strip_traces([job], store)
        (second,) = strip_traces([job], store)
        assert second.trace == first.trace
        assert store.stats["puts"] == 1
        assert store.stats["put_hits"] == 1

    def test_spec_jobs_pass_through_untouched(self, chips_a, tmp_path):
        job = SimulationJob(
            chip=chips_a.proposed.config, trace=TRACE, mode=Mode.ULE
        )
        (stripped,) = strip_traces([job], TraceStore(tmp_path))
        assert stripped is job

    def test_refs_resolve_through_the_store_once(
        self, small_trace, tmp_path
    ):
        """Workers open columns by digest — counted by the store —
        and memoize the loaded trace for consecutive groups."""
        store = open_store(tmp_path)
        ref = store.put(small_trace)
        before = store.stats["gets"]
        resolved = resolve_trace(ref, store_root=tmp_path)
        assert store.stats["gets"] == before + 1
        np.testing.assert_array_equal(resolved.pc, small_trace.pc)
        assert resolve_trace(ref, store_root=tmp_path) is resolved
        assert store.stats["gets"] == before + 1

    def test_parallel_inline_traces_run_through_store(
        self, chips_a, small_trace, tmp_path
    ):
        """End to end: a parallel session over inline traces publishes
        them to the store, dispatches refs, and stays bit-identical."""
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=small_trace,
                mode=mode,
            )
            for mode in (Mode.ULE, Mode.HP)
        ]
        expected = [execute_job(job) for job in jobs]
        with SimulationSession(jobs=2, trace_store=tmp_path) as session:
            got = session.run_jobs(jobs)
        _assert_all_equal(expected, got)
        assert small_trace.content_digest() in TraceStore(tmp_path)


class TestDiskCacheRoundTrip:
    def test_store_backed_parallel_results_round_trip(
        self, chips_a, small_trace, tmp_path
    ):
        """Results computed through the store-backed parallel path are
        served bit-identically from the disk cache afterwards."""
        cache_dir = tmp_path / "cache"
        store_root = tmp_path / "store"
        jobs = [
            SimulationJob(
                chip=chips_a.proposed.config,
                trace=small_trace,
                mode=Mode.ULE,
                operating_point=point,
            )
            for point in (None, _ule_point(0.38), _ule_point(0.42))
        ]
        with SimulationSession(
            jobs=2, cache_dir=cache_dir, trace_store=store_root
        ) as session:
            first = session.run_jobs(jobs)
            assert session.stats.executed == len(jobs)
        with SimulationSession(
            jobs=2, cache_dir=cache_dir, trace_store=store_root
        ) as session:
            second = session.run_jobs(jobs)
            assert session.stats.disk_hits == len(jobs)
            assert session.stats.executed == 0
        _assert_all_equal(first, second)
