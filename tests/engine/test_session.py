"""SimulationSession: batching, dedup, disk memoization, parallelism."""

import pytest

from repro.core.evaluation import evaluate_scenario
from repro.core.scenarios import Scenario
from repro.engine.jobs import SimulationJob, TraceSpec, job_key
from repro.engine.session import (
    SessionStats,
    SimulationSession,
    current_session,
    use_session,
)
from repro.tech.operating import Mode, OperatingPoint
from repro.workloads.mediabench import generate_trace


def _job(chips, which="baseline", bench="adpcm_c", length=4_000,
         mode=Mode.ULE, operating_point=None):
    chip = getattr(chips, which)
    return SimulationJob(
        chip=chip.config,
        trace=TraceSpec(bench, length, 42),
        mode=mode,
        operating_point=operating_point,
    )


class TestSessionStats:
    def test_snapshot_is_frozen(self):
        stats = SessionStats(executed=2, memo_hits=1)
        frozen = stats.snapshot()
        stats.executed += 5
        assert frozen.executed == 2
        assert frozen.memo_hits == 1

    def test_since_yields_deltas(self):
        stats = SessionStats(executed=2, disk_hits=1)
        before = stats.snapshot()
        stats.executed += 3
        stats.memo_hits += 4
        delta = stats.since(before)
        assert delta.executed == 3
        assert delta.memo_hits == 4
        assert delta.disk_hits == 0
        assert delta.requested == 7

    def test_session_phase_attribution(self, chips_a):
        with SimulationSession() as session:
            before = session.stats.snapshot()
            session.run_jobs([_job(chips_a)])
            first = session.stats.since(before)
            assert first.executed == 1
            before = session.stats.snapshot()
            session.run_jobs([_job(chips_a)])
            second = session.stats.since(before)
            assert second.executed == 0
            assert second.memo_hits == 1


class TestJobKey:
    def test_stable_for_equal_jobs(self, chips_a):
        assert job_key(_job(chips_a)) == job_key(_job(chips_a))

    def test_sensitive_to_every_field(self, chips_a):
        base = job_key(_job(chips_a))
        assert job_key(_job(chips_a, which="proposed")) != base
        assert job_key(_job(chips_a, bench="epic_c")) != base
        assert job_key(_job(chips_a, length=5_000)) != base
        assert job_key(_job(chips_a, mode=Mode.HP)) != base
        point = OperatingPoint(mode=Mode.ULE, vdd=0.4, frequency=5e6)
        assert job_key(_job(chips_a, operating_point=point)) != base

    def test_stable_across_interpreter_invocations(self):
        """Keys must survive hash randomization: repr of frozensets
        varies with PYTHONHASHSEED, which would defeat the disk cache
        (regression)."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        code = (
            "from repro.core.evaluation import cached_chips\n"
            "from repro.core.scenarios import Scenario\n"
            "from repro.engine.jobs import SimulationJob, TraceSpec, "
            "job_key\n"
            "from repro.tech.operating import Mode\n"
            "chips = cached_chips(Scenario.A)\n"
            "job = SimulationJob(chip=chips.proposed.config,\n"
            "                    trace=TraceSpec('adpcm_c', 1000, 1),\n"
            "                    mode=Mode.ULE)\n"
            "print(job_key(job))\n"
        )
        keys = set()
        for hash_seed in ("1", "2", "3"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [src_dir, env.get("PYTHONPATH", "")])
            )
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            keys.add(result.stdout.strip())
        assert len(keys) == 1

    def test_inline_trace_hashes_content(self, chips_a):
        short = generate_trace("adpcm_c", length=1_000, seed=1)
        long = generate_trace("adpcm_c", length=2_000, seed=1)
        job_short = SimulationJob(
            chip=chips_a.baseline.config, trace=short, mode=Mode.ULE
        )
        job_long = SimulationJob(
            chip=chips_a.baseline.config, trace=long, mode=Mode.ULE
        )
        assert job_key(job_short) != job_key(job_long)
        assert job_key(job_short) == job_key(job_short)


class TestSessionBatching:
    def test_results_in_submission_order(self, chips_a):
        session = SimulationSession()
        jobs = [
            _job(chips_a, which="baseline"),
            _job(chips_a, which="proposed"),
        ]
        results = session.run_jobs(jobs)
        assert results[0].chip_name == chips_a.baseline.config.name
        assert results[1].chip_name == chips_a.proposed.config.name

    def test_duplicate_jobs_execute_once(self, chips_a):
        session = SimulationSession()
        job = _job(chips_a)
        first, second = session.run_jobs([job, job])
        assert first is second
        assert session.stats.executed == 1
        assert session.stats.deduplicated == 1

    def test_memo_across_batches(self, chips_a):
        session = SimulationSession()
        job = _job(chips_a)
        first = session.run_one(job)
        second = session.run_one(job)
        assert first is second
        assert session.stats.executed == 1
        assert session.stats.memo_hits == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SimulationSession(jobs=0)
        with pytest.raises(ValueError):
            SimulationSession(backend="turbo")

    def test_backend_choice_is_result_invariant(self, chips_a):
        job = _job(chips_a)
        reference = SimulationSession(backend="reference").run_one(job)
        vectorized = SimulationSession(backend="vectorized").run_one(job)
        assert reference.epi == vectorized.epi
        assert reference.il1_stats == vectorized.il1_stats
        assert reference.timing == vectorized.timing


class TestDiskCache:
    def test_second_session_hits_disk(self, chips_a, tmp_path):
        job = _job(chips_a)
        first = SimulationSession(cache_dir=tmp_path)
        result = first.run_one(job)
        assert first.stats.executed == 1
        # Entries are grouped per source-fingerprint generation.
        assert len(list(tmp_path.glob("gen-*/*/*.pkl"))) == 1

        second = SimulationSession(cache_dir=tmp_path)
        cached = second.run_one(job)
        assert second.stats.executed == 0
        assert second.stats.disk_hits == 1
        assert cached.epi == result.epi
        assert cached.il1_stats == result.il1_stats

    def test_corrupt_entry_recomputed_with_warning(
        self, chips_a, tmp_path
    ):
        """A corrupt entry is a *warned* miss, then overwritten."""
        job = _job(chips_a)
        SimulationSession(cache_dir=tmp_path).run_one(job)
        (entry,) = tmp_path.glob("gen-*/*/*.pkl")
        entry.write_bytes(b"not a pickle")
        session = SimulationSession(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt result-cache"):
            session.run_one(job)
        assert session.stats.executed == 1

    def test_truncated_entry_recomputed_with_warning(
        self, chips_a, tmp_path
    ):
        """A half-written pickle (crashed writer) is also just a miss."""
        job = _job(chips_a)
        fresh = SimulationSession(cache_dir=tmp_path).run_one(job)
        (entry,) = tmp_path.glob("gen-*/*/*.pkl")
        entry.write_bytes(entry.read_bytes()[:-7])
        session = SimulationSession(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="treated as a miss"):
            recomputed = session.run_one(job)
        assert session.stats.executed == 1
        assert recomputed.timing.cycles == fresh.timing.cycles

    def test_entries_use_highest_pickle_protocol(self, chips_a, tmp_path):
        """Written with HIGHEST_PROTOCOL: byte 1 carries the version."""
        import pickle
        import pickletools

        SimulationSession(cache_dir=tmp_path).run_one(_job(chips_a))
        (entry,) = tmp_path.glob("gen-*/*/*.pkl")
        payload = entry.read_bytes()
        version = next(
            arg
            for op, arg, _pos in pickletools.genops(payload)
            if op.name == "PROTO"
        )
        assert version == pickle.HIGHEST_PROTOCOL


class TestParallelDispatch:
    def test_parallel_matches_serial(self, chips_a):
        """Process-pool dispatch returns bit-identical results."""
        jobs = [
            _job(chips_a, which=which, bench=bench)
            for which in ("baseline", "proposed")
            for bench in ("adpcm_c", "adpcm_d")
        ]
        serial = SimulationSession(jobs=1).run_jobs(jobs)
        parallel = SimulationSession(jobs=2).run_jobs(jobs)
        for left, right in zip(serial, parallel):
            assert left.chip_name == right.chip_name
            assert left.epi == right.epi
            assert left.il1_stats == right.il1_stats
            assert left.dl1_stats == right.dl1_stats
            assert left.timing == right.timing
            assert list(left.energy.items()) == list(right.energy.items())


class TestCurrentSession:
    def test_default_session_exists(self):
        assert current_session() is not None

    def test_clear_memo_forces_recompute(self, chips_a):
        session = SimulationSession()
        job = _job(chips_a)
        session.run_one(job)
        session.clear_memo()
        session.run_one(job)
        assert session.stats.executed == 2

    def test_reset_default_session(self):
        from repro.engine.session import reset_default_session

        before = current_session()
        reset_default_session()
        after = current_session()
        assert after is not before
        # Restoreable invariant: still a working default.
        assert after.jobs == 1

    def test_use_session_installs_and_restores(self):
        outer = current_session()
        session = SimulationSession()
        with use_session(session):
            assert current_session() is session
        assert current_session() is outer

    def test_evaluation_goes_through_session(self, chips_a, design_a):
        """evaluate_scenario submits its batch to the current session."""
        session = SimulationSession()
        with use_session(session):
            evaluation = evaluate_scenario(
                Scenario.A,
                Mode.ULE,
                trace_length=3_000,
                chips=chips_a,
                design=design_a,
            )
        # 4 SmallBench benchmarks x 2 chips.
        assert session.stats.requested == 2 * len(evaluation.rows)
        assert session.stats.executed == 2 * len(evaluation.rows)

        # A repeated evaluation is served entirely from the memo.
        with use_session(session):
            evaluate_scenario(
                Scenario.A,
                Mode.ULE,
                trace_length=3_000,
                chips=chips_a,
                design=design_a,
            )
        assert session.stats.executed == 2 * len(evaluation.rows)
        assert session.stats.memo_hits == 2 * len(evaluation.rows)


class TestExperimentBatch:
    def test_run_experiments_serial(self):
        session = SimulationSession()
        results = session.run_experiments(["tab-sizing", "tab-area"])
        assert set(results) == {"tab-sizing", "tab-area"}
        assert "tab-sizing" in results["tab-sizing"].render()

    def test_run_experiments_uses_disk_cache(self, tmp_path):
        """Experiment batches must flow through the session's disk
        cache (regression: `all --cache-dir` silently ignored it)."""
        session = SimulationSession(cache_dir=tmp_path)
        session.run_experiments(
            ["tab-exectime"], {"tab-exectime": {"trace_length": 2_000}}
        )
        entries = list(tmp_path.glob("gen-*/*/*.pkl"))
        assert entries

        # A fresh session over the same cache dir executes nothing.
        rerun = SimulationSession(cache_dir=tmp_path)
        rerun.run_experiments(
            ["tab-exectime"], {"tab-exectime": {"trace_length": 2_000}}
        )
        assert rerun.stats.executed == 0
        assert rerun.stats.disk_hits > 0

    def test_run_experiments_parallel_uses_disk_cache(self, tmp_path):
        session = SimulationSession(jobs=2, cache_dir=tmp_path)
        session.run_experiments(
            ["tab-exectime", "tab-wcet"],
            {
                "tab-exectime": {"trace_length": 2_000},
                "tab-wcet": {"trace_length": 2_000},
            },
        )
        assert list(tmp_path.glob("gen-*/*/*.pkl"))

    def test_on_result_streams_completions(self):
        seen = []
        SimulationSession().run_experiments(
            ["tab-sizing", "tab-area"],
            on_result=lambda experiment_id, result: seen.append(
                (experiment_id, result.experiment_id)
            ),
        )
        assert sorted(seen) == [
            ("tab-area", "tab-area"),
            ("tab-sizing", "tab-sizing"),
        ]

    def test_parallel_failure_keeps_completed_results(self, monkeypatch):
        """One exploding experiment must not discard the finished ones:
        successes stream to on_result, the error re-raises after."""
        import repro.experiments.registry as registry

        def boom():
            raise RuntimeError("driver exploded")

        patched = dict(registry._REGISTRY)
        patched["boom"] = boom
        monkeypatch.setattr(registry, "_REGISTRY", patched)

        seen = []
        session = SimulationSession(jobs=2)
        with pytest.raises(RuntimeError, match="driver exploded"):
            session.run_experiments(
                ["tab-sizing", "boom", "tab-area"],
                on_result=lambda experiment_id, result: seen.append(
                    experiment_id
                ),
            )
        assert sorted(seen) == ["tab-area", "tab-sizing"]

    def test_run_experiments_parallel_matches_serial(self):
        serial = SimulationSession(jobs=1).run_experiments(
            ["tab-sizing", "tab-area"]
        )
        parallel = SimulationSession(jobs=2).run_experiments(
            ["tab-sizing", "tab-area"]
        )
        for experiment_id in serial:
            assert (
                serial[experiment_id].render()
                == parallel[experiment_id].render()
            )


class TestProgressReporting:
    def test_progress_counts_executed_jobs(self, chips_a):
        session = SimulationSession()
        seen = []
        jobs = [
            _job(chips_a, bench=bench)
            for bench in ("adpcm_c", "adpcm_d", "epic_c")
        ]
        session.run_jobs(jobs, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_skips_cached_jobs(self, chips_a):
        session = SimulationSession()
        session.run_jobs([_job(chips_a)])
        seen = []
        session.run_jobs(
            [_job(chips_a), _job(chips_a, bench="epic_c")],
            progress=lambda d, t: seen.append((d, t)),
        )
        # Only the genuinely new job executes (total excludes the memo
        # hit), so progress reflects real work.
        assert seen == [(1, 1)]

    def test_parallel_progress_reaches_total(self, chips_a):
        with SimulationSession(jobs=2) as session:
            seen = []
            jobs = [
                _job(chips_a, bench=bench, length=2_000)
                for bench in ("adpcm_c", "adpcm_d", "epic_c", "epic_d")
            ]
            results = session.run_jobs(
                jobs, progress=lambda d, t: seen.append((d, t))
            )
        assert len(results) == 4
        assert seen[-1] == (4, 4)
        assert [d for d, _ in seen] == [1, 2, 3, 4]


class TestReplacementPolicyPlumbing:
    def test_replacement_feeds_job_identity(self, chips_a):
        from dataclasses import replace

        base = _job(chips_a)
        plru_cache = replace(chips_a.baseline.config.il1,
                             replacement="plru")
        plru_chip = replace(
            chips_a.baseline.config, il1=plru_cache, dl1=plru_cache
        )
        changed = SimulationJob(
            chip=plru_chip, trace=base.trace, mode=base.mode
        )
        assert job_key(changed) != job_key(base)

    def test_non_lru_chip_runs_via_auto_backend(self, chips_a):
        from dataclasses import replace

        from repro.engine.jobs import execute_job

        plru_cache = replace(chips_a.baseline.config.il1,
                             replacement="plru")
        plru_chip = replace(
            chips_a.baseline.config, il1=plru_cache, dl1=plru_cache
        )
        result = execute_job(
            SimulationJob(
                chip=plru_chip,
                trace=TraceSpec("adpcm_c", 2_000, 42),
                mode=Mode.ULE,
            )
        )
        lru = execute_job(
            SimulationJob(
                chip=chips_a.baseline.config,
                trace=TraceSpec("adpcm_c", 2_000, 42),
                mode=Mode.ULE,
            )
        )
        assert result.timing.instructions == lru.timing.instructions
        # A single powered ULE way leaves no replacement freedom, so
        # the counters must agree with LRU — the policy only changes
        # which backend simulates.
        assert result.il1_stats.misses == lru.il1_stats.misses
