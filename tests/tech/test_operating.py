"""Tests for repro.tech.operating."""

import pytest

from repro.tech.operating import (
    HP_OPERATING_POINT,
    ULE_OPERATING_POINT,
    Mode,
    OperatingPoint,
    operating_point_for,
)


class TestPaperOperatingPoints:
    def test_hp_point(self):
        assert HP_OPERATING_POINT.vdd == 1.0
        assert HP_OPERATING_POINT.frequency == 1e9
        assert HP_OPERATING_POINT.mode is Mode.HP

    def test_ule_point(self):
        assert ULE_OPERATING_POINT.vdd == pytest.approx(0.35)
        assert ULE_OPERATING_POINT.frequency == 5e6
        assert ULE_OPERATING_POINT.mode is Mode.ULE

    def test_cycle_times(self):
        assert HP_OPERATING_POINT.cycle_time == pytest.approx(1e-9)
        assert ULE_OPERATING_POINT.cycle_time == pytest.approx(200e-9)

    def test_lookup(self):
        assert operating_point_for(Mode.HP) is HP_OPERATING_POINT
        assert operating_point_for(Mode.ULE) is ULE_OPERATING_POINT


class TestValidation:
    def test_bad_vdd(self):
        with pytest.raises(ValueError):
            OperatingPoint(mode=Mode.HP, vdd=0.0, frequency=1e9)

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            OperatingPoint(mode=Mode.HP, vdd=1.0, frequency=0.0)

    def test_describe(self):
        assert "350" in ULE_OPERATING_POINT.describe()
