"""Hypothesis: scheduler/queue invariants under random submission mixes.

Three contracts pinned property-style, per the service design:

* **Quota enforcement** — whatever the interleaving of submissions and
  executions, a tenant never owns more outstanding work than its
  quota, and every quota shed happens exactly at the bound.
* **Submission-order invariance** — equal-weight tenants pushing the
  same per-tenant sequences drain in one global order, however their
  submissions interleave.
* **Backpressure monotonicity** — new work is shed *iff* the bounded
  queue is full (no quota configured): the service never rejects while
  it has room and never admits past the bound.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engine.jobs import job_key
from repro.service.queue import WeightedFairQueue
from repro.service.scheduler import (
    ATTACHED,
    QUEUED,
    REASON_QUOTA,
    REASON_SATURATED,
    SHED,
    ServiceScheduler,
)

TENANTS = ("alice", "bob", "carol")


def _stub_scheduler(**kwargs) -> ServiceScheduler:
    return ServiceScheduler(
        workers=0,
        execute=lambda job: ("result-for", job_key(job)),
        clock=lambda: 0.0,
        **kwargs,
    )


#: One run script: each step either submits (tenant, job index) or pumps
#: the queue ("run" executes one queued job).
steps = st.lists(
    st.one_of(
        st.tuples(
            st.sampled_from(TENANTS), st.integers(min_value=0, max_value=11)
        ),
        st.just("run"),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=25, deadline=None)
@given(script=steps, quota=st.integers(min_value=1, max_value=3))
def test_quota_never_exceeded(script, quota, distinct_jobs):
    """A tenant's owned outstanding work is capped at the quota."""
    jobs = distinct_jobs(12)
    scheduler = _stub_scheduler(tenant_quota=quota, queue_capacity=None)
    owned = dict.fromkeys(TENANTS, 0)
    owner_of = {}
    for step in script:
        if step == "run":
            key = scheduler.run_next(now=0.0)
            if key is not None:
                owned[owner_of[key]] -= 1
            continue
        tenant, index = step
        job = jobs[index]
        (ticket,) = scheduler.submit(tenant, [job])
        if ticket.state == QUEUED:
            owned[tenant] += 1
            owner_of[ticket.key] = tenant
        elif ticket.state == SHED:
            # Sheds carry the typed reason and fire only at the bound.
            assert ticket.reason == REASON_QUOTA
            assert ticket.retry_after > 0
            assert owned[tenant] == quota
        assert all(0 <= count <= quota for count in owned.values())


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
    data=st.data(),
)
def test_drain_order_invariant_to_interleaving(lengths, data):
    """Equal-weight tenants drain identically for any interleaving."""

    def fill(queue: WeightedFairQueue, order) -> list:
        cursor = dict.fromkeys(TENANTS, 0)
        for tenant in order:
            queue.push(tenant, (tenant, cursor[tenant]))
            cursor[tenant] += 1
        drained = []
        while (item := queue.pop()) is not None:
            drained.append(item[1])
        return drained

    # The multiset of submissions: lengths[i] items from tenant i.
    multiset = [
        tenant
        for tenant, length in zip(TENANTS, lengths)
        for _ in range(length)
    ]
    shuffled = data.draw(st.permutations(multiset), label="interleaving")
    assert fill(WeightedFairQueue(), multiset) == fill(
        WeightedFairQueue(), shuffled
    )


@settings(max_examples=25, deadline=None)
@given(script=steps, capacity=st.integers(min_value=1, max_value=4))
def test_shed_iff_queue_full(script, capacity, distinct_jobs):
    """With no quota, shedding happens exactly when the queue is full."""
    jobs = distinct_jobs(12)
    scheduler = _stub_scheduler(queue_capacity=capacity)
    for step in script:
        if step == "run":
            scheduler.run_next(now=0.0)
            continue
        tenant, index = step
        depth_before = scheduler.queue_depth()
        (ticket,) = scheduler.submit(tenant, [jobs[index]])
        if ticket.state == SHED:
            assert ticket.reason == REASON_SATURATED
            assert depth_before == capacity
        elif ticket.state == QUEUED:
            assert depth_before < capacity
        else:
            # done / attached never consume capacity — graceful
            # degradation holds even at the bound.
            assert ticket.state in (ATTACHED, "done")
            assert scheduler.queue_depth() == depth_before
        assert scheduler.queue_depth() <= capacity
