"""Tests for scheduling policies (:mod:`repro.runtime.policies`)."""

import math

import pytest

from repro.engine.session import SimulationSession, use_session
from repro.runtime import (
    EnergyBudget,
    Oracle,
    StaticDutyCycle,
    UtilizationThreshold,
    policy_by_name,
    simulate_schedule,
)
from repro.runtime.epochs import segment_fixed
from repro.runtime.simulator import ScheduleSimulator
from repro.tech.operating import Mode
from repro.workloads import sensor_node_trace


@pytest.fixture(scope="module")
def sensor_trace():
    return sensor_node_trace(
        monitor_length=4_000, burst_length=1_000, bursts=2, seed=7
    )


@pytest.fixture(scope="module")
def context(chips_a):
    simulator = ScheduleSimulator(
        chips_a.proposed, StaticDutyCycle(0.0)
    )
    return simulator.schedule_context()


@pytest.fixture(scope="module")
def epochs(sensor_trace):
    return segment_fixed(sensor_trace, 1_000)


class TestStaticDutyCycle:
    @pytest.mark.parametrize("duty", [0.0, 0.25, 0.5, 1.0])
    def test_hp_count_matches_duty(self, epochs, context, duty):
        modes = StaticDutyCycle(duty).choose(epochs, context)
        hp = sum(1 for mode in modes if mode is Mode.HP)
        assert hp == math.floor(duty * len(epochs))

    def test_spreads_evenly(self, epochs, context):
        modes = StaticDutyCycle(0.25).choose(epochs, context)
        assert [m is Mode.HP for m in modes[:4]].count(True) == 1

    def test_extremes(self, epochs, context):
        assert set(StaticDutyCycle(0.0).choose(epochs, context)) == {
            Mode.ULE
        }
        assert set(StaticDutyCycle(1.0).choose(epochs, context)) == {
            Mode.HP
        }

    @pytest.mark.parametrize("duty", [-0.1, 1.1])
    def test_rejects_bad_duty(self, duty):
        with pytest.raises(ValueError):
            StaticDutyCycle(duty)


class TestUtilizationThreshold:
    def test_separates_monitor_from_burst(self, epochs, context):
        modes = UtilizationThreshold().choose(epochs, context)
        # Pattern: 4 monitor epochs, 1 burst epoch, repeated twice.
        assert modes == [
            Mode.ULE, Mode.ULE, Mode.ULE, Mode.ULE, Mode.HP,
            Mode.ULE, Mode.ULE, Mode.ULE, Mode.ULE, Mode.HP,
        ]

    def test_low_threshold_pins_hp(self, epochs, context):
        modes = UtilizationThreshold(threshold=1e-9).choose(
            epochs, context
        )
        assert set(modes) == {Mode.HP}

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            UtilizationThreshold(0.0)


class TestEnergyBudget:
    @pytest.fixture(scope="class")
    def mode_energies(self, chips_a, sensor_trace):
        """Per-epoch run energies at both modes, via a shared session."""
        with use_session(SimulationSession()):
            result = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                Oracle(),
                epoch_length=1_000,
            )
            # Re-derive both-mode energies through the simulator's
            # batching path for use in budget arithmetic below.
            hp = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                StaticDutyCycle(1.0),
                epoch_length=1_000,
            )
            ule = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                StaticDutyCycle(0.0),
                epoch_length=1_000,
            )
        return result, hp, ule

    def test_huge_budget_runs_hp(
        self, chips_a, sensor_trace, mode_energies
    ):
        _, hp, _ = mode_energies
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            EnergyBudget(budget_joules=10 * hp.run_energy),
            epoch_length=1_000,
        )
        assert schedule.mode_share(Mode.HP) == 1.0

    def test_tight_budget_stays_ule(
        self, chips_a, sensor_trace, mode_energies
    ):
        _, _, ule = mode_energies
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            EnergyBudget(budget_joules=1.0001 * ule.run_energy),
            epoch_length=1_000,
        )
        assert schedule.mode_share(Mode.ULE) == 1.0
        assert schedule.run_energy <= 1.0001 * ule.run_energy

    def test_run_energy_respects_budget(
        self, chips_a, sensor_trace, mode_energies
    ):
        _, hp, ule = mode_energies
        budget = (ule.run_energy + hp.run_energy) / 2
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            EnergyBudget(budget_joules=budget),
            epoch_length=1_000,
        )
        assert ule.run_energy < budget
        # The ledger re-sums in a different order; allow float ulps.
        assert schedule.run_energy <= budget * (1 + 1e-9)
        assert 0.0 < schedule.mode_share(Mode.HP) < 1.0

    def test_more_budget_more_hp(
        self, chips_a, sensor_trace, mode_energies
    ):
        _, hp, ule = mode_energies
        budgets = (
            1.02 * ule.run_energy,
            (ule.run_energy + hp.run_energy) / 2,
            2.0 * hp.run_energy,
        )
        shares = []
        for budget in budgets:
            schedule = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                EnergyBudget(budget_joules=budget),
                epoch_length=1_000,
            )
            shares.append(schedule.mode_share(Mode.HP))
        assert shares == sorted(shares)
        assert shares[-1] == 1.0
        assert shares[0] < 1.0

    def test_needs_results(self, epochs, context):
        with pytest.raises(ValueError, match="needs per-mode results"):
            EnergyBudget(1.0).choose(epochs, context, None)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            EnergyBudget(0.0)


class TestOracle:
    def test_energy_floor(self, chips_a, sensor_trace):
        """The oracle never loses to the all-ULE / all-HP endpoints.

        Its DP covers the no-switch paths with zero transition cost,
        and realized transitions never exceed the worst-case estimates
        the DP charges — so realized oracle energy is bounded by both
        endpoint schedules.
        """
        with use_session(SimulationSession()):
            oracle = simulate_schedule(
                chips_a.proposed,
                sensor_trace,
                Oracle(),
                epoch_length=1_000,
            )
            endpoints = [
                simulate_schedule(
                    chips_a.proposed,
                    sensor_trace,
                    StaticDutyCycle(duty),
                    epoch_length=1_000,
                )
                for duty in (0.0, 1.0)
            ]
        for endpoint in endpoints:
            assert oracle.total_energy <= endpoint.total_energy * (
                1 + 1e-12
            )

    def test_time_objective_prefers_hp(self, chips_a, sensor_trace):
        schedule = simulate_schedule(
            chips_a.proposed,
            sensor_trace,
            Oracle(objective="time"),
            epoch_length=1_000,
        )
        # At 200x the clock, HP minimizes time despite transitions.
        assert schedule.mode_share(Mode.HP) == 1.0

    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            Oracle(objective="luck")

    def test_needs_results(self, epochs, context):
        with pytest.raises(ValueError, match="needs per-mode results"):
            Oracle().choose(epochs, context, None)


class TestPolicyByName:
    def test_constructs_each(self):
        assert policy_by_name("static", hp_duty=0.5).describe() == (
            "static(hp_duty=0.5)"
        )
        assert policy_by_name("utilization").describe() == (
            "utilization(threshold=1)"
        )
        assert policy_by_name(
            "budget", budget_joules=1e-3
        ).describe() == "budget(1 mJ)"
        assert policy_by_name("oracle").describe() == "oracle(energy)"

    def test_budget_needs_value(self):
        with pytest.raises(ValueError, match="budget_joules"):
            policy_by_name("budget")

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            policy_by_name("vibes")
