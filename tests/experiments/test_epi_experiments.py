"""Tests for the EPI experiment drivers at reduced trace lengths."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig4_result():
    return run_experiment("fig4", trace_length=15_000)


class TestFig4Driver:
    def test_savings_data_present(self, fig4_result):
        assert 30 < fig4_result.data["saving_A"] < 50
        assert 30 < fig4_result.data["saving_B"] < 50

    def test_per_benchmark_rows(self, fig4_result):
        rows = fig4_result.data["rows_A"]
        assert set(rows) == {"adpcm_c", "adpcm_d", "epic_c", "epic_d"}
        for ratio in rows.values():
            assert 0.4 < ratio < 0.8

    def test_comparisons_include_exec_time(self, fig4_result):
        quantities = [c.quantity for c in fig4_result.comparisons]
        assert any("exec-time" in q for q in quantities)

    def test_render(self, fig4_result):
        text = fig4_result.render()
        assert "Scenario A @ ULE" in text
        assert "Scenario B @ ULE" in text


class TestFig3Driver:
    def test_hp_savings(self):
        result = run_experiment("fig3", trace_length=10_000)
        assert 8 < result.data["saving_A"] < 22
        assert 8 < result.data["saving_B"] < 22
        assert result.data["exec_ratio_A"] == pytest.approx(1.0)


class TestExecTimeDriver:
    def test_overhead_band(self):
        result = run_experiment("tab-exectime", trace_length=15_000)
        for scenario in ("A", "B"):
            ratio = result.data[f"avg_{scenario}"]
            assert 1.005 < ratio < 1.06


class TestAblations:
    def test_way_split_monotone_at_hp(self):
        """More ULE ways replaced -> more savings at HP."""
        result = run_experiment(
            "ablation-ways", trace_length=8_000,
            splits=((7, 1), (6, 2)),
        )
        assert result.data["6+2:HP"] > result.data["7+1:HP"]

    def test_memlat_trend_robust(self):
        result = run_experiment(
            "ablation-memlat", trace_length=8_000, latencies=(10, 40)
        )
        for saving in result.data.values():
            assert 8 < saving < 25


class TestNewAblations:
    def test_cache_size_redesigns(self):
        result = run_experiment(
            "ablation-cachesize", trace_length=6_000, sizes_kb=(4, 8)
        )
        assert set(result.data) == {4, 8}
        for entry in result.data.values():
            assert entry["ule_saving"] > 20.0

    def test_vdd_ablation_resizes_cells(self):
        result = run_experiment(
            "ablation-vdd", trace_length=6_000, vdds=(0.45, 0.35)
        )
        assert result.data[0.35]["s10"] > result.data[0.45]["s10"]
        assert result.data[0.35]["s8"] >= result.data[0.45]["s8"]
        for entry in result.data.values():
            assert entry["ule_saving"] > 20.0
